from setuptools import find_packages, setup

setup(
    name="repro-aggregate-equivalence",
    version="0.7.0",
    description=(
        "Deciding equivalence of aggregate queries (PODS'01): decision "
        "procedures, view rewriting, and a three-tier evaluation engine"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    # PEP 561: the package ships inline type hints; py.typed marks them as
    # consumable by downstream type checkers.
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.11",
    # The core is dependency-free by design: the decision procedures, the
    # planned interpreter, and the compiled engine's pure-python loop kernels
    # run on the standard library alone.
    install_requires=[],
    extras_require={
        # Enables the vectorized searchsorted join path of
        # repro.engine.columnar for large relations; everything falls back to
        # the loop kernels when NumPy is absent (or REPRO_NO_NUMPY=1).
        "numpy": ["numpy"],
        "test": ["pytest", "hypothesis"],
    },
)
