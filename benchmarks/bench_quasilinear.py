"""Experiment E2 — polynomial-time quasilinear equivalence (Corollary 7.5).

The paper's claim: for quasilinear queries, equivalence reduces to isomorphism
and is decidable in polynomial time.  The benchmark measures the quasilinear
procedure on linear chain queries of growing size (the time must grow
moderately, not explode), and contrasts it with the general local-equivalence
procedure, which is already far more expensive on the smallest instance —
the crossover the quasilinear fast path exists for.
"""

from __future__ import annotations

import time

import pytest

from repro.core import local_equivalence, quasilinear_equivalent
from repro.workloads import linear_chain_query, renamed_copy

CHAIN_LENGTHS = [2, 4, 6, 8]


@pytest.mark.paper_artifact("Corollary 7.5")
@pytest.mark.parametrize("length", CHAIN_LENGTHS)
def test_quasilinear_scaling(benchmark, length, report_lines):
    query = linear_chain_query(length, function="sum")
    copy = renamed_copy(query)

    def run():
        return quasilinear_equivalent(query, copy)

    verdict = benchmark(run)
    assert verdict.equivalent
    report_lines.append(
        f"[E2] quasilinear equivalence, chain length {length} "
        f"(τ = {query.term_size}): decided in {benchmark.stats.stats.mean * 1000:.2f} ms (mean)"
    )


@pytest.mark.paper_artifact("Corollary 7.5 — non-equivalent instances")
@pytest.mark.parametrize("length", CHAIN_LENGTHS)
def test_quasilinear_scaling_negative(benchmark, length, report_lines):
    query = linear_chain_query(length, function="sum", with_comparisons=True)
    other = linear_chain_query(length, function="sum", with_comparisons=False)

    def run():
        return quasilinear_equivalent(query, other)

    verdict = benchmark(run)
    assert not verdict.equivalent
    report_lines.append(
        f"[E2] quasilinear non-equivalence, chain length {length}: "
        f"{benchmark.stats.stats.mean * 1000:.2f} ms (mean)"
    )


@pytest.mark.paper_artifact("Quasilinear fast-path ablation (DESIGN.md)")
def test_fast_path_vs_general_procedure(benchmark, report_lines):
    """On the smallest chain the general procedure is already orders of
    magnitude slower than the isomorphism test; this is the ablation for the
    dispatcher's quasilinear fast path."""
    query = linear_chain_query(1, function="max", with_comparisons=False)
    copy = renamed_copy(query)

    start = time.perf_counter()
    general = local_equivalence(query, copy)
    general_seconds = time.perf_counter() - start
    assert general.equivalent

    def fast():
        return quasilinear_equivalent(query, copy)

    verdict = benchmark(fast)
    assert verdict.equivalent
    fast_seconds = benchmark.stats.stats.mean
    ratio = general_seconds / fast_seconds if fast_seconds else float("inf")
    report_lines.append(
        f"[E2 ablation] chain length 1: general procedure {general_seconds*1000:.1f} ms vs "
        f"quasilinear fast path {fast_seconds*1000:.3f} ms  (speed-up ≈ {ratio:,.0f}×)"
    )
