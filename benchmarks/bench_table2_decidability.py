"""Experiment T2 — regenerate Table 2 (decidability of query classes).

The table is regenerated in two ways:

1. from the declared traits (as in the paper's summary), and
2. operationally: for every aggregation function the corresponding decision
   procedure is actually executed on a small query family and its verdicts are
   checked against a brute-force oracle, demonstrating that the claimed
   decidable cells really are decided by terminating procedures.
"""

from __future__ import annotations

import pytest

from repro import Domain, Verdict, are_equivalent, parse_query
from repro.core import (
    bounded_equivalence,
    build_table2,
    exhaustive_counterexample,
    format_table2,
    table2_matches_paper,
)

#: Small query family used to exercise every procedure.  Each entry is
#: (body_1, body_2, equivalent_for_idempotent, equivalent_for_group).
FAMILY = [
    ("p(y), not r(y)", "p(y), not r(y)", True, True),
    ("p(y) ; p(y), r(y)", "p(y)", True, False),
    ("p(y), y > 0", "p(y), 0 < y", True, True),
    ("p(y)", "p(y), not r(y)", False, False),
]

IDEMPOTENT = {"max", "top2"}


def build(function: str, body: str):
    head = f"q({function}(y))" if function not in ("count", "parity") else f"q({function}())"
    return parse_query(f"{head} :- {body}")


@pytest.mark.paper_artifact("Table 2")
def test_table2_regeneration(benchmark, report_lines):
    rows = benchmark(build_table2, Domain.RATIONALS)
    assert table2_matches_paper(rows)
    report_lines.append("[Table 2] regenerated table matches the paper cell by cell:")
    for line in format_table2(rows).splitlines():
        report_lines.append("    " + line)


@pytest.mark.paper_artifact("Table 2 — bounded equivalence column")
@pytest.mark.parametrize("function", ["count", "max", "sum", "prod", "top2", "avg", "cntd", "parity"])
def test_bounded_equivalence_is_decided(benchmark, function, report_lines):
    """The bounded-equivalence procedure terminates with correct verdicts for
    every aggregation function of Table 2."""
    pairs = [(build(function, a), build(function, b)) for a, b, _, _ in FAMILY]

    def run():
        return [bounded_equivalence(first, second, 1).equivalent for first, second in pairs]

    verdicts = benchmark(run)
    assert len(verdicts) == len(FAMILY)
    report_lines.append(
        f"[Table 2] bounded equivalence (N=1) decided for {function}: verdicts {verdicts}"
    )


@pytest.mark.paper_artifact("Table 2 — equivalence column")
@pytest.mark.parametrize("function", ["count", "max", "sum", "parity", "top2", "prod"])
def test_equivalence_is_decided_for_decidable_classes(benchmark, function, report_lines):
    """For the functions whose equivalence column is 'yes', the top-level
    checker terminates and agrees with an exhaustive concrete oracle."""

    def run():
        outcomes = []
        for body_a, body_b, idempotent_expected, group_expected in FAMILY:
            first, second = build(function, body_a), build(function, body_b)
            result = are_equivalent(first, second)
            assert result.verdict is not Verdict.UNKNOWN
            outcomes.append(result.is_equivalent)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    expected = [
        (idempotent if function in IDEMPOTENT else group)
        for _, _, idempotent, group in FAMILY
    ]
    assert outcomes == expected
    # Oracle confirmation on the non-equivalent pairs.
    for (body_a, body_b, idempotent, group), outcome in zip(FAMILY, outcomes):
        if not outcome:
            witness = exhaustive_counterexample(
                build(function, body_a), build(function, body_b), values=[0, 1, 2], max_facts=3
            )
            assert witness is not None
    report_lines.append(f"[Table 2] equivalence decided for {function}: verdicts {outcomes}")


@pytest.mark.paper_artifact("Table 2 — open cells")
@pytest.mark.parametrize("function", ["avg", "cntd"])
def test_open_classes_report_unknown(benchmark, function, report_lines):
    """avg / cntd beyond the quasilinear fragment: the paper leaves the problem
    open and the checker must say so rather than guess."""
    first = build(function, "p(y) ; p(y), r(y)")
    second = build(function, "p(y) ; p(y), s(y)")

    def run():
        return are_equivalent(first, second, counterexample_trials=100).verdict

    verdict = benchmark.pedantic(run, rounds=1, iterations=1)
    assert verdict in (Verdict.UNKNOWN, Verdict.NOT_EQUIVALENT)
    report_lines.append(f"[Table 2] {function} beyond quasilinear: verdict = {verdict.value}")
