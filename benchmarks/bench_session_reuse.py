"""Experiment E13 — the incremental session vs one-shot recomputation.

The session-first API (:class:`repro.session.Workspace`) exists so a live
catalog under traffic stops paying the one-shot entry points' fixed costs per
call: rebuilding the shared BASE, re-warming the Γ / signature / group-index
caches, re-forking the worker pool, and — the dominant term — re-deciding
cells earlier calls already settled.  This benchmark measures exactly that
trade on the rewriting-audit catalog of E11 (28 queries at full scale,
mostly-equivalent cells, the expensive case):

1. a workspace is warmed with the full catalog (one ``equivalences()`` call),
2. **one** query is added and ``equivalences()`` is re-queried — only the
   delta row (new × catalog) is decided, against warm caches,
3. the same final catalog is recomputed from scratch with
   ``equivalence_matrix`` on cold caches.

The acceptance floor (ISSUE 5) is a ≥5x speedup of the incremental re-query
over the from-scratch matrix at full scale, with verdicts and methods
identical cell for cell.  A second leg checks the persistent pool: a
``workers=2`` workspace serving repeated ``rewrite()`` calls forks its pool
at most once.

Run under pytest (``pytest benchmarks/bench_session_reuse.py``) or standalone
(``python benchmarks/bench_session_reuse.py [--quick] [--json PATH]``).
``REPRO_BENCH_QUICK=1`` selects quick mode under pytest.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_catalog_sweep import build_audit_catalog  # noqa: E402

from repro import Workspace, parse_query  # noqa: E402
from repro.engine import clear_evaluation_caches, clear_symbolic_caches  # noqa: E402
from repro.workloads import build_view_scenario, equivalence_matrix  # noqa: E402

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _floor(quick: bool) -> float:
    """Acceptance floor for incremental-vs-scratch (ISSUE 5 demands >= 5x at
    full scale; the quick catalog amortizes less, so CI smoke keeps a
    cushion).  Single source for the pytest and CLI entry points."""
    return 2.0 if quick else 5.0


SPEEDUP_FLOOR = _floor(QUICK)


def _cold() -> None:
    clear_symbolic_caches()
    clear_evaluation_caches()


def _extra_query():
    """One more member of the audit family — a fresh renaming, so the delta
    row lands in the big sweep groups without changing the BASE recipe."""
    return parse_query(
        "audit(z, count()) :- returns(z, w), premium_store(z) ; "
        "discontinued(w), returns(z, w)"
    )


def run_benchmark(quick: bool) -> dict:
    catalog = build_audit_catalog(quick)
    extra = _extra_query()

    # ------------------------------------------------------------------
    # Warm a session on the full catalog, then add one query and re-query.
    # ------------------------------------------------------------------
    _cold()
    with Workspace(workers=1, seed=7) as workspace:
        for name, query in catalog.items():
            workspace.add(query, name=name)
        start = time.perf_counter()
        workspace.equivalences()
        warm_wall = time.perf_counter() - start

        workspace.add(extra, name="audit_new")
        start = time.perf_counter()
        incremental_results = workspace.equivalences()
        incremental_wall = time.perf_counter() - start
        delta_cells = workspace.stats().decided_cells - len(catalog) * (len(catalog) - 1) // 2

    # ------------------------------------------------------------------
    # The same final catalog, from scratch on cold caches.
    # ------------------------------------------------------------------
    full_catalog = dict(catalog)
    full_catalog["audit_new"] = extra
    _cold()
    start = time.perf_counter()
    scratch_results = equivalence_matrix(full_catalog, workers=1, seed=7)
    scratch_wall = time.perf_counter() - start

    # Hard acceptance requirement: identical verdicts and methods, cell for
    # cell, between the incrementally grown session and the one-shot matrix.
    assert incremental_results.keys() == scratch_results.keys()
    for pair, cell in incremental_results.items():
        assert cell.verdict is scratch_results[pair].verdict, pair
        assert cell.method == scratch_results[pair].method, pair

    # ------------------------------------------------------------------
    # Persistent pool: repeated rewrites fork no new pool.
    # ------------------------------------------------------------------
    # The pool forks lazily on the first call with enough work to shard, so
    # the invariant is "at most one fork ever", not "forked by call one".
    scenario = build_view_scenario()
    with Workspace(workers=2, seed=7) as pool_session:
        for view in scenario.views:
            pool_session.register_view(view)
        pool_session.rewrite(scenario.queries["kept_revenue"])
        forks_after_first = pool_session.stats().pool_forks
        pool_session.rewrite(scenario.queries["total_revenue"])
        pool_session.rewrite(scenario.queries["premium_revenue"])
        pool_session.rewrite(scenario.queries["kept_revenue"])  # cache hit
        forks_after_repeats = pool_session.stats().pool_forks

    return {
        "quick": quick,
        "queries": len(full_catalog),
        "cells": len(scratch_results),
        "delta_cells": delta_cells,
        "warm_wall": warm_wall,
        "incremental_wall": incremental_wall,
        "scratch_wall": scratch_wall,
        "speedup": scratch_wall / incremental_wall,
        "forks_after_first": forks_after_first,
        "forks_after_repeats": forks_after_repeats,
    }


def _render(result: dict) -> list[str]:
    mode = "quick" if result["quick"] else "full"
    return [
        f"[E13:{mode}] catalog: {result['queries']} queries, {result['cells']} cells; "
        f"adding one query decided {result['delta_cells']} delta cell(s)",
        f"[E13:{mode}] from-scratch matrix {result['scratch_wall']:.2f}s -> warmed "
        f"session re-query {result['incremental_wall']:.2f}s "
        f"({result['speedup']:.1f}x, floor {_floor(result['quick'])}x); "
        f"initial session warm-up {result['warm_wall']:.2f}s",
        f"[E13:{mode}] persistent pool: {result['forks_after_first']} fork(s) after the "
        f"first rewrite, {result['forks_after_repeats']} after repeats",
    ]


def test_session_reuse_speedup(report_lines):
    result = run_benchmark(QUICK)
    report_lines.extend(_render(result))
    assert result["delta_cells"] == result["queries"] - 1
    assert result["forks_after_repeats"] <= 1
    assert result["speedup"] >= SPEEDUP_FLOOR, (
        f"incremental session speedup {result['speedup']:.2f}x "
        f"below the {SPEEDUP_FLOOR}x floor"
    )


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small catalog + relaxed floor (CI smoke)"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write {name, wall_s, speedup} records to PATH"
    )
    arguments = parser.parse_args()
    quick = arguments.quick or QUICK
    floor = _floor(quick)
    result = run_benchmark(quick)
    for line in _render(result):
        print(line)
    if arguments.json:
        from _jsonlog import json_record, write_json_records

        write_json_records(
            arguments.json,
            [
                json_record("session_reuse.scratch_matrix", result["scratch_wall"], 1.0),
                json_record(
                    "session_reuse.incremental_requery",
                    result["incremental_wall"],
                    result["speedup"],
                ),
                json_record("session_reuse.session_warmup", result["warm_wall"], None),
            ],
        )
        print(f"(json records written to {arguments.json})")
    if result["forks_after_repeats"] > 1:
        print("FAIL: repeated rewrite() calls forked a new pool")
        return 1
    if result["speedup"] < floor:
        print(f"FAIL: speedup {result['speedup']:.2f}x below the {floor}x floor")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
