"""Experiment E14 — served snapshot reads vs lock-serialized reads.

The service layer (:mod:`repro.service`) publishes a frozen copy-on-write
snapshot of each tenant's settled state after every mutation, so read-only
``GET`` requests resolve on the event loop without taking the tenant's
writer lock.  This benchmark measures what that buys under contention, over
real HTTP against a real server:

1. a ``workers=2`` service is booted on the loopback and one tenant is
   warmed with the rewriting-audit catalog of E11 (28 queries at full
   scale) plus a decided equivalence matrix,
2. two writer threads churn batches of fresh audit renamings +
   ``POST /equivalences`` — each delta sweep holds the tenant lock for its
   full duration (the pool workers do the deciding, so the lock — not the
   GIL — is what readers contend on),
3. eight reader threads point-read one settled cell
   (``GET /explain?first=...&second=...``, the "are these two equivalent?"
   serving pattern) for a fixed window and record per-request latency.

The same workload then runs against a ``serialize_reads=True`` service,
where every read queues behind the writer on the tenant lock — the
behaviour a lock-per-tenant server without snapshots would have.  The
acceptance floor (ISSUE 9) is snapshot read throughput >= 5x the serialized
throughput at full scale.

Run under pytest (``pytest benchmarks/bench_service.py``) or standalone
(``python benchmarks/bench_service.py [--quick] [--json PATH]``).
``REPRO_BENCH_QUICK=1`` selects quick mode under pytest.
"""

from __future__ import annotations

import http.client
import json
import os
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_catalog_sweep import build_audit_catalog  # noqa: E402

from repro.service import AdmissionPolicy, start_in_thread  # noqa: E402

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Reader threads hammering GET /equivalences concurrently (ISSUE 9: >= 8).
READERS = 8

#: Writer threads churning mutations.  Two, so one mutation is always queued
#: on the tenant lock while the other's sweep runs — the lock stays held for
#: the whole window instead of going free between a writer's roundtrips.
WRITERS = 2

TENANT = "bench"


def _floor(quick: bool) -> float:
    """Acceptance floor for snapshot-vs-serialized read throughput (ISSUE 9
    demands >= 5x at full scale; the quick catalog's sweeps hold the lock
    for less time, so CI smoke keeps a cushion)."""
    return 3.0 if quick else 5.0


def _window(quick: bool) -> float:
    """Seconds each read-throughput measurement runs."""
    return 1.2 if quick else 3.0


SPEEDUP_FLOOR = _floor(QUICK)


def _request(address, method: str, path: str, payload=None):
    connection = http.client.HTTPConnection(*address, timeout=300)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode())
    finally:
        connection.close()


def _warm(address, catalog) -> None:
    for name, query in catalog.items():
        status, _body = _request(
            address, "POST", f"/tenant/{TENANT}/add", {"query": str(query), "name": name}
        )
        assert status == 200, f"warm add {name} failed: {status}"
    status, _body = _request(address, "POST", f"/tenant/{TENANT}/equivalences")
    assert status == 200, "warm sweep failed"


#: Queries each writer iteration adds before re-sweeping.  The delta a sweep
#: decides (and so how long it holds the tenant lock) scales with the batch.
WRITER_BATCH = 8


def _writer_loop(address, stop: threading.Event, prefix: str) -> int:
    """Churn mutations until stopped: each iteration adds a batch of fresh
    audit variants and re-sweeps, holding the tenant lock for the whole
    batch-sized delta sweep.  One keep-alive connection serves the whole
    loop so connection setup does not open lock-free gaps between
    mutations."""
    iterations = 0
    connection = http.client.HTTPConnection(*address, timeout=300)
    try:
        while not stop.is_set():
            for member in range(WRITER_BATCH):
                # A fresh variable renaming of the audit view: equivalent to
                # the whole catalog (so the delta row is all decided cells)
                # without adding constants that would change the shared BASE
                # recipe.
                tag = f"{prefix}{iterations}x{member}"
                s, p = f"s{tag}", f"p{tag}"
                query = (
                    f"audit({s}, count()) :- returns({s}, {p}), "
                    f"premium_store({s}) ; discontinued({p}), returns({s}, {p})"
                )
                payload = {"query": query, "name": f"churn_{tag}"}
                connection.request(
                    "POST",
                    f"/tenant/{TENANT}/add",
                    body=json.dumps(payload).encode(),
                )
                response = connection.getresponse()
                response.read()
                assert response.status == 200, f"writer add failed: {response.status}"
            connection.request("POST", f"/tenant/{TENANT}/equivalences")
            response = connection.getresponse()
            response.read()
            assert response.status == 200, f"writer sweep failed: {response.status}"
            iterations += 1
    finally:
        connection.close()
    return iterations


#: The settled cell the readers point-read: the first two catalog members
#: are fresh renamings of the same audit view, settled during warm-up.
READ_PATH = f"/tenant/{TENANT}/explain?first=audit_01&second=audit_02"


def _reader_loop(address, stop: threading.Event, sink: list, lock: threading.Lock):
    """Point-read one settled cell until stopped — the serving pattern the
    snapshot path exists for ("are these two queries equivalent?"), with a
    response whose size does not grow with the churned catalog."""
    latencies = []
    connection = http.client.HTTPConnection(*address, timeout=300)
    try:
        while not stop.is_set():
            start = time.perf_counter()
            connection.request("GET", READ_PATH)
            response = connection.getresponse()
            body = response.read()
            assert response.status == 200 and body, "read failed mid-benchmark"
            latencies.append(time.perf_counter() - start)
    finally:
        connection.close()
    with lock:
        sink.extend(latencies)


def _percentile(latencies: list, fraction: float) -> float:
    ranked = sorted(latencies)
    return ranked[min(len(ranked) - 1, int(fraction * len(ranked)))]


def _measure_phase(quick: bool, serialize_reads: bool) -> dict:
    """Boot a service, warm the tenant, then measure read throughput for one
    window while a writer churns mutations.  Returns req/s and latency
    percentiles for the read side."""
    # Two pool workers: sweeps run in worker processes, so the mutation
    # thread blocks on IPC instead of holding the GIL — the event loop can
    # actually serve snapshot reads while a sweep holds the tenant lock.
    handle = start_in_thread(
        workers=2,
        serialize_reads=serialize_reads,
        policy=AdmissionPolicy(max_queries=4096),
    )
    try:
        address = handle.address
        _warm(address, build_audit_catalog(quick))

        writer_stop = threading.Event()
        reader_stop = threading.Event()
        writers = [
            threading.Thread(
                target=_writer_loop,
                args=(address, writer_stop, f"w{index}"),
                daemon=True,
            )
            for index in range(WRITERS)
        ]
        latencies: list = []
        lock = threading.Lock()
        readers = [
            threading.Thread(
                target=_reader_loop,
                args=(address, reader_stop, latencies, lock),
                daemon=True,
            )
            for _ in range(READERS)
        ]
        window = _window(quick)
        for writer in writers:
            writer.start()
        for reader in readers:
            reader.start()
        time.sleep(window)
        reader_stop.set()
        for reader in readers:
            reader.join(300.0)
        writer_stop.set()
        for writer in writers:
            writer.join(300.0)
            assert not writer.is_alive(), "writer did not drain"
        assert latencies, "readers completed no requests"
        return {
            "serialize_reads": serialize_reads,
            "requests": len(latencies),
            "rps": len(latencies) / window,
            "p50_ms": _percentile(latencies, 0.50) * 1e3,
            "p99_ms": _percentile(latencies, 0.99) * 1e3,
            "window_s": window,
        }
    finally:
        handle.stop(timeout=300.0)


def run_benchmark(quick: bool) -> dict:
    snapshot = _measure_phase(quick, serialize_reads=False)
    serialized = _measure_phase(quick, serialize_reads=True)
    return {
        "quick": quick,
        "queries": len(build_audit_catalog(quick)),
        "readers": READERS,
        "snapshot": snapshot,
        "serialized": serialized,
        "speedup": snapshot["rps"] / serialized["rps"],
    }


def _render(result: dict) -> list[str]:
    mode = "quick" if result["quick"] else "full"
    snapshot, serialized = result["snapshot"], result["serialized"]
    return [
        f"[E14:{mode}] served reads under a concurrent writer: {result['readers']} "
        f"clients against a warm {result['queries']}-query tenant",
        f"[E14:{mode}] snapshot reads {snapshot['rps']:.0f} req/s "
        f"(p50 {snapshot['p50_ms']:.1f}ms, p99 {snapshot['p99_ms']:.1f}ms) vs "
        f"lock-serialized {serialized['rps']:.0f} req/s "
        f"(p50 {serialized['p50_ms']:.1f}ms, p99 {serialized['p99_ms']:.1f}ms)",
        f"[E14:{mode}] snapshot/serialized throughput: {result['speedup']:.1f}x "
        f"(floor {_floor(result['quick'])}x)",
    ]


def test_service_snapshot_read_throughput(report_lines):
    result = run_benchmark(QUICK)
    report_lines.extend(_render(result))
    assert result["snapshot"]["requests"] >= READERS
    assert result["serialized"]["requests"] >= 1
    assert result["speedup"] >= SPEEDUP_FLOOR, (
        f"snapshot read throughput {result['speedup']:.2f}x the serialized "
        f"baseline, below the {SPEEDUP_FLOOR}x floor"
    )


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small catalog + relaxed floor (CI smoke)"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write {name, wall_s, speedup} records to PATH"
    )
    arguments = parser.parse_args()
    quick = arguments.quick or QUICK
    floor = _floor(quick)
    result = run_benchmark(quick)
    for line in _render(result):
        print(line)
    if arguments.json:
        from _jsonlog import json_record, write_json_records

        def record(name: str, phase: dict, speedup: float) -> dict:
            entry = json_record(name, phase["window_s"], speedup)
            entry.update(
                requests=phase["requests"],
                rps=round(phase["rps"], 1),
                p50_ms=round(phase["p50_ms"], 2),
                p99_ms=round(phase["p99_ms"], 2),
                readers=READERS,
            )
            return entry

        write_json_records(
            arguments.json,
            [
                record("service.serialized_reads", result["serialized"], 1.0),
                record("service.snapshot_reads", result["snapshot"], result["speedup"]),
            ],
        )
        print(f"(json records written to {arguments.json})")
    if result["speedup"] < floor:
        print(f"FAIL: snapshot reads {result['speedup']:.2f}x below the {floor}x floor")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
