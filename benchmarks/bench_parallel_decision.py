"""Experiment E10 — the parallel decision subsystem on the warehouse catalog.

PR 1 made single-query evaluation cheap; the decision procedures were left
with two dominant costs, both addressed by the parallel decision subsystem
(:mod:`repro.parallel`): the per-subset ``|fresh|!`` canonicalization scan in
``core/bounded.py``, and the strictly serial enumeration of independent
(subset, ordering) and (pair) checks.

This benchmark drives the decision workload an optimizer would run over the
warehouse catalog:

* the **bounded rewriting audit** — a literal-reordered rewriting of a
  returns-audit query over the warehouse vocabulary, decided by the full
  Theorem 4.8 procedure (the piece PR 1 could not parallelize), and
* the **equivalence matrix** over the analyst catalog (extended with the
  pinned-sum/count pair the ROADMAP names), where the sum→count
  normalization settles the previously UNKNOWN cell syntactically.

The baseline is the PR 1 serial path — ``enumeration="scan"`` with the
shared-Γ caches disabled and normalization off — against orbit-canonical
enumeration plus ``workers=4``.  The acceptance floor is a ≥5x total speedup
at full scale (ISSUE 2); quick mode shrinks the instance and the floor for CI
smoke runs.  Worker-count scaling is reported but not asserted (CI boxes may
have a single core).

Run under pytest (``pytest benchmarks/bench_parallel_decision.py``) or
standalone (``python benchmarks/bench_parallel_decision.py [--quick]``).
``REPRO_BENCH_QUICK=1`` selects quick mode under pytest.
"""

from __future__ import annotations

import os
import time

from repro import parse_query
from repro.core.bounded import bounded_equivalence
from repro.engine import clear_evaluation_caches, clear_symbolic_caches, set_shared_gamma
from repro.engine.symbolic import symbolic_cache_stats
from repro.workloads import build_warehouse, equivalence_matrix

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Acceptance floor for the total decision-workload speedup (ISSUE 2 demands
#: >= 5x at full scale; quick mode uses a smaller instance whose search space
#: leaves less room, so it keeps a smaller cushion for noisy CI runners).
SPEEDUP_FLOOR = 2.0 if QUICK else 5.0

#: Workers used for the headline measurement (the acceptance criterion).
WORKERS = 4


def _rewriting_audit_pair(quick: bool):
    """An equivalent literal-reordered rewriting over the warehouse
    vocabulary (equivalent pairs force the procedure to sweep the entire
    space, which is the expensive case).  Quick mode drops one predicate to
    shrink |BASE|."""
    if quick:
        first = parse_query("audit(count()) :- returns(s, p), premium_store(s)")
        second = parse_query("audit(count()) :- premium_store(s), returns(s, p)")
    else:
        first = parse_query(
            "audit(count()) :- returns(s, p), premium_store(s), not discontinued(p)"
        )
        second = parse_query(
            "audit(count()) :- premium_store(s), returns(s, p), not discontinued(p)"
        )
    return first, second, 3


def _catalog():
    """The warehouse analyst catalog, extended with the ROADMAP's pinned-sum
    pair (``sum`` over a variable pinned to 1 vs ``count``)."""
    warehouse = build_warehouse()
    catalog = dict(warehouse.queries)
    catalog["unit_sales_per_store"] = parse_query(
        "units(s, sum(u)) :- sales(s, p, a), u = 1"
    )
    catalog["sales_count_per_store"] = parse_query(
        "units(s, count()) :- sales(s, p, a)"
    )
    return catalog


def _cold() -> None:
    clear_symbolic_caches()
    clear_evaluation_caches()


def _timed(callable_):
    _cold()
    start = time.perf_counter()
    result = callable_()
    return time.perf_counter() - start, result


def run_benchmark(quick: bool) -> dict:
    first, second, bound = _rewriting_audit_pair(quick)
    catalog = _catalog()

    # --- canonical enumeration + workers -------------------------------
    # Measured first, while the process heap is small: forked workers
    # inherit the parent heap copy-on-write, so a heap bloated by earlier
    # measurements would tax exactly the runs that fork.  Every measurement
    # is cold-cache regardless of order.
    scaling: dict[int, float] = {}
    for workers in (WORKERS, 2):
        elapsed, report = _timed(
            lambda workers=workers: bounded_equivalence(
                first, second, bound, workers=workers
            )
        )
        assert report.equivalent
        scaling[workers] = elapsed
    parallel_bounded = scaling[WORKERS]

    parallel_matrix, parallel_results = _timed(
        lambda: equivalence_matrix(catalog, workers=WORKERS)
    )

    # --- canonical enumeration, serial ---------------------------------
    serial_bounded, serial_report = _timed(
        lambda: bounded_equivalence(first, second, bound, workers=1)
    )
    assert serial_report.equivalent
    gamma_stats = symbolic_cache_stats()
    scaling[1] = serial_bounded

    # --- baseline: the PR 1 serial path --------------------------------
    previous = set_shared_gamma(False)
    try:
        baseline_bounded, baseline_report = _timed(
            lambda: bounded_equivalence(first, second, bound, enumeration="scan", workers=1)
        )
        baseline_matrix, baseline_results = _timed(
            lambda: equivalence_matrix(
                catalog, workers=1, normalize=False, shared_base=False
            )
        )
    finally:
        set_shared_gamma(previous)
    assert baseline_report.equivalent == serial_report.equivalent
    # Baseline and parallel sweeps must agree cell by cell, except where the
    # normalization legitimately strengthens the verdict (cells involving the
    # pinned-sum query).
    assert baseline_results.keys() == parallel_results.keys()
    for pair, baseline_cell in baseline_results.items():
        if "unit_sales_per_store" in pair:
            continue
        assert baseline_cell.verdict is parallel_results[pair].verdict, pair

    baseline_total = baseline_bounded + baseline_matrix
    parallel_total = parallel_bounded + parallel_matrix
    normalized_cell = parallel_results[
        ("sales_count_per_store", "unit_sales_per_store")
    ]
    return {
        "quick": quick,
        "bound": bound,
        "baseline_bounded": baseline_bounded,
        "baseline_matrix": baseline_matrix,
        "serial_bounded": serial_bounded,
        "parallel_bounded": parallel_bounded,
        "parallel_matrix": parallel_matrix,
        "scaling": scaling,
        "speedup_total": baseline_total / parallel_total,
        "speedup_serial": (baseline_total) / (serial_bounded + parallel_matrix),
        "speedup_bounded": baseline_bounded / parallel_bounded,
        "subsets_examined": serial_report.subsets_examined,
        "subsets_skipped": serial_report.subsets_skipped_by_symmetry,
        "gamma_misses": gamma_stats["shared_misses"],
        "orderings_examined": serial_report.orderings_examined,
        "normalized_verdict": normalized_cell.verdict.value,
        "normalized_method": normalized_cell.method,
    }


def _floor(quick: bool) -> float:
    return 2.0 if quick else 5.0


def _render(result: dict) -> list[str]:
    mode = "quick" if result["quick"] else "full"
    scaling = ", ".join(
        f"{workers}w={elapsed:.2f}s" for workers, elapsed in sorted(result["scaling"].items())
    )
    return [
        f"[E10:{mode}] bounded audit (N={result['bound']}): "
        f"PR1 scan {result['baseline_bounded']:.2f}s -> canonical {result['serial_bounded']:.2f}s "
        f"-> {WORKERS} workers {result['parallel_bounded']:.2f}s "
        f"({result['speedup_bounded']:.1f}x; {result['subsets_examined']} canonical subsets, "
        f"{result['subsets_skipped']} orbit duplicates never generated, "
        f"{result['gamma_misses']} shared-Γ computations for "
        f"{result['orderings_examined']} ordering checks)",
        f"[E10:{mode}] worker scaling: {scaling}",
        f"[E10:{mode}] catalog matrix: PR1 {result['baseline_matrix']:.2f}s -> "
        f"{WORKERS} workers {result['parallel_matrix']:.2f}s; pinned-sum cell: "
        f"{result['normalized_verdict']} [{result['normalized_method']}]",
        f"[E10:{mode}] decision workload speedup: {result['speedup_total']:.1f}x "
        f"(floor {_floor(result['quick'])}x)",
    ]


def test_parallel_decision_speedup(report_lines):
    result = run_benchmark(QUICK)
    report_lines.extend(_render(result))
    assert result["normalized_verdict"] == "equivalent"
    assert result["speedup_total"] >= SPEEDUP_FLOOR, (
        f"decision workload speedup {result['speedup_total']:.2f}x "
        f"below the {SPEEDUP_FLOOR}x floor"
    )


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small instance + relaxed floor (CI smoke)"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write {name, wall_s, speedup} records to PATH"
    )
    arguments = parser.parse_args()
    quick = arguments.quick or QUICK
    floor = _floor(quick)
    result = run_benchmark(quick)
    for line in _render(result):
        print(line)
    if arguments.json:
        from _jsonlog import json_record, write_json_records

        baseline_total = result["baseline_bounded"] + result["baseline_matrix"]
        parallel_total = result["parallel_bounded"] + result["parallel_matrix"]
        write_json_records(
            arguments.json,
            [
                json_record("parallel_decision.baseline_total", baseline_total, 1.0),
                json_record(
                    "parallel_decision.parallel_total", parallel_total, result["speedup_total"]
                ),
                json_record(
                    "parallel_decision.bounded_parallel",
                    result["parallel_bounded"],
                    result["speedup_bounded"],
                ),
            ],
        )
        print(f"(json records written to {arguments.json})")
    if result["speedup_total"] < floor:
        print(f"FAIL: speedup {result['speedup_total']:.2f}x below the {floor}x floor")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
