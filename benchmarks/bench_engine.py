"""Experiment E6 — evaluation-engine throughput on the warehouse workload.

The paper's introduction motivates aggregate queries as the workhorse of data
warehouses.  This benchmark measures the substrate itself: grouped aggregate
evaluation of the warehouse queries over instances of growing size, which is
what every brute-force oracle and counterexample search in the repository
ultimately pays for.
"""

from __future__ import annotations

import pytest

from repro.engine import clear_evaluation_caches, evaluate_aggregate
from repro.workloads import build_warehouse

SIZES = {
    "small": dict(stores=4, products=6, sales_per_store=10),
    "medium": dict(stores=8, products=12, sales_per_store=25),
    "large": dict(stores=16, products=20, sales_per_store=40),
}

QUERIES = ["revenue_per_store", "largest_sale", "large_sales_count", "distinct_products"]


@pytest.mark.paper_artifact("Introduction — warehouse workload (substrate)")
@pytest.mark.parametrize("size", sorted(SIZES))
@pytest.mark.parametrize("query_name", QUERIES)
def test_warehouse_query_evaluation(benchmark, size, query_name, report_lines):
    warehouse = build_warehouse(seed=1, **SIZES[size])
    query = warehouse.queries[query_name]

    def evaluate_cold():
        # Γ(q, D) is memoized per (query, database); clear it so the benchmark
        # keeps measuring actual evaluation rather than a cache hit.
        clear_evaluation_caches()
        return evaluate_aggregate(query, warehouse.database)

    result = benchmark(evaluate_cold)
    assert isinstance(result, dict)
    report_lines.append(
        f"[E6] {query_name:20s} on {size:6s} warehouse ({warehouse.fact_count:4d} facts): "
        f"{benchmark.stats.stats.mean * 1000:7.2f} ms, {len(result)} groups"
    )
