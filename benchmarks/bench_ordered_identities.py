"""Experiment E5 — throughput of the ordered-identity deciders (Section 4.2).

Deciding ``L → α(B) = α(B')`` is the inner loop of the bounded-equivalence
procedure; the paper notes that for functions like ``count`` this step is
linear while for ``sum``/``prod`` it requires the specialized procedures of
Propositions 4.5/4.7.  The benchmark measures the per-identity cost for every
aggregation function and runs the ablation of the generic single-witness
decider (Theorem 4.4) against the specialized cardinality decider for
``count``.
"""

from __future__ import annotations

import random

import pytest

from repro.aggregates import PAPER_FUNCTIONS, get_function
from repro.aggregates.functions import AggregationFunction
from repro.datalog import Constant, Variable
from repro.domains import Domain
from repro.orderings import enumerate_complete_orderings


def make_workload(function: AggregationFunction, instances: int = 60):
    rng = random.Random(7)
    terms = [Variable("u"), Variable("v"), Variable("w"), Constant(0), Constant(3)]
    orderings = list(enumerate_complete_orderings(terms, Domain.RATIONALS))
    arity = function.input_arity if function.input_arity is not None else 1
    workload = []
    for _ in range(instances):
        ordering = rng.choice(orderings)
        pool = list(ordering.terms())
        left = [tuple(rng.choice(pool) for _ in range(arity)) for _ in range(rng.randint(0, 5))]
        right = [tuple(rng.choice(pool) for _ in range(arity)) for _ in range(rng.randint(0, 5))]
        workload.append((ordering, left, right))
    return workload


@pytest.mark.paper_artifact("Section 4.2 — ordered identities")
@pytest.mark.parametrize("function_name", [f.name for f in PAPER_FUNCTIONS])
def test_ordered_identity_throughput(benchmark, function_name, report_lines):
    function = get_function(function_name)
    workload = make_workload(function)

    def run():
        return sum(
            1
            for ordering, left, right in workload
            if function.decide_ordered_identity(ordering, left, right)
        )

    valid = benchmark(run)
    per_identity_us = benchmark.stats.stats.mean / len(workload) * 1e6
    report_lines.append(
        f"[E5] {function_name:>6}: {per_identity_us:8.1f} µs per ordered identity "
        f"({valid}/{len(workload)} valid on the random workload)"
    )


@pytest.mark.paper_artifact("Specialized-decider ablation (DESIGN.md)")
@pytest.mark.parametrize("decider", ["specialized-cardinality", "generic-shiftable"])
def test_count_decider_ablation(benchmark, decider, report_lines):
    function = get_function("count")
    workload = make_workload(function, instances=80)

    if decider == "specialized-cardinality":
        def decide(ordering, left, right):
            return function.decide_ordered_identity(ordering, left, right)
    else:
        # The generic Theorem 4.4 route: instantiate the ordering and compare.
        generic = AggregationFunction.decide_ordered_identity

        def decide(ordering, left, right):
            return generic(function, ordering, left, right)

    def run():
        return [decide(ordering, left, right) for ordering, left, right in workload]

    results = benchmark(run)
    report_lines.append(
        f"[E5 ablation] count decider ({decider}): "
        f"{benchmark.stats.stats.mean / len(workload) * 1e6:.1f} µs per identity, "
        f"{sum(results)} valid"
    )
