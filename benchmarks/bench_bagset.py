"""Experiment E4 — bag-set semantics via count-queries (Section 8).

Two routes decide bag-set equivalence of non-aggregate queries: the paper's
reduction to ``count``-queries, and a direct comparison of answer
multiplicities inside the symbolic procedure.  The benchmark runs both on the
same pairs, checks that they agree, and compares their cost.
"""

from __future__ import annotations

import pytest

from repro import parse_query
from repro.core import bag_set_equivalent, set_equivalent

PAIRS = {
    "projection": ("q(x) :- p(x, y)", "q(x) :- p(x, y), p(x, z)"),
    "renaming": ("q(x) :- p(x, y), not r(y)", "q(x) :- p(x, z), not r(z)"),
    "duplicate-disjunct": ("q(x) :- p(x)", "q(x) :- p(x) ; p(x)"),
}

EXPECTED_BAG_SET = {"projection": False, "renaming": True, "duplicate-disjunct": False}
EXPECTED_SET = {"projection": True, "renaming": True, "duplicate-disjunct": True}


@pytest.mark.paper_artifact("Section 8 — bag-set semantics corollary")
@pytest.mark.parametrize("route", ["count-query", "direct"])
@pytest.mark.parametrize("pair", sorted(PAIRS))
def test_bag_set_equivalence_routes(benchmark, route, pair, report_lines):
    first = parse_query(PAIRS[pair][0])
    second = parse_query(PAIRS[pair][1])

    def run():
        return bag_set_equivalent(first, second, via_count_queries=(route == "count-query"))

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.equivalent == EXPECTED_BAG_SET[pair]
    report_lines.append(
        f"[E4] {pair:18s} via {route:11s}: bag-set equivalent = {report.equivalent} "
        f"(paper: count-query reduction decides this)"
    )


@pytest.mark.paper_artifact("Section 8 — set vs bag-set comparison")
@pytest.mark.parametrize("pair", sorted(PAIRS))
def test_set_semantics_baseline(benchmark, pair, report_lines):
    first = parse_query(PAIRS[pair][0])
    second = parse_query(PAIRS[pair][1])

    def run():
        return set_equivalent(first, second)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.equivalent == EXPECTED_SET[pair]
    report_lines.append(
        f"[E4] {pair:18s} under set semantics: equivalent = {report.equivalent}"
    )
