"""Experiment E3 — database decompositions and the decomposition principles
(Propositions 5.1 / 5.2, Theorem 6.5).

For growing databases the benchmark constructs the decomposition ∆ of the
database with respect to a pair of sum-queries (group functions, i.e. the
inclusion–exclusion principle) and a pair of max-queries (idempotent
principle), verifies Properties 1–3, and checks that recombining the per-part
aggregates reproduces the direct aggregate — the computational heart of the
reduction from equivalence to local equivalence.
"""

from __future__ import annotations

import pytest

from repro import parse_query
from repro.aggregates import get_function
from repro.core import (
    decomposition,
    direct_aggregate,
    recombine_group,
    recombine_idempotent,
    verify_decomposition,
)
from repro.engine import group_assignments
from repro.workloads import QueryGenerator, QueryProfile

SUM_FIRST = parse_query("q(x, sum(y)) :- p(x, y), not r(y)")
SUM_SECOND = parse_query("q(x, sum(y)) :- p(x, y), not r(y), y > 0 ; p(x, y), not r(y), y <= 0")
MAX_FIRST = parse_query("q(x, max(y)) :- p(x, y), not r(y)")
MAX_SECOND = parse_query("q(x, max(y)) :- p(x, y), not r(y) ; p(x, y), not r(y), p(x, y)")

DATABASE_SIZES = [6, 12, 20]


def make_database(size: int):
    """A deterministic database with ``size`` p-facts spread over a few groups
    and an r-fact blocking roughly every fourth aggregation value."""
    import random

    rng = random.Random(size)
    facts = []
    for index in range(size):
        group = index % 3 + 1
        value = rng.randint(-4, 8)
        facts.append(("p", (group, value)))
        if index % 4 == 0:
            facts.append(("r", (value,)))
    from repro.datalog import Database

    return Database(facts)


@pytest.mark.paper_artifact("Propositions 5.1/5.2 and Theorem 6.5")
@pytest.mark.parametrize("size", DATABASE_SIZES)
def test_group_decomposition_and_recombination(benchmark, size, report_lines):
    database = make_database(size)
    function = get_function("sum")
    groups = list(group_assignments(SUM_FIRST, database))

    def run():
        checked = 0
        for group in groups:
            parts = decomposition(SUM_FIRST, SUM_SECOND, database, group)
            if not parts:
                continue
            assert verify_decomposition(SUM_FIRST, SUM_SECOND, database, group, parts).is_decomposition
            direct = direct_aggregate(function, SUM_FIRST, database, group)
            assert direct == recombine_group(function, SUM_FIRST, parts, group)
            checked += 1
        return checked

    checked = benchmark.pedantic(run, rounds=1, iterations=1)
    report_lines.append(
        f"[E3] sum (inclusion–exclusion): database with {len(database)} facts, "
        f"{checked} groups decomposed and recombined exactly"
    )


@pytest.mark.paper_artifact("Proposition 5.1 (idempotent principle)")
@pytest.mark.parametrize("size", DATABASE_SIZES)
def test_idempotent_decomposition_and_recombination(benchmark, size, report_lines):
    database = make_database(size)
    function = get_function("max")
    groups = list(group_assignments(MAX_FIRST, database))

    def run():
        checked = 0
        for group in groups:
            parts = decomposition(MAX_FIRST, MAX_SECOND, database, group)
            if not parts:
                continue
            direct = direct_aggregate(function, MAX_FIRST, database, group)
            assert direct == recombine_idempotent(function, MAX_FIRST, parts, group)
            checked += 1
        return checked

    checked = benchmark.pedantic(run, rounds=1, iterations=1)
    report_lines.append(
        f"[E3] max (idempotent principle): database with {len(database)} facts, "
        f"{checked} groups recombined exactly"
    )
