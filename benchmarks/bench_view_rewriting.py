"""Experiment E12 — view-based rewriting on the scaled warehouse.

The paper motivates aggregate-query equivalence as the safety oracle of
data-warehouse rewriting optimizers: a pre-computed materialized view may be
substituted for a fact-table subquery only when the rewriting is equivalent
to the original over *every* database.  PRs 1–3 built the oracle; the
rewriting subsystem (:mod:`repro.rewriting`) uses it as one: candidates are
synthesized over the view catalog, unfolded back to base predicates, and
only candidates the dispatcher proves EQUIVALENT are emitted as safe.

This benchmark drives the end-to-end warehouse story:

1. build the scaled warehouse and its pre-aggregated view catalog
   (:func:`repro.workloads.build_view_scenario`),
2. run ``rewrite()`` for every analyst report — every emitted rewriting must
   be verified EQUIVALENT by the dispatcher (hard assertion), and
3. evaluate each report both directly against the fact table and through its
   best (cost-ranked) rewriting over the materialized view extents — the
   reports must be identical, and the rewritten evaluations must beat the
   direct ones by ≥ 5x at full scale (hard floor 3x; quick mode shrinks the
   instance and the floor for CI smoke runs).

Materialization happens once, outside the timers: a warehouse maintains its
views incrementally, so the steady-state cost of a report is the evaluation
over the extents, not the view build.

Run under pytest (``pytest benchmarks/bench_view_rewriting.py``) or
standalone (``python benchmarks/bench_view_rewriting.py [--quick]
[--json PATH]``).  ``REPRO_BENCH_QUICK=1`` selects quick mode under pytest.
"""

from __future__ import annotations

import os
import time

from repro import Verdict
from repro.engine import clear_evaluation_caches, clear_symbolic_caches
from repro.engine.evaluator import evaluate
from repro.rewriting import RewritingEngine
from repro.workloads import build_view_scenario

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Acceptance floor for best-rewriting vs direct fact-table evaluation
#: (ISSUE 4 demands >= 5x at full scale with a hard floor of 3x; the quick
#: instance is too small to amortize per-query overheads as far).
SPEEDUP_FLOOR = 1.5 if QUICK else 3.0
SPEEDUP_TARGET = 5.0

#: Verification seed (witness searches) — results must not depend on it.
SEED = 13


def _scenario(quick: bool):
    if quick:
        return build_view_scenario(stores=6, products=6, sales_per_store=40, seed=13)
    return build_view_scenario(stores=40, products=25, sales_per_store=600, seed=13)


def _cold() -> None:
    clear_symbolic_caches()
    clear_evaluation_caches()


def run_benchmark(quick: bool) -> dict:
    scenario = _scenario(quick)
    engine = RewritingEngine(scenario.views)

    # --- synthesis + verification (the oracle at work) ------------------
    _cold()
    start = time.perf_counter()
    reports = {
        name: engine.rewrite(query, database=scenario.database, seed=SEED)
        for name, query in scenario.queries.items()
    }
    rewrite_wall = time.perf_counter() - start

    # Hard acceptance requirement: every emitted rewriting is verified
    # EQUIVALENT by the dispatcher, and every query has a best rewriting.
    safe_count = 0
    for name, report in reports.items():
        assert report.safe, f"no safe rewriting emitted for {name}"
        for verified in report.safe:
            assert verified.result.verdict is Verdict.EQUIVALENT, (name, verified.candidate.name)
            safe_count += 1
        assert report.best.estimated_cost is not None
        assert report.direct_cost is not None

    materialized = scenario.materialized()

    # --- direct fact-table evaluation -----------------------------------
    _cold()
    start = time.perf_counter()
    direct_results = {
        name: evaluate(query, scenario.database)
        for name, query in scenario.queries.items()
    }
    direct_wall = time.perf_counter() - start

    # --- best rewriting over the materialized extents -------------------
    _cold()
    start = time.perf_counter()
    rewritten_results = {
        name: evaluate(reports[name].best.candidate.query, materialized)
        for name in scenario.queries
    }
    rewritten_wall = time.perf_counter() - start

    # Hard acceptance requirement: identical reports.
    assert direct_results == rewritten_results

    rejected = sum(len(report.rejected) for report in reports.values())
    return {
        "quick": quick,
        "facts": scenario.fact_count,
        "queries": len(scenario.queries),
        "views": len(scenario.views),
        "safe": safe_count,
        "rejected": rejected,
        "rewrite_wall": rewrite_wall,
        "direct_wall": direct_wall,
        "rewritten_wall": rewritten_wall,
        "speedup": direct_wall / rewritten_wall,
        "best": {
            name: (
                report.best.candidate.name,
                report.best.estimated_cost,
                report.direct_cost,
            )
            for name, report in reports.items()
        },
    }


def _floor(quick: bool) -> float:
    return 1.5 if quick else 3.0


def _render(result: dict) -> list[str]:
    mode = "quick" if result["quick"] else "full"
    best_line = ", ".join(
        f"{name}→{chosen} (cost {cost} vs {direct})"
        for name, (chosen, cost, direct) in sorted(result["best"].items())
    )
    return [
        f"[E12:{mode}] warehouse: {result['facts']} facts, {result['queries']} reports, "
        f"{result['views']} views; rewrite() emitted {result['safe']} safe rewriting(s), "
        f"rejected {result['rejected']} unsafe candidate(s) in {result['rewrite_wall']:.2f}s "
        f"(all safe rewritings verified EQUIVALENT)",
        f"[E12:{mode}] reports: direct fact-table {result['direct_wall']:.2f}s -> "
        f"best rewritings over materialized views {result['rewritten_wall']:.2f}s "
        f"({result['speedup']:.1f}x, target {SPEEDUP_TARGET}x, floor "
        f"{_floor(result['quick'])}x), identical results",
        f"[E12:{mode}] chosen rewritings: {best_line}",
    ]


def test_view_rewriting_speedup(report_lines):
    result = run_benchmark(QUICK)
    report_lines.extend(_render(result))
    assert result["safe"] >= result["queries"]
    assert result["rejected"] > 0
    assert result["speedup"] >= SPEEDUP_FLOOR, (
        f"view-rewriting speedup {result['speedup']:.2f}x below the {SPEEDUP_FLOOR}x floor"
    )


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small instance + relaxed floor (CI smoke)"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write {name, wall_s, speedup} records to PATH"
    )
    arguments = parser.parse_args()
    quick = arguments.quick or QUICK
    floor = _floor(quick)
    result = run_benchmark(quick)
    for line in _render(result):
        print(line)
    if arguments.json:
        from _jsonlog import json_record, write_json_records

        write_json_records(
            arguments.json,
            [
                json_record("view_rewriting.direct_eval", result["direct_wall"], 1.0),
                json_record(
                    "view_rewriting.rewritten_eval",
                    result["rewritten_wall"],
                    result["speedup"],
                ),
                json_record("view_rewriting.synthesis_verify", result["rewrite_wall"], None),
            ],
        )
        print(f"(json records written to {arguments.json})")
    if result["speedup"] < floor:
        print(f"FAIL: speedup {result['speedup']:.2f}x below the {floor}x floor")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
