"""Machine-readable benchmark records (the ``--json PATH`` flag).

Each benchmark script emits a list of ``{"name": ..., "wall_s": ...,
"speedup": ..., "engine": ...}`` objects — one per headline measurement — so
a perf trajectory can be tracked across PRs by collecting the files CI (or a
developer) writes per run.  ``speedup`` is relative to the record's stated
baseline (1.0 for the baselines themselves).  ``engine`` names the evaluation
back end (``naive`` | ``planned`` | ``compiled``) that produced the
measurement; records that do not pin one explicitly are stamped with the
process-wide active engine, so a trajectory never silently mixes back ends.
``counters`` snapshots the metrics registry (:data:`repro.obs.REGISTRY`) at
record time, so a perf regression can be cross-read against the work the run
actually performed (kernel compiles, subsets enumerated, pool forks, ...).
"""

from __future__ import annotations

import json
from typing import Optional, Sequence


def json_record(
    name: str,
    wall_s: float,
    speedup: Optional[float],
    engine: Optional[str] = None,
    counters: Optional[dict] = None,
) -> dict:
    """One benchmark record; ``speedup`` may be None when no baseline applies.

    ``engine`` defaults to the active engine mode so every record names the
    back end it measured even when the benchmark did not choose one.
    ``counters`` defaults to a snapshot of the metrics registry at the time
    the record is built — the cumulative work counters of the run so far.
    """
    if engine is None:
        from repro.engine import active_engine

        engine = active_engine()
    if counters is None:
        from repro.obs import REGISTRY

        counters = REGISTRY.snapshot()
    return {
        "name": name,
        "wall_s": round(float(wall_s), 6),
        "speedup": None if speedup is None else round(float(speedup), 3),
        "engine": engine,
        "counters": dict(counters),
    }


def write_json_records(path: str, records: Sequence[dict]) -> None:
    """Write the records as a JSON array (one file per benchmark run)."""
    for record in records:
        missing = {"name", "wall_s", "speedup", "engine"} - set(record)
        if missing:
            raise ValueError(f"benchmark record {record!r} lacks keys: {sorted(missing)}")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(list(records), handle, indent=2)
        handle.write("\n")
