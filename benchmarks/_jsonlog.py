"""Machine-readable benchmark records (the ``--json PATH`` flag).

Each benchmark script emits a list of ``{"name": ..., "wall_s": ...,
"speedup": ...}`` objects — one per headline measurement — so a perf
trajectory can be tracked across PRs by collecting the files CI (or a
developer) writes per run.  ``speedup`` is relative to the record's stated
baseline (1.0 for the baselines themselves).
"""

from __future__ import annotations

import json
from typing import Optional, Sequence


def json_record(name: str, wall_s: float, speedup: Optional[float]) -> dict:
    """One benchmark record; ``speedup`` may be None when no baseline applies."""
    return {
        "name": name,
        "wall_s": round(float(wall_s), 6),
        "speedup": None if speedup is None else round(float(speedup), 3),
    }


def write_json_records(path: str, records: Sequence[dict]) -> None:
    """Write the records as a JSON array (one file per benchmark run)."""
    for record in records:
        missing = {"name", "wall_s", "speedup"} - set(record)
        if missing:
            raise ValueError(f"benchmark record {record!r} lacks keys: {sorted(missing)}")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(list(records), handle, indent=2)
        handle.write("\n")
