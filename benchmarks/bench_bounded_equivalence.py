"""Experiment E1 — cost of the bounded-equivalence procedure (Theorem 4.8).

The paper's complexity discussion after Theorem 4.8 gives a double-exponential
upper bound in the term size: the procedure enumerates all subsets of BASE and
all complete orderings of T.  The benchmark measures the running time for
N = 0, 1, 2 on a fixed query pair, reports the sizes of the enumerated spaces,
and runs the symmetry-reduction ablation called out in DESIGN.md.
"""

from __future__ import annotations

import pytest

from repro import parse_query
from repro.core import bounded_equivalence, build_base
from repro.orderings import count_complete_orderings

FIRST = parse_query("q(count()) :- p(y), not r(y)")
SECOND = parse_query("q(count()) :- p(y)")


@pytest.mark.paper_artifact("Theorem 4.8 complexity discussion")
@pytest.mark.parametrize("bound", [0, 1, 2])
def test_bounded_equivalence_scaling_in_n(benchmark, bound, report_lines):
    report = benchmark.pedantic(
        bounded_equivalence, args=(FIRST, SECOND, bound), rounds=1, iterations=1
    )
    _, base, _ = build_base(FIRST, SECOND, bound)
    report_lines.append(
        f"[E1] N={bound}: |BASE|={len(base):2d}, subsets examined={report.subsets_examined:4d}, "
        f"orderings examined={report.orderings_examined:5d}, "
        f"equivalent={report.equivalent} (expected: non-equivalent for N>=1)"
    )
    if bound >= 1:
        assert not report.equivalent
    else:
        assert report.equivalent


@pytest.mark.paper_artifact("Theorem 4.8 complexity discussion")
@pytest.mark.parametrize("variables", [2, 3, 4])
def test_ordering_enumeration_grows_superexponentially(benchmark, variables, report_lines):
    """The number of complete orderings (ordered Bell numbers) is one of the
    two exponential factors of the procedure."""
    from repro.datalog import Variable
    from repro.orderings import enumerate_complete_orderings
    from repro.domains import Domain

    terms = [Variable(f"u{i}") for i in range(variables)]

    def enumerate_all():
        return sum(1 for _ in enumerate_complete_orderings(terms, Domain.RATIONALS))

    count = benchmark(enumerate_all)
    assert count == count_complete_orderings(variables)
    report_lines.append(f"[E1] complete orderings of {variables} variables: {count}")


@pytest.mark.paper_artifact("Symmetry-reduction ablation (DESIGN.md)")
@pytest.mark.parametrize("symmetry_reduction", [True, False], ids=["reduced", "naive"])
def test_symmetry_reduction_ablation(benchmark, symmetry_reduction, report_lines):
    equivalent_first = parse_query("q(max(y)) :- p(y), not r(y)")
    equivalent_second = parse_query("q(max(y)) :- p(y), not r(y) ; p(y), not r(y)")

    def run():
        return bounded_equivalence(
            equivalent_first, equivalent_second, 2, symmetry_reduction=symmetry_reduction
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.equivalent
    label = "with symmetry reduction" if symmetry_reduction else "naive enumeration"
    report_lines.append(
        f"[E1 ablation] {label}: subsets examined={report.subsets_examined}, "
        f"skipped={report.subsets_skipped_by_symmetry}"
    )
