"""Shared configuration for the benchmark harness.

Each ``bench_*.py`` file regenerates one artifact of the paper (Table 1,
Table 2, or a complexity claim) — see DESIGN.md's per-experiment index and
EXPERIMENTS.md for the mapping and for the paper-vs-measured record.

Besides the timing numbers collected by pytest-benchmark, every benchmark
appends one or more human-readable result rows to a session-wide report; the
report is printed at the end of the run and written to
``benchmarks/reproduction_summary.txt`` so it can be diffed against
EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.store import reset_shared_store

_SUMMARY_PATH = Path(__file__).resolve().parent / "reproduction_summary.txt"


@pytest.fixture(autouse=True)
def _isolated_verdict_store(monkeypatch, tmp_path):
    """Benchmarks measure decision work, so no benchmark may be fed verdicts
    another one settled: drop the process-wide store around each, and point
    an inherited ``REPRO_STORE_PATH`` at a per-test file (the store
    benchmark manages its own paths explicitly)."""
    import os

    if os.environ.get("REPRO_STORE_PATH"):
        monkeypatch.setenv("REPRO_STORE_PATH", str(tmp_path / "verdicts.sqlite3"))
    reset_shared_store()
    yield
    reset_shared_store()


def pytest_configure(config):
    config.addinivalue_line("markers", "paper_artifact(name): maps a benchmark to a paper artifact")


@pytest.fixture(scope="session")
def report_lines():
    """Collector for human-readable result rows written at the end of the run."""
    lines: list[str] = []
    yield lines
    if not lines:
        return
    header = [
        "=" * 78,
        "Reproduction summary (paper artifact -> measured)",
        "=" * 78,
    ]
    body = header + lines
    _SUMMARY_PATH.write_text("\n".join(body) + "\n")
    print()
    for line in body:
        print(line)
    print(f"(written to {_SUMMARY_PATH})")
