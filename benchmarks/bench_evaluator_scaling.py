"""Experiment E9 — indexed/planned engine vs the naive reference, at scale.

The PR replacing the nested-loop evaluator with the planned, index-probing
engine (see :mod:`repro.engine`) claims a >= 5x speedup on warehouse-scale
inputs.  This benchmark scales :func:`build_warehouse` (default
``stores=50, sales_per_store=200``, ~8k facts), evaluates the analyst catalog
with both engines, and records per-query and aggregate speedups.

Run under pytest (``pytest benchmarks/bench_evaluator_scaling.py``) or
standalone (``python benchmarks/bench_evaluator_scaling.py``).  Set
``REPRO_BENCH_QUICK=1`` for the CI smoke configuration (a smaller warehouse
and a relaxed speedup floor, so slow shared runners do not flake).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.engine import (
    clear_evaluation_caches,
    clear_plan_cache,
    naive_satisfying_assignments,
    satisfying_assignments,
)
from repro.workloads import build_warehouse

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Scaled warehouse configuration (quick mode shrinks it for CI smoke runs).
SCALE = (
    dict(stores=10, products=8, sales_per_store=40, seed=7)
    if QUICK
    else dict(stores=50, products=8, sales_per_store=200, seed=7)
)

#: Queries whose shape (joins on bound columns, pushed filters) the planner
#: accelerates; the aggregate speedup is measured over the whole catalog.
JOIN_HEAVY = ["large_sales_count", "premium_returned_revenue", "premium_kept_products"]

#: Acceptance floor for the whole-catalog speedup (ISSUE 1 demands >= 5x at
#: full scale; quick mode keeps a smaller cushion for noisy CI runners).
SPEEDUP_FLOOR = 2.0 if QUICK else 5.0


def _best_of(callable_, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _measure(warehouse) -> dict[str, tuple[float, float]]:
    """Per-query ``(naive_seconds, planned_seconds)``, fully cold each run.

    The planned run is timed against a freshly rebuilt ``Database`` with the
    plan and Γ caches cleared, so the measurement includes planning and lazy
    index construction — not just probing warm indexes.
    """
    from repro.datalog.database import Database

    timings: dict[str, tuple[float, float]] = {}
    for name, query in sorted(warehouse.queries.items()):
        naive = _best_of(lambda: naive_satisfying_assignments(query, warehouse.database))

        planned = float("inf")
        for _ in range(3):
            fresh_database = Database(warehouse.database.facts)  # no warm indexes
            clear_evaluation_caches()
            clear_plan_cache()
            start = time.perf_counter()
            satisfying_assignments(query, fresh_database)
            planned = min(planned, time.perf_counter() - start)
        timings[name] = (naive, planned)
    return timings


@pytest.mark.paper_artifact("Engine substrate — indexed/planned join evaluation")
def test_planned_engine_speedup(report_lines):
    warehouse = build_warehouse(**SCALE)
    mode = "quick" if QUICK else "full"

    # The two engines must agree before their timings mean anything.
    for name, query in sorted(warehouse.queries.items()):
        naive = naive_satisfying_assignments(query, warehouse.database)
        planned = satisfying_assignments(query, warehouse.database)
        assert sorted(naive, key=repr) == sorted(planned, key=repr), name

    timings = _measure(warehouse)
    total_naive = sum(naive for naive, _ in timings.values())
    total_planned = sum(planned for _, planned in timings.values())
    overall = total_naive / total_planned

    for name, (naive, planned) in sorted(timings.items()):
        report_lines.append(
            f"[E9] {name:26s} ({mode}, {warehouse.fact_count} facts): "
            f"naive {naive * 1000:8.2f} ms, planned {planned * 1000:7.2f} ms, "
            f"speedup {naive / planned:6.1f}x"
        )
    report_lines.append(
        f"[E9] {'TOTAL':26s} ({mode}, {warehouse.fact_count} facts): "
        f"naive {total_naive * 1000:8.2f} ms, planned {total_planned * 1000:7.2f} ms, "
        f"speedup {overall:6.1f}x (floor {SPEEDUP_FLOOR}x)"
    )

    assert overall >= SPEEDUP_FLOOR, (
        f"planned engine only {overall:.1f}x faster than the naive reference "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
    # The join-heavy queries are where the indexes matter most; each must
    # individually clear the floor at full scale.
    if not QUICK:
        for name in JOIN_HEAVY:
            naive, planned = timings[name]
            assert naive / planned >= SPEEDUP_FLOOR, (
                f"{name}: {naive / planned:.1f}x < {SPEEDUP_FLOOR}x"
            )


def main() -> None:
    warehouse = build_warehouse(**SCALE)
    print(f"warehouse: {warehouse.fact_count} facts ({SCALE})")
    timings = _measure(warehouse)
    total_naive = sum(naive for naive, _ in timings.values())
    total_planned = sum(planned for _, planned in timings.values())
    for name, (naive, planned) in sorted(timings.items()):
        print(
            f"{name:26s} naive {naive * 1000:8.2f} ms  planned {planned * 1000:7.2f} ms  "
            f"speedup {naive / planned:6.1f}x"
        )
    print(f"{'TOTAL':26s} naive {total_naive * 1000:8.2f} ms  planned "
          f"{total_planned * 1000:7.2f} ms  speedup {total_naive / total_planned:6.1f}x")


if __name__ == "__main__":
    main()
