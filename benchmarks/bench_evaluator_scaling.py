"""Experiment E9 — the engine ladder at warehouse scale.

Two acceptance claims share this workload (a scaled :func:`build_warehouse`,
default ``stores=50, sales_per_store=200``, ~8k facts, evaluated over the
analyst catalog):

* **naive -> planned** (PR 1): the planned, index-probing engine is >= 5x
  faster than the nested-loop reference, measured *cold* — a fresh
  ``Database`` with plan and Γ caches cleared, so the timing includes
  planning and lazy index construction.

* **planned -> compiled** (the columnar-engine PR): the code-generated
  columnar kernels are >= 5x faster than the planned interpreter at the
  ``evaluate()`` level, measured *warm* — stores interned, kernels compiled,
  memoized Γ dropped between repetitions.  Warm is the representative regime:
  the counterexample sweep evaluates thousands of (subset, ordering) cells
  through the same per-plan kernels, so interning and compilation amortize to
  noise while the per-evaluation cost is paid every cell.

The residual gap on aggregate-heavy queries is dominated by exact
``Fraction`` arithmetic inside the aggregate functions — α-application cost
both engines share — so the per-query floor is asserted only on the
kernel-dominated queries while the catalog-wide total must clear the floor.

Run under pytest (``pytest benchmarks/bench_evaluator_scaling.py``) or
standalone (``python benchmarks/bench_evaluator_scaling.py [--quick]
[--json PATH]``).  Set ``REPRO_BENCH_QUICK=1`` for the CI smoke
configuration (a smaller warehouse and relaxed speedup floors, so slow
shared runners do not flake).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.engine import (
    clear_evaluation_caches,
    clear_plan_cache,
    engine_scope,
    evaluate,
    naive_satisfying_assignments,
    satisfying_assignments,
)
from repro.engine.evaluator import _satisfying_assignments_cached
from repro.workloads import build_warehouse

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Scaled warehouse configuration (quick mode shrinks it for CI smoke runs).
SCALE = (
    dict(stores=10, products=8, sales_per_store=40, seed=7)
    if QUICK
    else dict(stores=50, products=8, sales_per_store=200, seed=7)
)

#: Queries whose shape (joins on bound columns, pushed filters) the planner
#: accelerates; the aggregate speedup is measured over the whole catalog.
JOIN_HEAVY = ["large_sales_count", "premium_returned_revenue", "premium_kept_products"]

#: Queries where the compiled kernels dominate end-to-end time (small answer
#: sets, cheap or absent α-application); each must clear KERNEL_FLOOR
#: individually at full scale.  The aggregate-heavy rest of the catalog is
#: held only to the catalog-wide COMPILED_FLOOR.
KERNEL_WINS = ["premium_kept_products", "revenue_per_store", "revenue_per_store_alt"]

#: Acceptance floor for the whole-catalog naive->planned speedup (ISSUE 1
#: demands >= 5x at full scale; quick mode keeps a smaller cushion for noisy
#: CI runners).
SPEEDUP_FLOOR = 2.0 if QUICK else 5.0

#: Acceptance floor for the whole-catalog planned->compiled speedup at the
#: evaluate() level (this PR demands >= 5x warm at full scale; measured
#: ~6.5x, with the shared Fraction-arithmetic α cost bounding the total).
COMPILED_FLOOR = 1.5 if QUICK else 5.0

#: Per-query floor for the kernel-dominated queries (measured 40-60x).
KERNEL_FLOOR = 10.0


def _best_of(callable_, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _measure(warehouse) -> dict[str, tuple[float, float]]:
    """Per-query ``(naive_seconds, planned_seconds)``, fully cold each run.

    The planned run is timed against a freshly rebuilt ``Database`` with the
    plan and Γ caches cleared, so the measurement includes planning and lazy
    index construction — not just probing warm indexes.
    """
    from repro.datalog.database import Database

    timings: dict[str, tuple[float, float]] = {}
    for name, query in sorted(warehouse.queries.items()):
        naive = _best_of(lambda: naive_satisfying_assignments(query, warehouse.database))

        planned = float("inf")
        for _ in range(3):
            fresh_database = Database(warehouse.database.facts)  # no warm indexes
            clear_evaluation_caches()
            clear_plan_cache()
            with engine_scope("planned"):
                start = time.perf_counter()
                satisfying_assignments(query, fresh_database)
            planned = min(planned, time.perf_counter() - start)
        timings[name] = (naive, planned)
    return timings


def _measure_warm(warehouse, mode: str, repeats: int = 5) -> dict[str, float]:
    """Per-query warm ``evaluate()`` seconds under the given engine mode.

    A first untimed call interns the store, compiles the kernels, plans the
    conditions and builds the indexes; each timed repetition then drops only
    the memoized Γ results so both engines recompute the evaluation proper.
    """
    database = warehouse.database
    timings: dict[str, float] = {}
    with engine_scope(mode):
        for name, query in sorted(warehouse.queries.items()):
            evaluate(query, database)  # warm kernels, store, plans, indexes
            best = float("inf")
            for _ in range(repeats):
                _satisfying_assignments_cached.cache_clear()
                start = time.perf_counter()
                evaluate(query, database)
                best = min(best, time.perf_counter() - start)
            timings[name] = best
    return timings


@pytest.mark.paper_artifact("Engine substrate — indexed/planned join evaluation")
def test_planned_engine_speedup(report_lines):
    warehouse = build_warehouse(**SCALE)
    mode = "quick" if QUICK else "full"

    # The two engines must agree before their timings mean anything.
    with engine_scope("planned"):
        for name, query in sorted(warehouse.queries.items()):
            naive = naive_satisfying_assignments(query, warehouse.database)
            planned = satisfying_assignments(query, warehouse.database)
            assert sorted(naive, key=repr) == sorted(planned, key=repr), name

    timings = _measure(warehouse)
    total_naive = sum(naive for naive, _ in timings.values())
    total_planned = sum(planned for _, planned in timings.values())
    overall = total_naive / total_planned

    for name, (naive, planned) in sorted(timings.items()):
        report_lines.append(
            f"[E9] {name:26s} ({mode}, {warehouse.fact_count} facts): "
            f"naive {naive * 1000:8.2f} ms, planned {planned * 1000:7.2f} ms, "
            f"speedup {naive / planned:6.1f}x"
        )
    report_lines.append(
        f"[E9] {'TOTAL':26s} ({mode}, {warehouse.fact_count} facts): "
        f"naive {total_naive * 1000:8.2f} ms, planned {total_planned * 1000:7.2f} ms, "
        f"speedup {overall:6.1f}x (floor {SPEEDUP_FLOOR}x)"
    )

    assert overall >= SPEEDUP_FLOOR, (
        f"planned engine only {overall:.1f}x faster than the naive reference "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
    # The join-heavy queries are where the indexes matter most; each must
    # individually clear the floor at full scale.
    if not QUICK:
        for name in JOIN_HEAVY:
            naive, planned = timings[name]
            assert naive / planned >= SPEEDUP_FLOOR, (
                f"{name}: {naive / planned:.1f}x < {SPEEDUP_FLOOR}x"
            )


@pytest.mark.paper_artifact("Engine substrate — columnar compiled evaluation")
def test_compiled_engine_speedup(report_lines):
    warehouse = build_warehouse(**SCALE)
    mode = "quick" if QUICK else "full"

    # Agreement first: evaluate() must be engine-invariant on the catalog.
    for name, query in sorted(warehouse.queries.items()):
        with engine_scope("planned"):
            planned_result = evaluate(query, warehouse.database)
        with engine_scope("compiled"):
            compiled_result = evaluate(query, warehouse.database)
        assert planned_result == compiled_result, name

    planned = _measure_warm(warehouse, "planned")
    compiled = _measure_warm(warehouse, "compiled")
    total_planned = sum(planned.values())
    total_compiled = sum(compiled.values())
    overall = total_planned / total_compiled

    for name in sorted(planned):
        report_lines.append(
            f"[E9c] {name:26s} ({mode}, {warehouse.fact_count} facts): "
            f"planned {planned[name] * 1000:7.2f} ms, "
            f"compiled {compiled[name] * 1000:7.2f} ms, "
            f"speedup {planned[name] / compiled[name]:6.1f}x"
        )
    report_lines.append(
        f"[E9c] {'TOTAL':26s} ({mode}, {warehouse.fact_count} facts): "
        f"planned {total_planned * 1000:7.2f} ms, "
        f"compiled {total_compiled * 1000:7.2f} ms, "
        f"speedup {overall:6.1f}x (floor {COMPILED_FLOOR}x)"
    )

    assert overall >= COMPILED_FLOOR, (
        f"compiled engine only {overall:.1f}x faster than the planned engine "
        f"(floor {COMPILED_FLOOR}x)"
    )
    if not QUICK:
        for name in KERNEL_WINS:
            ratio = planned[name] / compiled[name]
            assert ratio >= KERNEL_FLOOR, f"{name}: {ratio:.1f}x < {KERNEL_FLOOR}x"


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small warehouse + relaxed floors (CI smoke)"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write {name, wall_s, speedup, engine} records to PATH"
    )
    arguments = parser.parse_args()
    quick = arguments.quick or QUICK
    scale = (
        dict(stores=10, products=8, sales_per_store=40, seed=7)
        if quick
        else dict(stores=50, products=8, sales_per_store=200, seed=7)
    )
    warehouse = build_warehouse(**scale)
    print(f"warehouse: {warehouse.fact_count} facts ({scale})")

    timings = _measure(warehouse)
    total_naive = sum(naive for naive, _ in timings.values())
    total_planned_cold = sum(planned for _, planned in timings.values())
    for name, (naive, planned) in sorted(timings.items()):
        print(
            f"{name:26s} naive {naive * 1000:8.2f} ms  planned {planned * 1000:7.2f} ms  "
            f"speedup {naive / planned:6.1f}x"
        )
    print(f"{'TOTAL':26s} naive {total_naive * 1000:8.2f} ms  planned "
          f"{total_planned_cold * 1000:7.2f} ms  speedup "
          f"{total_naive / total_planned_cold:6.1f}x")

    planned_warm = _measure_warm(warehouse, "planned")
    compiled_warm = _measure_warm(warehouse, "compiled")
    total_planned = sum(planned_warm.values())
    total_compiled = sum(compiled_warm.values())
    print()
    for name in sorted(planned_warm):
        print(
            f"{name:26s} planned {planned_warm[name] * 1000:7.2f} ms  "
            f"compiled {compiled_warm[name] * 1000:7.2f} ms  "
            f"speedup {planned_warm[name] / compiled_warm[name]:6.1f}x"
        )
    print(f"{'TOTAL':26s} planned {total_planned * 1000:7.2f} ms  compiled "
          f"{total_compiled * 1000:7.2f} ms  speedup "
          f"{total_planned / total_compiled:6.1f}x")

    if arguments.json:
        from _jsonlog import json_record, write_json_records

        write_json_records(
            arguments.json,
            [
                json_record("evaluator_scaling.naive_total", total_naive, 1.0, engine="naive"),
                json_record(
                    "evaluator_scaling.planned_total_cold",
                    total_planned_cold,
                    total_naive / total_planned_cold,
                    engine="planned",
                ),
                json_record(
                    "evaluator_scaling.planned_total_warm", total_planned, 1.0, engine="planned"
                ),
                json_record(
                    "evaluator_scaling.compiled_total_warm",
                    total_compiled,
                    total_planned / total_compiled,
                    engine="compiled",
                ),
            ],
        )
        print(f"(json records written to {arguments.json})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
