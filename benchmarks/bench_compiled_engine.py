"""Experiment E14 — the columnar compiled engine: kernel reuse and fallbacks.

Three claims of the columnar-engine PR, each measured directly:

1. **Per-plan kernels amortize across databases.**  A plan is compiled once
   per ``(steps, output)`` shape — the cache key deliberately excludes the
   relation-size signature — so evaluating the analyst catalog over a second
   batch of fresh random databases must add *zero* compiles while the hit
   count keeps growing.  This is the regime the counterexample sweep lives
   in: thousands of (subset, ordering) evaluations through a handful of
   kernels.

2. **Warm evaluation clears a speedup floor over the planned interpreter**
   on the scaled warehouse (the representative per-cell cost once interning
   and compilation have amortized).  The primary >= 5x acceptance floor
   lives in ``bench_evaluator_scaling.py``; this benchmark re-measures with
   a softer floor as a cross-check so the two files cannot drift apart
   silently.

3. **The pure-python loop kernels stand alone.**  With ``REPRO_NO_NUMPY=1``
   (the CI configuration without NumPy installed) the compiled engine must
   still beat the planned interpreter — the vectorized ``searchsorted`` path
   is an accelerator, not a crutch.

4. **Disabled instrumentation is free.**  The observability layer
   (:mod:`repro.obs`) threads counter increments and trace spans through the
   warm compiled path; with tracing off those must cost under 3% of warm
   wall-clock.  Measured directly: the per-operation cost of the disabled
   primitives (null span enter/exit, registry increment) times the number of
   instrumented operations one warm catalog pass actually performs.

Run under pytest (``pytest benchmarks/bench_compiled_engine.py``) or
standalone (``python benchmarks/bench_compiled_engine.py [--quick]
[--json PATH]``).  ``REPRO_BENCH_QUICK=1`` selects quick mode under pytest.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.engine import (
    clear_evaluation_caches,
    clear_plan_cache,
    clear_symbolic_caches,
    engine_scope,
    evaluate,
    kernel_cache_stats,
    naive_satisfying_assignments,
    satisfying_assignments,
)
from repro.engine.evaluator import _satisfying_assignments_cached
from repro.workloads import build_warehouse
from repro.workloads.generators import random_warehouse_database

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Scaled warehouse for the warm-evaluation and no-NumPy measurements.
SCALE = (
    dict(stores=10, products=8, sales_per_store=40, seed=7)
    if QUICK
    else dict(stores=50, products=8, sales_per_store=200, seed=7)
)

#: Random databases per amortization batch (two batches are evaluated).
BATCH = 12 if QUICK else 60

#: Cross-check floor for the warm compiled/planned ratio (the primary 5x
#: floor is asserted by bench_evaluator_scaling.py; this one only has to
#: catch a regression that would leave that file stale).
WARM_FLOOR = 1.2 if QUICK else 3.0

#: Floor for the loop-kernel (REPRO_NO_NUMPY=1) compiled/planned ratio.
LOOP_FLOOR = 1.0 if QUICK else 2.0

#: Ceiling for disabled-instrumentation overhead on the warm compiled path.
OBS_CEILING = 0.03


def _cold() -> None:
    clear_evaluation_caches()  # also drops the kernel and store caches
    clear_plan_cache()
    clear_symbolic_caches()


def _catalog(warehouse) -> list:
    return [query for _, query in sorted(warehouse.queries.items())]


def _evaluate_batch(queries, databases, mode: str) -> float:
    with engine_scope(mode):
        start = time.perf_counter()
        for query in queries:
            for database in databases:
                evaluate(query, database)
        return time.perf_counter() - start


def _measure_warm_total(warehouse, mode: str, repeats: int = 5) -> float:
    """Catalog-wide warm ``evaluate()`` seconds (kernels/stores/indexes hot,
    memoized Γ dropped between repetitions)."""
    database = warehouse.database
    total = 0.0
    with engine_scope(mode):
        for _, query in sorted(warehouse.queries.items()):
            evaluate(query, database)  # warm kernels, store, plans, indexes
            best = float("inf")
            for _ in range(repeats):
                _satisfying_assignments_cached.cache_clear()
                start = time.perf_counter()
                evaluate(query, database)
                best = min(best, time.perf_counter() - start)
            total += best
    return total


def _measure_obs_overhead(warehouse) -> tuple[int, float]:
    """Disabled-instrumentation overhead on the warm compiled path.

    Returns ``(ops, ratio)``: the number of instrumented operations (counter
    increments + trace spans) one warm catalog pass performs, and their
    estimated cost as a fraction of that pass's wall-clock.  The per-op cost
    is calibrated on the live primitives — a disabled :func:`repro.obs.span`
    (which returns the shared null span) and a registry increment — so the
    ratio reflects exactly what the instrumentation adds when ``REPRO_TRACE``
    is unset.
    """
    from repro.obs import REGISTRY, enabled, span

    assert not enabled(), "overhead calibration requires tracing disabled"
    loops = 200_000
    start = time.perf_counter()
    for _ in range(loops):
        with span("overhead.calibrate"):
            pass
        REGISTRY.inc("overhead.calibrate")
    per_op = (time.perf_counter() - start) / (2 * loops)
    REGISTRY.reset("overhead.")

    database = warehouse.database
    with engine_scope("compiled"):
        for _, query in sorted(warehouse.queries.items()):
            evaluate(query, database)  # warm kernels, stores, plans
        before = REGISTRY.snapshot("engine.")
        _satisfying_assignments_cached.cache_clear()
        start = time.perf_counter()
        for _, query in sorted(warehouse.queries.items()):
            evaluate(query, database)
        wall = time.perf_counter() - start
        after = REGISTRY.snapshot("engine.")
    increments = sum(after.values()) - sum(before.values())
    # Spans on the warm path: one kernel.execute per loop-kernel dispatch and
    # one kernel.compile per (warm: zero) compile.
    spans = (
        after.get("engine.dispatch.loop", 0) - before.get("engine.dispatch.loop", 0)
    ) + (
        after.get("engine.kernel.compiles", 0) - before.get("engine.kernel.compiles", 0)
    )
    ops = increments + spans
    return ops, (ops * per_op) / wall if wall > 0 else 0.0


def run_benchmark(quick: bool) -> dict:
    scale = (
        dict(stores=10, products=8, sales_per_store=40, seed=7)
        if quick
        else dict(stores=50, products=8, sales_per_store=200, seed=7)
    )
    batch = 12 if quick else 60
    warehouse = build_warehouse(**scale)
    queries = _catalog(warehouse)

    # Agreement spot-check on adversarial instances before timing anything.
    for seed in range(5):
        database = random_warehouse_database(seed)
        for query in queries:
            with engine_scope("planned"):
                planned_result = evaluate(query, database)
            with engine_scope("compiled"):
                compiled_result = evaluate(query, database)
            with engine_scope("naive"):
                naive_assignments = naive_satisfying_assignments(query, database)
                planned_assignments = satisfying_assignments(query, database)
            assert planned_result == compiled_result, (seed, query.name)
            assert sorted(naive_assignments, key=repr) == sorted(
                planned_assignments, key=repr
            ), (seed, query.name)

    # 1. Kernel amortization: two batches of fresh databases, one kernel set.
    first_batch = [random_warehouse_database(seed) for seed in range(batch)]
    second_batch = [random_warehouse_database(seed) for seed in range(batch, 2 * batch)]
    _cold()
    multi_planned = _evaluate_batch(queries, first_batch + second_batch, "planned")
    _cold()
    multi_compiled_first = _evaluate_batch(queries, first_batch, "compiled")
    stats_after_first = kernel_cache_stats()
    multi_compiled_second = _evaluate_batch(queries, second_batch, "compiled")
    stats_after_second = kernel_cache_stats()
    multi_compiled = multi_compiled_first + multi_compiled_second

    # 2. Warm catalog evaluation at scale.
    _cold()
    warm_planned = _measure_warm_total(warehouse, "planned")
    warm_compiled = _measure_warm_total(warehouse, "compiled")

    # 4. Disabled-instrumentation overhead on the (already warm) compiled path.
    obs_ops, obs_overhead_ratio = _measure_obs_overhead(warehouse)

    # Snapshot the work counters now, before the teardown _cold() calls
    # reset the engine scope: this is what the --json records carry.
    from repro.obs import REGISTRY

    counters = REGISTRY.snapshot()

    # 3. Loop kernels only (the store is rebuilt under REPRO_NO_NUMPY=1, so
    #    the vectorized path is never taken).
    previous = os.environ.get("REPRO_NO_NUMPY")
    os.environ["REPRO_NO_NUMPY"] = "1"
    try:
        _cold()
        loop_compiled = _measure_warm_total(warehouse, "compiled")
    finally:
        if previous is None:
            os.environ.pop("REPRO_NO_NUMPY", None)
        else:
            os.environ["REPRO_NO_NUMPY"] = previous
        _cold()

    return {
        "quick": quick,
        "facts": warehouse.fact_count,
        "queries": len(queries),
        "batch": batch,
        "multi_planned": multi_planned,
        "multi_compiled": multi_compiled,
        "stats_after_first": stats_after_first,
        "stats_after_second": stats_after_second,
        "warm_planned": warm_planned,
        "warm_compiled": warm_compiled,
        "loop_compiled": loop_compiled,
        "obs_ops": obs_ops,
        "obs_overhead_ratio": obs_overhead_ratio,
        "counters": counters,
    }


def _render(result: dict) -> list[str]:
    mode = "quick" if result["quick"] else "full"
    first = result["stats_after_first"]
    second = result["stats_after_second"]
    return [
        f"[E14:{mode}] kernel reuse: {result['queries']} queries x "
        f"{2 * result['batch']} databases -> {second['compiles']} compiles, "
        f"{second['hits']} hits ({second['compiles'] - first['compiles']} new "
        f"compiles in batch 2); planned {result['multi_planned'] * 1000:.1f} ms, "
        f"compiled {result['multi_compiled'] * 1000:.1f} ms",
        f"[E14:{mode}] warm catalog ({result['facts']} facts): planned "
        f"{result['warm_planned'] * 1000:.1f} ms, compiled "
        f"{result['warm_compiled'] * 1000:.1f} ms "
        f"({result['warm_planned'] / result['warm_compiled']:.1f}x, floor "
        f"{1.2 if result['quick'] else 3.0}x)",
        f"[E14:{mode}] loop kernels (REPRO_NO_NUMPY=1): compiled "
        f"{result['loop_compiled'] * 1000:.1f} ms "
        f"({result['warm_planned'] / result['loop_compiled']:.1f}x vs planned, "
        f"floor {1.0 if result['quick'] else 2.0}x)",
        f"[E14:{mode}] disabled instrumentation: {result['obs_ops']} ops per "
        f"warm pass, {result['obs_overhead_ratio'] * 100:.3f}% of wall "
        f"(ceiling {OBS_CEILING * 100:.0f}%)",
    ]


def _check(result: dict) -> None:
    first = result["stats_after_first"]
    second = result["stats_after_second"]
    # The second batch of fresh databases must reuse every kernel: the cache
    # key excludes the size signature, so new databases add hits, not compiles.
    assert first["compiles"] > 0
    assert second["compiles"] == first["compiles"], (
        f"batch 2 recompiled kernels: {first['compiles']} -> {second['compiles']}"
    )
    assert second["hits"] > first["hits"]

    warm_floor = 1.2 if result["quick"] else 3.0
    warm_ratio = result["warm_planned"] / result["warm_compiled"]
    assert warm_ratio >= warm_floor, (
        f"warm compiled speedup {warm_ratio:.2f}x below the {warm_floor}x floor"
    )

    loop_floor = 1.0 if result["quick"] else 2.0
    loop_ratio = result["warm_planned"] / result["loop_compiled"]
    assert loop_ratio >= loop_floor, (
        f"loop-kernel compiled speedup {loop_ratio:.2f}x below the {loop_floor}x floor"
    )

    assert result["obs_ops"] > 0, "warm pass performed no instrumented ops"
    assert result["obs_overhead_ratio"] < OBS_CEILING, (
        f"disabled instrumentation costs {result['obs_overhead_ratio'] * 100:.2f}% "
        f"of warm compiled wall-clock (ceiling {OBS_CEILING * 100:.0f}%)"
    )


@pytest.mark.paper_artifact("Engine substrate — columnar kernels: reuse and fallbacks")
def test_compiled_engine(report_lines):
    result = run_benchmark(QUICK)
    report_lines.extend(_render(result))
    _check(result)


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small workload + relaxed floors (CI smoke)"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write {name, wall_s, speedup, engine} records to PATH"
    )
    arguments = parser.parse_args()
    quick = arguments.quick or QUICK
    result = run_benchmark(quick)
    for line in _render(result):
        print(line)
    if arguments.json:
        from _jsonlog import json_record, write_json_records

        write_json_records(
            arguments.json,
            [
                json_record(
                    "compiled_engine.multi_db_planned",
                    result["multi_planned"],
                    1.0,
                    engine="planned",
                    counters=result["counters"],
                ),
                json_record(
                    "compiled_engine.multi_db_compiled",
                    result["multi_compiled"],
                    result["multi_planned"] / result["multi_compiled"],
                    engine="compiled",
                    counters=result["counters"],
                ),
                json_record(
                    "compiled_engine.warm_catalog_planned",
                    result["warm_planned"],
                    1.0,
                    engine="planned",
                    counters=result["counters"],
                ),
                json_record(
                    "compiled_engine.warm_catalog_compiled",
                    result["warm_compiled"],
                    result["warm_planned"] / result["warm_compiled"],
                    engine="compiled",
                    counters=result["counters"],
                ),
                json_record(
                    "compiled_engine.warm_catalog_loop_kernels",
                    result["loop_compiled"],
                    result["warm_planned"] / result["loop_compiled"],
                    engine="compiled",
                    counters=result["counters"],
                ),
            ],
        )
        print(f"(json records written to {arguments.json})")
    try:
        _check(result)
    except AssertionError as failure:
        print(f"FAIL: {failure}")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
