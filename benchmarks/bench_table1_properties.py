"""Experiment T1 — regenerate Table 1 (properties of aggregation functions).

For every aggregation function of the paper the benchmark

* rebuilds the Table 1 row from the declared traits,
* cross-checks the shiftability / singleton-determination cells empirically
  (searching for counterexamples on randomized bags), and
* measures the cost of the empirical verification.

The regenerated table must match the paper cell by cell.
"""

from __future__ import annotations

import random

import pytest

from repro.aggregates import (
    PAPER_FUNCTIONS,
    PAPER_TABLE1,
    build_table1,
    format_table1,
    get_function,
    group_decomposition_counterexample,
    idempotent_decomposition_counterexample,
    shiftability_counterexample,
    singleton_determining_counterexample,
    table1_matches_paper,
)


@pytest.mark.paper_artifact("Table 1")
def test_table1_regeneration(benchmark, report_lines):
    rows = benchmark(build_table1)
    assert table1_matches_paper(rows)
    report_lines.append("[Table 1] regenerated table matches the paper cell by cell:")
    for line in format_table1(rows).splitlines():
        report_lines.append("    " + line)


@pytest.mark.paper_artifact("Table 1")
@pytest.mark.parametrize("function_name", [f.name for f in PAPER_FUNCTIONS])
def test_table1_empirical_cross_check(benchmark, function_name, report_lines):
    function = get_function(function_name)
    expected_shiftable, _, _, expected_singleton = PAPER_TABLE1[function_name]

    def verify():
        rng = random.Random(2001)
        shift_witness = shiftability_counterexample(function, rng, trials=300)
        singleton_witness = singleton_determining_counterexample(function)
        idem = idempotent_decomposition_counterexample(function, rng, trials=40)
        group = group_decomposition_counterexample(function, rng, trials=25)
        return shift_witness, singleton_witness, idem, group

    shift_witness, singleton_witness, idem, group = benchmark(verify)
    assert (shift_witness is None) == expected_shiftable
    assert (singleton_witness is None) == expected_singleton
    assert idem is None and group is None  # the decomposition principles never fail
    report_lines.append(
        f"[Table 1] {function_name:>6}: shiftable={'yes' if shift_witness is None else 'no':3s} "
        f"singleton-determining={'yes' if singleton_witness is None else 'no':3s} "
        "(empirical check agrees with the paper)"
    )
