"""Experiment E11 — the single-sweep catalog engine vs the pairwise matrix.

PR 2 made the equivalence matrix parallel and gave it a catalog-wide shared
BASE, but every cell still ran its *own* subset/ordering enumeration: the
per-(S, L) work — symbolic database construction, canonical relations,
restricted signatures, group comparisons, ordered-identity checks — was paid
O(pairs) times even though the Γ caches already shared the evaluations
themselves.  The single-sweep engine (``equivalence_matrix(sweep=True)``,
:func:`repro.core.bounded.sweep_equivalence`) pays it O(queries) times: one
enumeration per same-dispatch-class sub-catalog, all queries evaluated per
(S, L) through the shared caches, pairs compared in-loop via interned group
indexes.

The workload is the realistic optimizer case: a catalog of candidate
rewritings of a returns-audit view over the warehouse dimension vocabulary
(literal reorderings, disjunct reorderings, variable renamings — mostly
equivalent, which is the expensive case because equivalent cells must sweep
the *entire* space), plus deliberately non-equivalent variants and a pinned
``sum``/``count`` pair settled by the widened normalization.

The baseline is the PR 2 path (``sweep=False``) on one core with identical
settings; the acceptance floor is a ≥3x total speedup at full scale with
verdicts identical cell for cell.  Quick mode shrinks the catalog and the
floor for CI smoke runs.  Worker scaling of the sweep is reported but not
asserted (CI boxes may have a single core).

Run under pytest (``pytest benchmarks/bench_catalog_sweep.py``) or standalone
(``python benchmarks/bench_catalog_sweep.py [--quick]``).
``REPRO_BENCH_QUICK=1`` selects quick mode under pytest.
"""

from __future__ import annotations

import os
import time

from repro import parse_query
from repro.engine import clear_evaluation_caches, clear_symbolic_caches
from repro.workloads import equivalence_matrix
from repro.workloads.batch import plan_catalog_sweep

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Acceptance floor for the sweep-vs-pairwise speedup (ISSUE 3 demands >= 3x
#: at full scale on one core; the quick catalog is too small to amortize the
#: sweep's fixed costs as far, so CI smoke keeps a smaller cushion).
SPEEDUP_FLOOR = 1.5 if QUICK else 3.0

#: Workers used for the reported (not asserted) parallel sweep measurement.
WORKERS = 2


def build_audit_catalog(quick: bool) -> dict:
    """Candidate rewritings of a returns-audit view.

    Every query counts, per store, the returned sales that are either from a
    premium store or concern a discontinued product — written with the
    literals, the disjuncts, and the variable names permuted.  Two deliberate
    non-rewritings (a duplicated disjunct, which changes the count under bag
    semantics, and a weaker filter) and a pinned sum/count pair ride along.
    """
    premium = [
        "returns({s}, {p}), premium_store({s})",
        "premium_store({s}), returns({s}, {p})",
    ]
    discontinued = [
        "returns({s}, {p}), discontinued({p})",
        "discontinued({p}), returns({s}, {p})",
    ]
    renamings = [("s", "p"), ("x", "y"), ("u", "w"), ("a", "b"), ("m", "n"), ("g", "h")]
    if quick:
        renamings = renamings[:2]
    catalog: dict = {}
    index = 0
    for s, p in renamings:
        for first in premium:
            for second in discontinued:
                index += 1
                text = f"audit({s}, count()) :- {first} ; {second}"
                catalog[f"audit_{index:02d}"] = parse_query(text.format(s=s, p=p))
    catalog["audit_dup"] = parse_query(
        "audit(s, count()) :- returns(s, p), premium_store(s) ; "
        "returns(s, p), premium_store(s) ; returns(s, p), discontinued(p)"
    )
    catalog["audit_keep"] = parse_query(
        "audit(s, count()) :- returns(s, p), premium_store(s) ; returns(s, p)"
    )
    catalog["unit_sum"] = parse_query(
        "units(sum(w)) :- premium_store(s), w = v, v = 1"
    )
    catalog["unit_count"] = parse_query("units(count()) :- premium_store(s)")
    return catalog


def _cold() -> None:
    clear_symbolic_caches()
    clear_evaluation_caches()


def _timed(callable_):
    _cold()
    start = time.perf_counter()
    result = callable_()
    return time.perf_counter() - start, result


def run_benchmark(quick: bool) -> dict:
    catalog = build_audit_catalog(quick)
    plan = plan_catalog_sweep(catalog)
    swept_cells = sum(len(group.pairs) for group in plan.groups)

    sweep_serial, sweep_results = _timed(
        lambda: equivalence_matrix(catalog, workers=1, seed=7, sweep=True)
    )
    sweep_parallel, parallel_results = _timed(
        lambda: equivalence_matrix(catalog, workers=WORKERS, seed=7, sweep=True)
    )
    # The same sweep pinned to the planned interpreter: the wall-clock drop
    # from this to ``sweep_serial`` (which runs the default compiled engine)
    # is the columnar-engine PR's contribution to the sweep path.
    sweep_planned, planned_engine_results = _timed(
        lambda: equivalence_matrix(catalog, workers=1, seed=7, sweep=True, engine="planned")
    )
    pairwise, pairwise_results = _timed(
        lambda: equivalence_matrix(catalog, workers=1, seed=7, sweep=False)
    )

    # Hard acceptance requirement: cell-for-cell identical verdicts (and the
    # replicated method strings) between the sweep and the PR 2 path.
    assert sweep_results.keys() == pairwise_results.keys()
    for pair, sweep_cell in sweep_results.items():
        pairwise_cell = pairwise_results[pair]
        assert sweep_cell.verdict is pairwise_cell.verdict, pair
        assert sweep_cell.method == pairwise_cell.method, pair
        assert parallel_results[pair].verdict is sweep_cell.verdict, pair
        assert planned_engine_results[pair].verdict is sweep_cell.verdict, pair

    normalized_cell = sweep_results[("unit_count", "unit_sum")]
    equivalent_cells = sum(1 for cell in sweep_results.values() if cell.is_equivalent)
    return {
        "quick": quick,
        "queries": len(catalog),
        "cells": len(sweep_results),
        "swept_cells": swept_cells,
        "groups": len(plan.groups),
        "equivalent_cells": equivalent_cells,
        "sweep_serial": sweep_serial,
        "sweep_parallel": sweep_parallel,
        "sweep_planned": sweep_planned,
        "pairwise": pairwise,
        "speedup": pairwise / sweep_serial,
        "engine_speedup": sweep_planned / sweep_serial,
        "normalized_verdict": normalized_cell.verdict.value,
        "normalized_method": normalized_cell.method,
    }


def _floor(quick: bool) -> float:
    return 1.5 if quick else 3.0


def _render(result: dict) -> list[str]:
    mode = "quick" if result["quick"] else "full"
    return [
        f"[E11:{mode}] catalog: {result['queries']} queries, {result['cells']} cells "
        f"({result['swept_cells']} swept in {result['groups']} group(s), "
        f"{result['equivalent_cells']} equivalent)",
        f"[E11:{mode}] pairwise (PR 2) {result['pairwise']:.2f}s -> single-sweep "
        f"{result['sweep_serial']:.2f}s on one core ({result['speedup']:.1f}x, "
        f"floor {_floor(result['quick'])}x); sweep with {WORKERS} workers "
        f"{result['sweep_parallel']:.2f}s",
        f"[E11:{mode}] engines: sweep on planned interpreter "
        f"{result['sweep_planned']:.2f}s -> compiled kernels "
        f"{result['sweep_serial']:.2f}s ({result['engine_speedup']:.1f}x)",
        f"[E11:{mode}] pinned-sum cell: {result['normalized_verdict']} "
        f"[{result['normalized_method']}]",
    ]


def test_catalog_sweep_speedup(report_lines):
    result = run_benchmark(QUICK)
    report_lines.extend(_render(result))
    assert result["normalized_verdict"] == "equivalent"
    assert result["swept_cells"] > 0
    assert result["speedup"] >= SPEEDUP_FLOOR, (
        f"catalog sweep speedup {result['speedup']:.2f}x "
        f"below the {SPEEDUP_FLOOR}x floor"
    )


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small catalog + relaxed floor (CI smoke)"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write {name, wall_s, speedup} records to PATH"
    )
    arguments = parser.parse_args()
    quick = arguments.quick or QUICK
    floor = _floor(quick)
    result = run_benchmark(quick)
    for line in _render(result):
        print(line)
    if arguments.json:
        from _jsonlog import json_record, write_json_records

        write_json_records(
            arguments.json,
            [
                json_record("catalog_sweep.pairwise", result["pairwise"], 1.0),
                json_record("catalog_sweep.sweep_serial", result["sweep_serial"], result["speedup"]),
                json_record(
                    "catalog_sweep.sweep_workers2",
                    result["sweep_parallel"],
                    result["pairwise"] / result["sweep_parallel"],
                ),
                json_record(
                    "catalog_sweep.sweep_planned_engine",
                    result["sweep_planned"],
                    1.0,
                    engine="planned",
                ),
                json_record(
                    "catalog_sweep.sweep_compiled_engine",
                    result["sweep_serial"],
                    result["engine_speedup"],
                    engine="compiled",
                ),
            ],
        )
        print(f"(json records written to {arguments.json})")
    if result["speedup"] < floor:
        print(f"FAIL: speedup {result['speedup']:.2f}x below the {floor}x floor")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
