"""Experiment E15 — the persistent verdict store vs cold re-decision.

The verdict store (:mod:`repro.store`) exists so settled verdicts outlive
the process that paid for them: a restart against the same
``REPRO_STORE_PATH`` should *serve* the whole matrix — canonical-key
lookups, witness revalidation, zero sweep enumerations — instead of
re-running the decision procedures.  This benchmark measures exactly that
on the rewriting-audit catalog of E11 (28 queries at full scale):

1. **cold** — a workspace decides the full catalog against a fresh
   disk-backed store (every cell goes through the sweeps) and the per-cell
   verdicts/methods are recorded,
2. every in-process cache is dropped (the canonical-key LRU and the store
   singleton included) to simulate a restart,
3. **warm** — a brand-new workspace over a brand-new store instance on the
   *same file* re-asks for the matrix: every cell must settle from the
   store with cell-for-cell verdict/method parity — NOT_EQUIVALENT cells
   passing witness revalidation — and the wall clock must beat the cold
   run by the acceptance floor (ISSUE 10 demands >= 10x at full scale).

The ``--phase cold|warm`` CLI mode splits the two runs across *real*
processes for the CI restart smoke: ``cold`` writes the store and a state
file of expected cells; ``warm`` (a fresh interpreter) replays against the
same store and asserts parity plus ``store.disk.hits > 0``.

Run under pytest (``pytest benchmarks/bench_verdict_store.py``) or
standalone (``python benchmarks/bench_verdict_store.py [--quick]
[--json PATH]``).  ``REPRO_BENCH_QUICK=1`` selects quick mode under pytest.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_catalog_sweep import build_audit_catalog  # noqa: E402

from repro import Workspace  # noqa: E402
from repro.caches import run_registered_clears  # noqa: E402
from repro.engine import clear_evaluation_caches, clear_symbolic_caches  # noqa: E402
from repro.obs import REGISTRY  # noqa: E402
from repro.store import VerdictStore  # noqa: E402

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _floor(quick: bool) -> float:
    """Acceptance floor for the warm-restart speedup (ISSUE 10 demands
    >= 10x at full scale; the quick catalog decides so little that the
    store's fixed costs weigh more, so CI smoke keeps a cushion)."""
    return 3.0 if quick else 10.0


SPEEDUP_FLOOR = _floor(QUICK)


def _cold() -> None:
    """Drop every in-process cache a restart would lose: the engine's
    symbolic/evaluation caches and the service-scoped ones (canonical-key
    LRU, store singleton)."""
    clear_symbolic_caches()
    clear_evaluation_caches()
    run_registered_clears("clear_service_caches")


def _cells(results: dict) -> dict:
    return {
        f"{pair[0]}|{pair[1]}": {"verdict": cell.verdict.value, "method": cell.method}
        for pair, cell in results.items()
    }


def _decide(catalog: dict, store_path: str, seed: int = 7):
    """One full matrix over a fresh store instance on ``store_path``;
    returns (results, stats, wall_seconds)."""
    with Workspace(workers=1, seed=seed, store=VerdictStore(store_path)) as workspace:
        for name, query in catalog.items():
            workspace.add(query, name=name)
        start = time.perf_counter()
        results = workspace.equivalences()
        wall = time.perf_counter() - start
        stats = workspace.stats()
    return results, stats, wall


def run_benchmark(quick: bool, store_dir: str) -> dict:
    catalog = build_audit_catalog(quick)
    store_path = os.path.join(store_dir, "verdicts.sqlite3")

    _cold()
    cold_results, cold_stats, cold_wall = _decide(catalog, store_path)
    assert cold_stats.store_hits == 0, "a fresh store served cells on the cold run"
    expected = _cells(cold_results)

    # Simulated restart: every in-process cache dropped, new store instance
    # over the same file, new workspace.
    _cold()
    not_equivalent_cells = sum(
        1 for cell in expected.values() if cell["verdict"] == "not equivalent"
    )
    revalidated_before = REGISTRY.get("store.witness.revalidated")
    warm_results, warm_stats, warm_wall = _decide(catalog, store_path)

    assert warm_results.keys() == cold_results.keys()
    for pair, cell in warm_results.items():
        assert cell.verdict is cold_results[pair].verdict, pair
        assert cell.method == cold_results[pair].method, pair
    assert warm_stats.decided_cells == 0, "the rerun re-decided cells"
    assert warm_stats.store_hits == len(warm_results), "cells settled outside the store"
    witnessed = REGISTRY.get("store.witness.revalidated") - revalidated_before

    return {
        "quick": quick,
        "queries": len(catalog),
        "cells": len(cold_results),
        "not_equivalent_cells": not_equivalent_cells,
        "witnesses_revalidated": witnessed,
        "cold_wall": cold_wall,
        "warm_wall": warm_wall,
        "speedup": cold_wall / warm_wall,
    }


def _render(result: dict) -> list[str]:
    mode = "quick" if result["quick"] else "full"
    return [
        f"[E15:{mode}] catalog: {result['queries']} queries, {result['cells']} cells "
        f"({result['not_equivalent_cells']} NOT_EQUIVALENT); restart revalidated "
        f"{result['witnesses_revalidated']} stored witness(es)",
        f"[E15:{mode}] cold decision {result['cold_wall']:.2f}s -> store-served restart "
        f"{result['warm_wall']:.3f}s ({result['speedup']:.1f}x, floor "
        f"{_floor(result['quick'])}x)",
    ]


def test_verdict_store_restart_round_trip(report_lines, tmp_path):
    result = run_benchmark(QUICK, str(tmp_path))
    report_lines.extend(_render(result))
    assert result["witnesses_revalidated"] >= result["not_equivalent_cells"]
    assert result["speedup"] >= SPEEDUP_FLOOR, (
        f"store-served restart speedup {result['speedup']:.2f}x "
        f"below the {SPEEDUP_FLOOR}x floor"
    )


# ----------------------------------------------------------------------
# Cross-process phases (the CI restart smoke)
# ----------------------------------------------------------------------
def run_cold_phase(quick: bool, store_path: str, state_path: str) -> int:
    catalog = build_audit_catalog(quick)
    results, stats, wall = _decide(catalog, store_path)
    with open(state_path, "w", encoding="utf-8") as handle:
        json.dump({"cells": _cells(results), "wall": wall}, handle)
    print(
        f"cold: decided {stats.decided_cells} cell(s) in {wall:.2f}s; "
        f"store at {store_path}, state at {state_path}"
    )
    return 0


def run_warm_phase(quick: bool, store_path: str, state_path: str) -> int:
    with open(state_path, "r", encoding="utf-8") as handle:
        state = json.load(handle)
    catalog = build_audit_catalog(quick)
    results, stats, wall = _decide(catalog, store_path)
    actual = _cells(results)
    if actual != state["cells"]:
        print("FAIL: restart matrix differs from the recorded cold run")
        return 1
    if stats.decided_cells != 0:
        print(f"FAIL: restart re-decided {stats.decided_cells} cell(s)")
        return 1
    disk_hits = REGISTRY.get("store.disk.hits")
    if disk_hits <= 0:
        print("FAIL: restart never hit the disk store")
        return 1
    print(
        f"warm: {stats.store_hits} cell(s) served from the store in {wall:.3f}s "
        f"({disk_hits} disk hit(s)); parity with the cold run confirmed"
    )
    return 0


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small catalog + relaxed floor (CI smoke)"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write {name, wall_s, speedup} records to PATH"
    )
    parser.add_argument(
        "--phase",
        choices=("cold", "warm"),
        help="run one half of the cross-process restart smoke instead of the "
        "in-process benchmark (requires --store and --state)",
    )
    parser.add_argument("--store", metavar="PATH", help="store file for --phase runs")
    parser.add_argument(
        "--state", metavar="PATH", help="expected-cells JSON file for --phase runs"
    )
    arguments = parser.parse_args()
    quick = arguments.quick or QUICK

    if arguments.phase:
        if not arguments.store or not arguments.state:
            parser.error("--phase requires --store and --state")
        if arguments.phase == "cold":
            return run_cold_phase(quick, arguments.store, arguments.state)
        return run_warm_phase(quick, arguments.store, arguments.state)

    floor = _floor(quick)
    with tempfile.TemporaryDirectory() as store_dir:
        result = run_benchmark(quick, store_dir)
    for line in _render(result):
        print(line)
    if arguments.json:
        from _jsonlog import json_record, write_json_records

        write_json_records(
            arguments.json,
            [
                json_record("verdict_store.cold_decision", result["cold_wall"], 1.0),
                json_record(
                    "verdict_store.store_served_restart",
                    result["warm_wall"],
                    result["speedup"],
                ),
            ],
        )
        print(f"(json records written to {arguments.json})")
    if result["speedup"] < floor:
        print(f"FAIL: speedup {result['speedup']:.2f}x below the {floor}x floor")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
