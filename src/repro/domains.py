"""Domains of database constants.

The paper assumes that database constants are either integers or rational
numbers (Section 3.2), and the interpretation of comparisons depends on whether
they range over a *discrete* order (the integers) or a *dense* order (the
rationals).  The :class:`Domain` enumeration captures this distinction, and the
module provides helpers for validating and normalizing constant values.

Rational values are represented with :class:`fractions.Fraction`, which keeps
all arithmetic exact.  Integers are represented with Python ``int``.  Floats
are accepted as input for convenience and converted to exact fractions.
"""

from __future__ import annotations

import enum
from fractions import Fraction
from typing import Union

from .errors import DomainError

#: Values accepted as database constants.
NumericValue = Union[int, Fraction]

#: Values accepted as *input* where a constant is expected.
NumericLike = Union[int, float, Fraction]


class Domain(enum.Enum):
    """The domain over which constants and comparisons are interpreted."""

    INTEGERS = "integers"
    RATIONALS = "rationals"

    @property
    def is_dense(self) -> bool:
        """Whether the order on the domain is dense (no gaps between values)."""
        return self is Domain.RATIONALS

    @property
    def is_discrete(self) -> bool:
        """Whether the order on the domain is discrete (the integers)."""
        return self is Domain.INTEGERS

    def contains(self, value: NumericValue) -> bool:
        """Whether ``value`` is an element of this domain."""
        if self is Domain.INTEGERS:
            return isinstance(value, int) and not isinstance(value, bool)
        if isinstance(value, int) and not isinstance(value, bool):
            return True
        return isinstance(value, Fraction)

    def normalize(self, value: NumericLike) -> NumericValue:
        """Convert ``value`` into the canonical representation for this domain.

        Raises :class:`DomainError` if the value does not belong to the domain
        (e.g. the fraction 1/2 over the integers).
        """
        canonical = normalize_value(value)
        if self is Domain.INTEGERS:
            if isinstance(canonical, Fraction):
                if canonical.denominator != 1:
                    raise DomainError(f"{value!r} is not an integer")
                canonical = int(canonical)
            return canonical
        return canonical

    def midpoint_exists(self, low: NumericValue, high: NumericValue) -> bool:
        """Whether a value strictly between ``low`` and ``high`` exists."""
        if low >= high:
            return False
        if self.is_dense:
            return True
        return high - low >= 2

    def values_strictly_between(self, low: NumericValue, high: NumericValue) -> int | None:
        """Number of domain values strictly between ``low`` and ``high``.

        Returns ``None`` when there are infinitely many (dense domain with
        ``low < high``); returns an integer count for the discrete domain.
        """
        if low >= high:
            return 0
        if self.is_dense:
            return None
        return max(0, int(high) - int(low) - 1)


def normalize_value(value: NumericLike) -> NumericValue:
    """Convert a numeric input into an ``int`` or an exact ``Fraction``.

    Booleans are rejected (they are technically ``int`` subclasses but almost
    always indicate a bug when used as database constants).
    """
    if isinstance(value, bool):
        raise DomainError("booleans are not valid database constants")
    if isinstance(value, int):
        return value
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return int(value)
        return value
    if isinstance(value, float):
        frac = Fraction(value).limit_denominator(10**12)
        if frac.denominator == 1:
            return int(frac)
        return frac
    raise DomainError(f"{value!r} is not a valid numeric constant")


def value_sort_key(value: NumericValue) -> Fraction:
    """A total-order key usable to sort mixed ``int``/``Fraction`` values."""
    return Fraction(value)
