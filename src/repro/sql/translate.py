"""Translation of the SQL subset into the internal query representation.

SQL aggregate queries are the practical motivation of the paper (data
warehouses, decision support).  The translator maps a parsed SELECT statement
to a disjunctive aggregate query:

* every table occurrence becomes a positive relational atom whose arguments
  are fresh variables, one per column of the table's schema;
* equality conditions between columns unify the corresponding variables;
* comparisons against constants or other columns become ordering atoms;
* every ``NOT EXISTS`` subquery over a single table becomes a negated atom —
  each column of the negated table must be constrained by an equality to an
  outer column or a constant, since the paper's negated subgoals have no
  projection;
* GROUP BY columns become grouping variables, and the single aggregate in the
  SELECT list becomes the aggregate term (``COUNT(*)`` maps to ``count``,
  ``COUNT(DISTINCT c)`` maps to ``cntd``).

Because two SQL queries are equivalent under SQL's bag semantics iff their
``count``-extended versions are equivalent (Section 8), this frontend plus the
equivalence checker yields an equivalence test for SQL aggregate queries over
the supported fragment.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Union

from ..datalog.atoms import Comparison, ComparisonOp, RelationalAtom
from ..datalog.conditions import Condition
from ..datalog.queries import AggregateTerm, Query
from ..datalog.terms import Constant, Term, Variable
from ..errors import QuerySyntaxError, RewritingError
from ..rewriting.views import View, ViewCatalog
from .ast import ColumnRef, CreateViewStatement, Literal, NotExists, SelectStatement, SqlComparison
from .parser import parse_sql, parse_sql_statement

#: A database schema: table name -> ordered column names.
Schema = Mapping[str, Sequence[str]]


class SqlTranslator:
    """Translate parsed SELECT statements into :class:`~repro.datalog.Query`.

    ``CREATE VIEW`` statements (:meth:`register_view`) register a named view:
    the view's columns join the schema, so later SELECTs can read the view
    like a base table, and :meth:`view_catalog` hands the registered
    definitions to the rewriting engine (:func:`repro.rewriting.rewrite`).

    A translator is session state: ``views`` seeds it with an existing view
    collection (e.g. a workspace's Datalog-registered views), and
    :meth:`adopt_view` admits a view defined outside SQL — so one translator
    instance serves a whole :class:`repro.session.Workspace`, with the SQL
    and Datalog front doors sharing a single schema and view catalog instead
    of each call rebuilding its own.
    """

    def __init__(self, schema: Schema, views: Iterable[View] = ()):
        self.schema = {table.lower(): [c.lower() for c in columns] for table, columns in schema.items()}
        self.views: dict[str, View] = {}
        for view in views:
            self.adopt_view(view)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def translate(self, statement: Union[str, SelectStatement], name: str = "q") -> Query:
        if isinstance(statement, str):
            statement = parse_sql(statement)
        columns_by_source = self._bind_tables(statement)
        union_find = _UnionFind()
        literals: list = []
        # Positive atoms for the FROM tables.
        atom_variables: dict[str, list[Variable]] = {}
        for table in statement.tables:
            variables = columns_by_source[table.name]
            atom_variables[table.name] = variables
            literals.append(RelationalAtom(table.table, tuple(variables)))
        # WHERE conditions.
        comparisons: list[Comparison] = []
        for condition in statement.comparisons:
            left = self._operand_term(condition.left, columns_by_source, statement)
            right = self._operand_term(condition.right, columns_by_source, statement)
            op = ComparisonOp.from_symbol(condition.op if condition.op != "<>" else "!=")
            if op is ComparisonOp.EQ and isinstance(left, Variable) and isinstance(right, Variable):
                union_find.union(left, right)
            else:
                comparisons.append(Comparison(left, op, right))
        # NOT EXISTS subqueries become negated atoms.
        negated_atoms = [
            self._translate_not_exists(negation, columns_by_source, statement, union_find)
            for negation in statement.not_exists
        ]
        # Apply the unification induced by the equality conditions.
        substitution = union_find.substitution()
        literals = [literal.substitute(substitution) for literal in literals]
        negated_atoms = [atom.substitute(substitution) for atom in negated_atoms]
        comparisons = [comparison.substitute(substitution) for comparison in comparisons]

        head_terms, aggregate = self._build_head(statement, columns_by_source, substitution)
        condition = Condition(tuple(literals) + tuple(negated_atoms) + tuple(comparisons))
        return Query(name, head_terms, (condition,), aggregate)

    # ------------------------------------------------------------------
    # Named views
    # ------------------------------------------------------------------
    def register_view(self, statement: Union[str, CreateViewStatement]) -> View:
        """Register a ``CREATE VIEW`` statement: translate its SELECT, add the
        view's columns to the schema (so later queries can read it like a
        table), and record the definition for the rewriting engine."""
        if isinstance(statement, str):
            parsed = parse_sql_statement(statement)
            if not isinstance(parsed, CreateViewStatement):
                raise QuerySyntaxError("register_view expects a CREATE VIEW statement")
            statement = parsed
        if statement.name in self.schema:
            raise QuerySyntaxError(
                f"view name {statement.name!r} collides with an existing table or view"
            )
        query = self.translate(statement.select, name=statement.name)
        try:
            view = View(statement.name, query)
        except RewritingError as error:
            raise QuerySyntaxError(f"cannot register view {statement.name!r}: {error}") from error
        columns = self._view_columns(statement, query, view)
        return self.adopt_view(view, columns)

    def adopt_view(self, view: View, columns: Optional[Sequence[str]] = None) -> View:
        """Admit a view defined outside SQL (a Datalog :class:`View`) into
        the translator's schema and view catalog.

        ``columns`` names the stored columns; by default they derive from the
        view head (variable names, plus ``<function>_<argument>`` for the
        aggregate column), so a workspace-registered Datalog view is readable
        from later SQL SELECTs like any base table.

        The view name must be lowercase: the SQL parser lowercases every
        table reference, so a mixed-case predicate could never be addressed
        from a SELECT (and would dodge the schema collision check).
        """
        if view.name != view.name.lower():
            raise QuerySyntaxError(
                f"view name {view.name!r} is not lowercase; SQL table references "
                "are case-insensitive, so SQL-visible views must use lowercase "
                "predicate names"
            )
        if view.name in self.schema:
            raise QuerySyntaxError(
                f"view name {view.name!r} collides with an existing table or view"
            )
        if columns is None:
            derived = [variable.name for variable in view.head_variables]
            aggregate = view.query.aggregate
            if aggregate is not None:
                suffix = aggregate.arguments[0].name if aggregate.arguments else "all"
                derived.append(f"{aggregate.function}_{suffix}")
            columns = derived
        if len(columns) != view.arity:
            raise QuerySyntaxError(
                f"view {view.name!r} declares {len(columns)} column(s) "
                f"but stores {view.arity}"
            )
        lowered = [column.lower() for column in columns]
        if len(set(lowered)) != len(lowered):
            raise QuerySyntaxError(f"view {view.name!r} repeats a column name")
        self.schema[view.name] = lowered
        self.views[view.name] = view
        return view

    def remove_view(self, name: str) -> None:
        """Withdraw a registered view from the schema and view catalog (the
        rollback counterpart of :meth:`adopt_view`; unknown names are a
        no-op).  Callers must not reach into ``schema``/``views`` directly —
        this method is what keeps the two in step."""
        if self.views.pop(name, None) is not None:
            self.schema.pop(name, None)

    def view_catalog(self) -> ViewCatalog:
        """The registered views, as a catalog the rewriting engine accepts."""
        return ViewCatalog(self.views.values())

    def _view_columns(
        self, statement: CreateViewStatement, query: Query, view: View
    ) -> tuple[str, ...]:
        select = statement.select
        if select.group_by and select.columns:
            # The stored row order follows the translated head, which follows
            # GROUP BY; a SELECT list in a different order would silently
            # mislabel the stored columns, so demand agreement.
            select_order = [column.column for column in select.columns]
            group_order = [column.column for column in select.group_by]
            if select_order != group_order:
                raise QuerySyntaxError(
                    f"view {statement.name!r} stores columns in GROUP BY order "
                    f"({', '.join(group_order)}); reorder the SELECT list "
                    f"({', '.join(select_order)}) to match"
                )
        if statement.columns is not None:
            if len(statement.columns) != view.arity:
                raise QuerySyntaxError(
                    f"view {statement.name!r} declares {len(statement.columns)} column(s) "
                    f"but its SELECT produces {view.arity}"
                )
            if len(set(statement.columns)) != len(statement.columns):
                raise QuerySyntaxError(f"view {statement.name!r} repeats a column name")
            return statement.columns
        columns = [column.column for column in (select.group_by or select.columns)]
        if select.aggregate is not None:
            argument = select.aggregate.argument
            suffix = argument.column if argument is not None else "all"
            columns.append(f"{select.aggregate.function}_{suffix}")
        if len(set(columns)) != len(columns):
            raise QuerySyntaxError(
                f"derived column names for view {statement.name!r} are ambiguous "
                f"({', '.join(columns)}); declare explicit names with "
                "CREATE VIEW name (col, ...) AS ..."
            )
        return tuple(columns)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _bind_tables(self, statement: SelectStatement) -> dict[str, list[Variable]]:
        if not statement.tables:
            raise QuerySyntaxError("the FROM clause is empty")
        columns_by_source: dict[str, list[Variable]] = {}
        for table in statement.tables:
            schema_columns = self.schema.get(table.table)
            if schema_columns is None:
                raise QuerySyntaxError(f"unknown table {table.table!r} (not in the schema)")
            if table.name in columns_by_source:
                raise QuerySyntaxError(f"duplicate table name or alias {table.name!r}")
            columns_by_source[table.name] = [
                Variable(f"{table.name}_{column}") for column in schema_columns
            ]
        return columns_by_source

    def _resolve_column(
        self,
        column: ColumnRef,
        columns_by_source: dict[str, list[Variable]],
        statement: SelectStatement,
    ) -> Variable:
        if column.table is not None:
            variables = columns_by_source.get(column.table)
            if variables is None:
                raise QuerySyntaxError(f"unknown table or alias {column.table!r}")
            source_table = next(t for t in statement.tables if t.name == column.table)
            schema_columns = self.schema[source_table.table]
            if column.column not in schema_columns:
                raise QuerySyntaxError(
                    f"table {source_table.table!r} has no column {column.column!r}"
                )
            return variables[schema_columns.index(column.column)]
        matches: list[Variable] = []
        for table in statement.tables:
            schema_columns = self.schema[table.table]
            if column.column in schema_columns:
                matches.append(columns_by_source[table.name][schema_columns.index(column.column)])
        if not matches:
            raise QuerySyntaxError(f"column {column.column!r} not found in any FROM table")
        if len(matches) > 1:
            raise QuerySyntaxError(f"column {column.column!r} is ambiguous; qualify it with a table name")
        return matches[0]

    def _operand_term(
        self,
        operand,
        columns_by_source: dict[str, list[Variable]],
        statement: SelectStatement,
    ) -> Term:
        if isinstance(operand, Literal):
            return Constant(operand.value)
        return self._resolve_column(operand, columns_by_source, statement)

    def _translate_not_exists(
        self,
        negation: NotExists,
        columns_by_source: dict[str, list[Variable]],
        statement: SelectStatement,
        union_find: "_UnionFind",
    ) -> RelationalAtom:
        table = negation.table
        schema_columns = self.schema.get(table.table)
        if schema_columns is None:
            raise QuerySyntaxError(f"unknown table {table.table!r} in NOT EXISTS")
        bindings: dict[str, Term] = {}
        for condition in negation.conditions:
            inner, outer = self._classify_not_exists_condition(condition, table.name, schema_columns)
            if condition.op not in ("=",):
                raise QuerySyntaxError(
                    "NOT EXISTS subqueries may only use equality conditions "
                    "(the paper's negated subgoals carry no comparisons of their own)"
                )
            outer_term = self._operand_term(outer, columns_by_source, statement) if isinstance(
                outer, ColumnRef
            ) else Constant(outer.value)
            if inner.column in bindings:
                raise QuerySyntaxError(f"column {inner.column!r} bound twice in NOT EXISTS")
            bindings[inner.column] = outer_term
        missing = [column for column in schema_columns if column not in bindings]
        if missing:
            raise QuerySyntaxError(
                "every column of a NOT EXISTS table must be bound by an equality "
                f"(unbound: {', '.join(missing)}); negated subgoals have no projection"
            )
        return RelationalAtom(table.table, tuple(bindings[column] for column in schema_columns), negated=True)

    def _classify_not_exists_condition(
        self, condition: SqlComparison, inner_name: str, schema_columns: Sequence[str]
    ) -> tuple[ColumnRef, object]:
        """Split a subquery condition into (inner column, outer operand)."""

        def is_inner(operand) -> bool:
            return (
                isinstance(operand, ColumnRef)
                and (operand.table == inner_name or (operand.table is None and operand.column in schema_columns))
            )

        if is_inner(condition.left) and not is_inner(condition.right):
            return ColumnRef(condition.left.column, inner_name), condition.right
        if is_inner(condition.right) and not is_inner(condition.left):
            return ColumnRef(condition.right.column, inner_name), condition.left
        raise QuerySyntaxError(
            f"cannot interpret NOT EXISTS condition {condition}: exactly one side must "
            "reference the negated table"
        )

    def _build_head(
        self,
        statement: SelectStatement,
        columns_by_source: dict[str, list[Variable]],
        substitution: Mapping[Variable, Variable],
    ) -> tuple[tuple[Term, ...], Optional[AggregateTerm]]:
        group_columns = statement.group_by or statement.columns
        head_terms: list[Term] = []
        for column in group_columns:
            variable = self._resolve_column(column, columns_by_source, statement)
            head_terms.append(substitution.get(variable, variable))
        aggregate: Optional[AggregateTerm] = None
        if statement.aggregate is not None:
            expression = statement.aggregate
            if expression.argument is None:
                function = "count"
                arguments: tuple[Variable, ...] = ()
            else:
                variable = self._resolve_column(expression.argument, columns_by_source, statement)
                variable = substitution.get(variable, variable)
                function = expression.function
                if function == "count" and not expression.distinct:
                    # COUNT(column) over non-null numeric columns coincides
                    # with COUNT(*) in this model (there are no NULLs).
                    function = "count"
                    arguments = ()
                else:
                    arguments = (variable,)
            aggregate = AggregateTerm(function, arguments)
            # The aggregation variable must not be a grouping variable.
            if aggregate.arguments and aggregate.arguments[0] in head_terms:
                raise QuerySyntaxError(
                    "aggregating a GROUP BY column is not meaningful in the paper's model"
                )
        return tuple(head_terms), aggregate


class _UnionFind:
    """Union-find over variables, used to apply SQL equality joins."""

    def __init__(self) -> None:
        self._parent: dict[Variable, Variable] = {}

    def find(self, variable: Variable) -> Variable:
        parent = self._parent.get(variable, variable)
        if parent == variable:
            return variable
        root = self.find(parent)
        self._parent[variable] = root
        return root

    def union(self, first: Variable, second: Variable) -> None:
        root_first, root_second = self.find(first), self.find(second)
        if root_first == root_second:
            return
        keep, drop = sorted((root_first, root_second), key=lambda v: v.name)
        self._parent[drop] = keep

    def substitution(self) -> dict[Variable, Variable]:
        return {variable: self.find(variable) for variable in list(self._parent)}


def sql_to_query(sql: str, schema: Schema, name: str = "q") -> Query:
    """One-shot helper: parse and translate a SQL string."""
    return SqlTranslator(schema).translate(sql, name=name)
