"""Abstract syntax for the SQL subset understood by the frontend.

The supported fragment corresponds to the query class of the paper: single
SELECT blocks with inner joins expressed in the WHERE clause, comparisons
against columns or constants, ``NOT EXISTS`` subqueries over a single table
(negated subgoals), one aggregate in the SELECT list, and GROUP BY.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..domains import NumericValue


@dataclass(frozen=True)
class ColumnRef:
    """A reference to a column, optionally qualified by a table or alias."""

    column: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Literal:
    """A numeric literal."""

    value: NumericValue

    def __str__(self) -> str:
        return str(self.value)


#: Operands of comparisons: column references or numeric literals.
Operand = Union[ColumnRef, Literal]


@dataclass(frozen=True)
class SqlComparison:
    """``left op right`` in a WHERE clause (op ∈ =, <, <=, >, >=, <>, !=)."""

    left: Operand
    op: str
    right: Operand

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class TableRef:
    """A table in the FROM clause, with an optional alias."""

    table: str
    alias: Optional[str] = None

    @property
    def name(self) -> str:
        return self.alias or self.table

    def __str__(self) -> str:
        return f"{self.table} AS {self.alias}" if self.alias else self.table


@dataclass(frozen=True)
class NotExists:
    """``NOT EXISTS (SELECT * FROM table WHERE ...)`` — a negated subgoal."""

    table: TableRef
    conditions: tuple[SqlComparison, ...] = ()

    def __str__(self) -> str:
        inner = " AND ".join(str(condition) for condition in self.conditions)
        where = f" WHERE {inner}" if inner else ""
        return f"NOT EXISTS (SELECT * FROM {self.table}{where})"


@dataclass(frozen=True)
class AggregateExpr:
    """An aggregate expression in the SELECT list, e.g. ``SUM(amount)``."""

    function: str
    argument: Optional[ColumnRef]
    distinct: bool = False

    def __str__(self) -> str:
        inner = str(self.argument) if self.argument else "*"
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.function.upper()}({prefix}{inner})"


@dataclass(frozen=True)
class CreateViewStatement:
    """``CREATE VIEW name [(col, ...)] AS SELECT ...`` — a named-view
    registration.  The optional column list names the stored columns; when
    omitted, names are derived from the SELECT list (the aggregate column
    gets ``<function>_<argument>`` or ``count_all``)."""

    name: str
    select: "SelectStatement"
    columns: Optional[tuple[str, ...]] = None

    def __str__(self) -> str:
        columns = f" ({', '.join(self.columns)})" if self.columns else ""
        return f"CREATE VIEW {self.name}{columns} AS {self.select}"


@dataclass
class SelectStatement:
    """A parsed SELECT statement."""

    columns: list[ColumnRef] = field(default_factory=list)
    aggregate: Optional[AggregateExpr] = None
    tables: list[TableRef] = field(default_factory=list)
    comparisons: list[SqlComparison] = field(default_factory=list)
    not_exists: list[NotExists] = field(default_factory=list)
    group_by: list[ColumnRef] = field(default_factory=list)

    def __str__(self) -> str:
        select_items = [str(column) for column in self.columns]
        if self.aggregate is not None:
            select_items.append(str(self.aggregate))
        parts = [f"SELECT {', '.join(select_items)}"]
        parts.append(f"FROM {', '.join(str(table) for table in self.tables)}")
        conditions = [str(c) for c in self.comparisons] + [str(n) for n in self.not_exists]
        if conditions:
            parts.append(f"WHERE {' AND '.join(conditions)}")
        if self.group_by:
            parts.append(f"GROUP BY {', '.join(str(column) for column in self.group_by)}")
        return " ".join(parts)
