"""SQL frontend: a small SELECT/GROUP BY/NOT EXISTS fragment translated into
the paper's query class (the data-warehouse motivation of the introduction)."""

from .ast import (
    AggregateExpr,
    ColumnRef,
    CreateViewStatement,
    Literal,
    NotExists,
    SelectStatement,
    SqlComparison,
    TableRef,
)
from .parser import parse_sql, parse_sql_statement
from .translate import Schema, SqlTranslator, sql_to_query

__all__ = [
    "AggregateExpr",
    "ColumnRef",
    "CreateViewStatement",
    "Literal",
    "NotExists",
    "Schema",
    "SelectStatement",
    "SqlComparison",
    "SqlTranslator",
    "TableRef",
    "parse_sql",
    "parse_sql_statement",
    "sql_to_query",
]
