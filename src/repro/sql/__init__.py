"""SQL frontend: a small SELECT/GROUP BY/NOT EXISTS fragment translated into
the paper's query class (the data-warehouse motivation of the introduction)."""

from .ast import (
    AggregateExpr,
    ColumnRef,
    Literal,
    NotExists,
    SelectStatement,
    SqlComparison,
    TableRef,
)
from .parser import parse_sql
from .translate import Schema, SqlTranslator, sql_to_query

__all__ = [
    "AggregateExpr",
    "ColumnRef",
    "Literal",
    "NotExists",
    "Schema",
    "SelectStatement",
    "SqlComparison",
    "SqlTranslator",
    "TableRef",
    "parse_sql",
    "sql_to_query",
]
