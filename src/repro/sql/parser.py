"""A parser for the SQL subset.

Grammar (case-insensitive keywords)::

    statement   := SELECT select_list FROM table_list [WHERE condition_list]
                   [GROUP BY column_list]
    select_list := select_item ("," select_item)*
    select_item := column | AGG "(" [DISTINCT] column ")" | COUNT "(" "*" ")"
    table_list  := table [AS alias] ("," table [AS alias])*
    condition   := operand op operand
                 | NOT EXISTS "(" SELECT "*" FROM table [AS alias]
                                  [WHERE condition_list] ")"
    operand     := column | number
    column      := name | name "." name

Only features with a counterpart in the paper's query class are supported; the
parser raises :class:`QuerySyntaxError` with a precise message otherwise.
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Optional

from ..errors import QuerySyntaxError
from .ast import (
    AggregateExpr,
    ColumnRef,
    CreateViewStatement,
    Literal,
    NotExists,
    Operand,
    SelectStatement,
    SqlComparison,
    TableRef,
)

_SQL_TOKEN = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<op><=|>=|<>|!=|=|<|>)
  | (?P<number>[+-]?\d+(?:\.\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<punct>[(),.*])
    """,
    re.VERBOSE,
)

_AGGREGATE_KEYWORDS = {"count", "sum", "avg", "min", "max", "prod", "top2", "parity"}


class _Tokens:
    def __init__(self, text: str):
        self.text = text
        self.items: list[tuple[str, str, int]] = []
        position = 0
        while position < len(text):
            match = _SQL_TOKEN.match(text, position)
            if match is None:
                raise QuerySyntaxError("unexpected character in SQL", text, position)
            if match.lastgroup != "ws":
                self.items.append((match.lastgroup or "", match.group(), position))
            position = match.end()
        self.index = 0

    def peek(self) -> Optional[tuple[str, str, int]]:
        return self.items[self.index] if self.index < len(self.items) else None

    def peek_word(self) -> str:
        item = self.peek()
        return item[1].lower() if item and item[0] == "name" else ""

    def next(self) -> tuple[str, str, int]:
        item = self.peek()
        if item is None:
            raise QuerySyntaxError("unexpected end of SQL input", self.text, len(self.text))
        self.index += 1
        return item

    def expect_word(self, word: str) -> None:
        kind, text, position = self.next()
        if kind != "name" or text.lower() != word:
            raise QuerySyntaxError(f"expected {word.upper()}, found {text!r}", self.text, position)

    def expect_punct(self, symbol: str) -> None:
        kind, text, position = self.next()
        if text != symbol:
            raise QuerySyntaxError(f"expected {symbol!r}, found {text!r}", self.text, position)

    def accept_word(self, word: str) -> bool:
        item = self.peek()
        if item is not None and item[0] == "name" and item[1].lower() == word:
            self.index += 1
            return True
        return False

    def accept_punct(self, symbol: str) -> bool:
        item = self.peek()
        if item is not None and item[1] == symbol:
            self.index += 1
            return True
        return False

    def at_end(self) -> bool:
        return self.index >= len(self.items)


def parse_sql(text: str) -> SelectStatement:
    """Parse a SELECT statement of the supported fragment."""
    tokens = _Tokens(text.strip().rstrip(";"))
    statement = _parse_select(tokens)
    if not tokens.at_end():
        _, trailing, position = tokens.next()
        raise QuerySyntaxError(f"trailing input {trailing!r} after statement", tokens.text, position)
    return statement


def parse_sql_statement(text: str):
    """Parse a statement of the supported fragment: a SELECT statement or a
    ``CREATE VIEW name [(col, ...)] AS SELECT ...`` registration."""
    tokens = _Tokens(text.strip().rstrip(";"))
    if tokens.peek_word() == "create":
        statement: object = _parse_create_view(tokens)
    else:
        statement = _parse_select(tokens)
    if not tokens.at_end():
        _, trailing, position = tokens.next()
        raise QuerySyntaxError(f"trailing input {trailing!r} after statement", tokens.text, position)
    return statement


def _parse_create_view(tokens: _Tokens) -> CreateViewStatement:
    tokens.expect_word("create")
    tokens.expect_word("view")
    kind, name, position = tokens.next()
    if kind != "name":
        raise QuerySyntaxError(f"expected a view name, found {name!r}", tokens.text, position)
    columns: Optional[tuple[str, ...]] = None
    if tokens.accept_punct("("):
        collected: list[str] = []
        while True:
            kind, column, position = tokens.next()
            if kind != "name":
                raise QuerySyntaxError(
                    f"expected a column name, found {column!r}", tokens.text, position
                )
            collected.append(column.lower())
            if not tokens.accept_punct(","):
                break
        tokens.expect_punct(")")
        columns = tuple(collected)
    tokens.expect_word("as")
    return CreateViewStatement(name=name.lower(), select=_parse_select(tokens), columns=columns)


def _parse_select(tokens: _Tokens) -> SelectStatement:
    tokens.expect_word("select")
    statement = SelectStatement()
    while True:
        item = _parse_select_item(tokens)
        if isinstance(item, AggregateExpr):
            if statement.aggregate is not None:
                raise QuerySyntaxError("only one aggregate is supported per query", tokens.text, 0)
            statement.aggregate = item
        else:
            statement.columns.append(item)
        if not tokens.accept_punct(","):
            break
    tokens.expect_word("from")
    while True:
        statement.tables.append(_parse_table(tokens))
        if not tokens.accept_punct(","):
            break
    if tokens.accept_word("where"):
        comparisons, negations = _parse_conditions(tokens)
        statement.comparisons.extend(comparisons)
        statement.not_exists.extend(negations)
    if tokens.accept_word("group"):
        tokens.expect_word("by")
        while True:
            statement.group_by.append(_parse_column(tokens))
            if not tokens.accept_punct(","):
                break
    return statement


def _parse_select_item(tokens: _Tokens):
    word = tokens.peek_word()
    if word in _AGGREGATE_KEYWORDS:
        lookahead = tokens.items[tokens.index + 1] if tokens.index + 1 < len(tokens.items) else None
        if lookahead is not None and lookahead[1] == "(":
            tokens.next()
            tokens.expect_punct("(")
            distinct = tokens.accept_word("distinct")
            if tokens.accept_punct("*"):
                argument = None
            else:
                argument = _parse_column(tokens)
            tokens.expect_punct(")")
            function = word
            if function == "count" and distinct:
                function = "cntd"
            return AggregateExpr(function=function, argument=argument, distinct=distinct)
    return _parse_column(tokens)


def _parse_column(tokens: _Tokens) -> ColumnRef:
    kind, first, position = tokens.next()
    if kind != "name":
        raise QuerySyntaxError(f"expected a column name, found {first!r}", tokens.text, position)
    if tokens.accept_punct("."):
        kind, second, position = tokens.next()
        if kind != "name":
            raise QuerySyntaxError(f"expected a column name after '.', found {second!r}", tokens.text, position)
        return ColumnRef(column=second.lower(), table=first.lower())
    return ColumnRef(column=first.lower())


def _parse_table(tokens: _Tokens) -> TableRef:
    kind, name, position = tokens.next()
    if kind != "name":
        raise QuerySyntaxError(f"expected a table name, found {name!r}", tokens.text, position)
    alias = None
    if tokens.accept_word("as"):
        kind, alias_name, position = tokens.next()
        if kind != "name":
            raise QuerySyntaxError("expected an alias after AS", tokens.text, position)
        alias = alias_name.lower()
    elif tokens.peek() is not None and tokens.peek()[0] == "name" and tokens.peek_word() not in (
        "where",
        "group",
        "on",
        "as",
    ):
        alias = tokens.next()[1].lower()
    return TableRef(table=name.lower(), alias=alias)


def _parse_conditions(tokens: _Tokens) -> tuple[list[SqlComparison], list[NotExists]]:
    comparisons: list[SqlComparison] = []
    negations: list[NotExists] = []
    while True:
        if tokens.accept_word("not"):
            tokens.expect_word("exists")
            negations.append(_parse_not_exists(tokens))
        else:
            comparisons.append(_parse_comparison(tokens))
        if not tokens.accept_word("and"):
            break
    return comparisons, negations


def _parse_not_exists(tokens: _Tokens) -> NotExists:
    tokens.expect_punct("(")
    tokens.expect_word("select")
    if not tokens.accept_punct("*"):
        # Allow "SELECT 1" style existence subqueries.
        tokens.next()
    tokens.expect_word("from")
    table = _parse_table(tokens)
    conditions: tuple[SqlComparison, ...] = ()
    if tokens.accept_word("where"):
        inner_comparisons, inner_negations = _parse_conditions(tokens)
        if inner_negations:
            raise QuerySyntaxError(
                "nested NOT EXISTS is not supported (the paper's queries have one "
                "level of negation)",
                tokens.text,
                0,
            )
        conditions = tuple(inner_comparisons)
    tokens.expect_punct(")")
    return NotExists(table=table, conditions=conditions)


def _parse_comparison(tokens: _Tokens) -> SqlComparison:
    left = _parse_operand(tokens)
    kind, op, position = tokens.next()
    if kind != "op":
        raise QuerySyntaxError(f"expected a comparison operator, found {op!r}", tokens.text, position)
    right = _parse_operand(tokens)
    return SqlComparison(left=left, op=op, right=right)


def _parse_operand(tokens: _Tokens) -> Operand:
    item = tokens.peek()
    if item is not None and item[0] == "number":
        tokens.next()
        text = item[1]
        value = Fraction(text)
        return Literal(int(value) if value.denominator == 1 else value)
    return _parse_column(tokens)
