"""Exception hierarchy for the repro package.

All library-specific errors derive from :class:`ReproError` so that callers can
catch every failure mode of the package with a single ``except`` clause while
still being able to distinguish the individual conditions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class QuerySyntaxError(ReproError):
    """Raised when parsing a query (Datalog or SQL) fails."""

    def __init__(
        self, message: str, text: str | None = None, position: int | None = None
    ) -> None:
        self.text = text
        self.position = position
        if text is not None and position is not None:
            message = f"{message} (at position {position} in {text!r})"
        super().__init__(message)


class UnsafeQueryError(ReproError):
    """Raised when a query violates the safety requirement.

    A condition is safe when every variable occurring in it appears in a
    positive relational atom or is equated with such a variable (Section 3.1
    of the paper).  Unsafe queries do not have a well-defined semantics over
    infinite domains, so they are rejected at construction time.
    """


class MalformedQueryError(ReproError):
    """Raised when a query violates a structural requirement.

    Examples: a grouping variable that also occurs among the aggregation
    variables, or a disjunct that does not contain all head variables
    (Section 3.3 of the paper).
    """


class DomainError(ReproError):
    """Raised when a value does not belong to the declared domain."""


class UnsupportedAggregateError(ReproError):
    """Raised when an operation is requested for an aggregation function that
    does not support it (e.g. deciding ordered identities for a function that
    is not order-decidable over the requested domain)."""


class UndecidableError(ReproError):
    """Raised when a decision procedure is asked to solve an instance that
    falls outside the decidable fragment established by the paper."""


class EvaluationError(ReproError):
    """Raised when evaluating a query over a database fails."""


class UnsatisfiableOrderingError(ReproError):
    """Raised when an operation requires a satisfiable ordering but the given
    conjunction of comparisons is unsatisfiable over the requested domain."""


class SearchSpaceBudgetError(ReproError):
    """Raised when a bounded-equivalence (or catalog-sweep) search space
    exceeds the caller's ``max_subsets`` budget."""


class RewritingError(ReproError):
    """Raised when a view definition, a candidate rewriting, or an unfolding
    request falls outside the fragment the rewriting subsystem handles
    soundly (e.g. a negated view atom, or a duplicate-sensitive aggregate
    over a duplicating view)."""


class WorkerCrashError(ReproError):
    """Raised when a pool worker process died (or was replaced) during — or
    since — a parallel run.

    A crashed worker loses whatever task it was executing and invalidates the
    pool's accumulated per-process state (setup memos, warm caches), so the
    run that observes the crash fails as a whole rather than merging a
    half-drained generation of outcomes.  The condition is *retryable*: the
    persistent executor discards the dead pool immediately, and the next run
    forks a fresh one (counted by ``parallel.pool.heals``)."""

    #: Callers serving traffic map this onto a retry-after response.
    retryable = True


class KernelVerificationError(ReproError):
    """Raised when a code-generated kernel source falls outside the closed
    kernel language (:mod:`repro.analysis.kernelcheck`): an unexpected
    statement or expression form, a name outside the generated vocabulary,
    an import, or an attribute access outside the store API."""
