"""The kernel-source verifier: generated kernels stay in a closed language.

:mod:`repro.engine.compile` code-generates one Python function per plan and
``exec``-s it.  The generator only ever emits a tiny, closed fragment —
nested ``for`` loops over store rows and index probes, integer-id guards,
tuple projection — but nothing *checked* that, and an ``exec`` whose input
language silently widens is how a codegen bug (or a poisoned plan object)
turns into arbitrary code execution inside every worker process.

:func:`verify_kernel_source` parses a kernel source and validates it against
a whitelist grammar before the ``exec``:

* **statements** — exactly one ``def _kernel(store)``; inside it only
  assignments, ``for``/``if``, expression calls, ``return``, ``continue``;
* **expressions** — names, constants (non-negative ints and predicate-name
  strings), tuples, subscripts of row tuples, comparisons, ``not``;
* **names** — the generated vocabulary only (``store``, ``out``,
  ``_append``, and the numbered ``_c0``/``_v3``/``_row2``/... locals);
  builtins are unreachable because no other name resolves;
* **attributes** — the store API (:data:`STORE_API`), ``out.append``, and
  index-probe ``.get``; dunder access is impossible since every attribute
  must be whitelisted by exact name;
* **imports** — none (no ``import`` statement form is whitelisted, and
  ``__import__`` is not an allowed name).

The check is wired into the kernel cache's *miss* path
(``REPRO_VERIFY_KERNELS=1``), so a verified kernel is verified exactly once
per process — the compiled engine's warm path never sees the verifier and
stays inside the PR 7 instrumentation-overhead ceiling.
"""

from __future__ import annotations

import ast
import re
from typing import Mapping, Optional

from ..errors import KernelVerificationError

#: The :class:`~repro.engine.columnar.ColumnarStore` methods a kernel may
#: call — the whole surface the generated code touches at run time.
STORE_API = frozenset({"bounds", "decode_id", "index", "rows", "row_set", "const_holds"})

#: Names the generator introduces: the store parameter, the output
#: accumulator and its bound append, plus the numbered per-construct locals.
_FIXED_NAMES = frozenset({"store", "out", "_append"})
_NUMBERED_NAME = re.compile(r"\A_(?:c|d|lo|hi|eq|op|v|row|rows|idx|neg)\d+\Z")

#: Namespace entries the generator injects for the ``exec``: interned
#: constants (``_c0``) and comparison operators (``_op0``).
_NAMESPACE_NAME = re.compile(r"\A_(?:c|op)\d+\Z")

_ALLOWED_COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq, ast.In)


def _fail(message: str, node: Optional[ast.AST] = None) -> KernelVerificationError:
    line = getattr(node, "lineno", None)
    location = f" (kernel line {line})" if line is not None else ""
    return KernelVerificationError(f"kernel verification failed: {message}{location}")


def _allowed_name(name: str) -> bool:
    return name in _FIXED_NAMES or _NUMBERED_NAME.match(name) is not None


def verify_kernel_source(
    source: str, namespace: Optional[Mapping[str, object]] = None
) -> ast.Module:
    """Validate one generated kernel source against the closed kernel language.

    Raises :class:`~repro.errors.KernelVerificationError` on the first
    violation; returns the parsed module on success (so callers can reuse the
    AST if they wish).  ``namespace`` — the mapping the kernel will be
    ``exec``-ed in — is validated too: only injected ``_cN``/``_opN`` entries
    are admitted.
    """
    if namespace:
        for key in namespace:
            if _NAMESPACE_NAME.match(key) is None:
                raise _fail(f"namespace injects unexpected name {key!r}")
    try:
        tree = ast.parse(source, filename="<plan-kernel>")
    except SyntaxError as error:
        raise KernelVerificationError(
            f"kernel verification failed: source does not parse: {error}"
        ) from error
    if len(tree.body) != 1 or not isinstance(tree.body[0], ast.FunctionDef):
        raise _fail("kernel module must contain exactly one function definition")
    function = tree.body[0]
    _verify_signature(function)
    for statement in function.body:
        _verify_statement(statement)
    return tree


def _verify_signature(function: ast.FunctionDef) -> None:
    if function.name != "_kernel":
        raise _fail(f"unexpected function name {function.name!r}", function)
    if function.decorator_list or function.returns or getattr(function, "type_params", ()):
        raise _fail("kernel function must have no decorators or annotations", function)
    args = function.args
    if (
        [a.arg for a in args.args] != ["store"]
        or args.posonlyargs
        or args.kwonlyargs
        or args.vararg
        or args.kwarg
        or args.defaults
        or args.kw_defaults
        or args.args[0].annotation is not None
    ):
        raise _fail("kernel signature must be exactly (store)", function)


def _verify_statement(statement: ast.stmt) -> None:
    if isinstance(statement, ast.Assign):
        if len(statement.targets) != 1:
            raise _fail("chained assignment is outside the kernel language", statement)
        _verify_assign_target(statement.targets[0])
        _verify_expression(statement.value, allow_empty_list=True)
    elif isinstance(statement, ast.Expr):
        if not isinstance(statement.value, ast.Call):
            raise _fail("bare expressions other than calls are not kernel forms", statement)
        _verify_expression(statement.value)
    elif isinstance(statement, ast.For):
        if statement.orelse:
            raise _fail("for/else is outside the kernel language", statement)
        _verify_assign_target(statement.target)
        _verify_expression(statement.iter)
        for inner in statement.body:
            _verify_statement(inner)
    elif isinstance(statement, ast.If):
        if statement.orelse:
            raise _fail("if/else is outside the kernel language", statement)
        _verify_expression(statement.test)
        for inner in statement.body:
            _verify_statement(inner)
    elif isinstance(statement, ast.Return):
        if not (isinstance(statement.value, ast.Name) and statement.value.id == "out"):
            raise _fail("kernels may only return out", statement)
    elif isinstance(statement, ast.Continue):
        pass
    else:
        raise _fail(
            f"statement form {type(statement).__name__} is outside the kernel language",
            statement,
        )


def _verify_assign_target(target: ast.expr) -> None:
    if isinstance(target, ast.Name):
        if not _allowed_name(target.id):
            raise _fail(f"assignment to unexpected name {target.id!r}", target)
        return
    if isinstance(target, ast.Tuple) and all(isinstance(e, ast.Name) for e in target.elts):
        for element in target.elts:
            assert isinstance(element, ast.Name)
            if not _allowed_name(element.id):
                raise _fail(f"assignment to unexpected name {element.id!r}", element)
        return
    raise _fail("assignment target must be a name or a tuple of names", target)


def _verify_expression(expr: ast.expr, allow_empty_list: bool = False) -> None:
    if isinstance(expr, ast.Name):
        if not _allowed_name(expr.id):
            raise _fail(f"name {expr.id!r} is outside the kernel vocabulary", expr)
    elif isinstance(expr, ast.Constant):
        value = expr.value
        if isinstance(value, bool) or not isinstance(value, (int, str)):
            raise _fail(f"constant {value!r} is outside the kernel language", expr)
        if isinstance(value, int) and value < 0:
            raise _fail(f"negative constant {value!r} is outside the kernel language", expr)
    elif isinstance(expr, ast.Tuple):
        for element in expr.elts:
            _verify_expression(element)
    elif isinstance(expr, ast.List):
        if expr.elts or not allow_empty_list:
            raise _fail("list literals other than the out accumulator are not kernel forms", expr)
    elif isinstance(expr, ast.Attribute):
        _verify_attribute(expr)
    elif isinstance(expr, ast.Call):
        _verify_call(expr)
    elif isinstance(expr, ast.Subscript):
        if not (isinstance(expr.value, ast.Name) and re.match(r"\A_row\d+\Z", expr.value.id)):
            raise _fail("subscripts may only index row tuples", expr)
        if not (
            isinstance(expr.slice, ast.Constant)
            and isinstance(expr.slice.value, int)
            and not isinstance(expr.slice.value, bool)
        ):
            raise _fail("row subscripts must use integer literals", expr)
    elif isinstance(expr, ast.Compare):
        if len(expr.ops) != 1 or len(expr.comparators) != 1:
            raise _fail("chained comparisons are outside the kernel language", expr)
        if not isinstance(expr.ops[0], _ALLOWED_COMPARE_OPS):
            raise _fail(
                f"comparison {type(expr.ops[0]).__name__} is outside the kernel language",
                expr,
            )
        _verify_expression(expr.left)
        _verify_expression(expr.comparators[0])
    elif isinstance(expr, ast.UnaryOp):
        if not isinstance(expr.op, ast.Not):
            raise _fail("the only unary operator in the kernel language is not", expr)
        _verify_expression(expr.operand)
    else:
        raise _fail(
            f"expression form {type(expr).__name__} is outside the kernel language", expr
        )


def _verify_attribute(attribute: ast.Attribute) -> None:
    if attribute.attr.startswith("_"):
        raise _fail(f"underscore attribute {attribute.attr!r} is never generated", attribute)
    base = attribute.value
    if not isinstance(base, ast.Name):
        raise _fail("attribute base must be a plain name", attribute)
    if base.id == "store" and attribute.attr in STORE_API:
        return
    if base.id == "out" and attribute.attr == "append":
        return
    if re.match(r"\A_idx\d+\Z", base.id) and attribute.attr == "get":
        return
    raise _fail(
        f"attribute access {base.id}.{attribute.attr} is outside the store API", attribute
    )


def _verify_call(call: ast.Call) -> None:
    if call.keywords:
        raise _fail("keyword arguments are outside the kernel language", call)
    if any(isinstance(argument, ast.Starred) for argument in call.args):
        raise _fail("star arguments are outside the kernel language", call)
    func = call.func
    if isinstance(func, ast.Name):
        if func.id != "_append":
            raise _fail(f"call to unexpected function {func.id!r}", call)
    elif isinstance(func, ast.Attribute):
        _verify_attribute(func)
    else:
        raise _fail("call target must be a name or an allowed attribute", call)
    for argument in call.args:
        _verify_expression(argument)
