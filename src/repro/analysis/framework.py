"""The static-analysis framework: sources, findings, suppressions, passes.

The framework is deliberately small: a loaded :class:`SourceModule` per file
(text, AST, per-line suppressions), a :class:`Program` bundling the modules
of one analysis run, and a :class:`Checker` base class with two hooks —
``check_module`` for per-file passes and ``check_program`` for whole-program
passes that need to see every registration/definition site at once.

Findings are structured (:class:`Finding`: rule, path, line, message) and
suppressible inline::

    _TABLE = {}  # repro: allow[cache-discipline] -- constant after import

A suppression names the rule it silences and MUST carry a reason after
``--``; a reason-less suppression is itself reported (rule
``suppression-hygiene``) and silences nothing.  A suppression covers the
line it sits on and, when it is a standalone comment line, the line below
it.  Suppressions for rules unknown to the run are reported too — a typo in
the rule name must not silently disable the gate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Optional, Sequence

#: The rule every suppression-syntax problem is reported under; it cannot be
#: suppressed (a broken suppression must never hide itself).
SUPPRESSION_RULE = "suppression-hygiene"

_SUPPRESSION_PATTERN = re.compile(
    r"#\s*repro:\s*allow\[(?P<rule>[^\]]*)\]\s*(?:--\s*(?P<reason>.*\S)?)?"
)


@dataclass(frozen=True)
class Finding:
    """One structured diagnostic: ``path:line: [rule] message``."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One inline ``# repro: allow[rule] -- reason`` comment."""

    rule: str
    line: int
    reason: str
    #: Whether the comment stands alone on its line (then it also covers the
    #: line below, the common style for multi-line constructs).
    standalone: bool


@dataclass
class SourceModule:
    """One parsed source file."""

    #: Path relative to the analyzed package root, posix-style — the identity
    #: used by cache-registry keys (``"engine/compile.py"``).
    relpath: str
    #: The path rendered in findings (relative to the invoker's cwd when the
    #: file exists on disk; equal to ``relpath`` for in-memory fixtures).
    display_path: str
    text: str
    tree: ast.Module
    suppressions: tuple[Suppression, ...] = ()

    @classmethod
    def from_source(
        cls, text: str, relpath: str, display_path: Optional[str] = None
    ) -> "SourceModule":
        return cls(
            relpath=relpath,
            display_path=display_path or relpath,
            text=text,
            tree=ast.parse(text, filename=display_path or relpath),
            suppressions=tuple(_scan_suppressions(text)),
        )

    def covered_rules(self, line: int) -> set[str]:
        """The rules suppressed (with a reason) at ``line``."""
        covered: set[str] = set()
        for suppression in self.suppressions:
            if not suppression.reason:
                continue
            if suppression.line == line or (
                suppression.standalone and suppression.line == line - 1
            ):
                covered.add(suppression.rule)
        return covered


def _scan_suppressions(text: str) -> Iterator[Suppression]:
    # Tokenize rather than regex over raw lines: only genuine COMMENT tokens
    # count, so docstrings *describing* the suppression syntax never register
    # as suppressions.
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_PATTERN.search(token.string)
        if match is None:
            continue
        row, column = token.start
        yield Suppression(
            rule=match.group("rule").strip(),
            line=row,
            reason=(match.group("reason") or "").strip(),
            standalone=token.line[:column].strip() == "",
        )


@dataclass
class Program:
    """The modules of one analysis run, keyed by relpath."""

    modules: list[SourceModule] = field(default_factory=list)

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "Program":
        """An in-memory program — the fixture entry point used by tests."""
        return cls([SourceModule.from_source(text, relpath) for relpath, text in sources.items()])

    @classmethod
    def from_root(cls, root: Path, display_base: Optional[Path] = None) -> "Program":
        """Every ``*.py`` under ``root`` (sorted, so findings are stable)."""
        modules: list[SourceModule] = []
        for path in sorted(root.rglob("*.py")):
            relpath = path.relative_to(root).as_posix()
            display = _display_path(path, display_base)
            modules.append(SourceModule.from_source(path.read_text(), relpath, display))
        return cls(modules)

    def module(self, relpath: str) -> Optional[SourceModule]:
        for module in self.modules:
            if module.relpath == relpath:
                return module
        return None


def _display_path(path: Path, base: Optional[Path]) -> str:
    resolved = path.resolve()
    base = (base or Path.cwd()).resolve()
    try:
        return resolved.relative_to(base).as_posix()
    except ValueError:
        return str(resolved)


class Checker:
    """Base class for one rule.

    Subclasses set ``name``/``description`` and override ``check_module``
    (called once per file) and/or ``check_program`` (called once per run,
    after every module is loaded).
    """

    name: str = ""
    description: str = ""

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        return ()

    def check_program(self, program: Program) -> Iterable[Finding]:
        return ()


def run_checkers(
    program: Program, checkers: Sequence[Checker]
) -> list[Finding]:
    """Run every checker over the program and apply suppressions.

    Returns the surviving findings sorted by ``(path, line, rule)``.  Beyond
    the checkers' own findings, the run reports suppression hygiene: a
    suppression without a reason, and a suppression naming a rule no active
    checker owns.
    """
    known_rules = {checker.name for checker in checkers}
    raw: list[Finding] = []
    for checker in checkers:
        for module in program.modules:
            raw.extend(checker.check_module(module))
        raw.extend(checker.check_program(program))

    findings: list[Finding] = []
    for finding in raw:
        module = _module_for_display(program, finding)
        if module is not None and finding.rule in module.covered_rules(finding.line):
            continue
        findings.append(finding)

    for module in program.modules:
        for suppression in module.suppressions:
            if not suppression.reason:
                findings.append(
                    Finding(
                        SUPPRESSION_RULE,
                        module.display_path,
                        suppression.line,
                        f"suppression allow[{suppression.rule}] has no reason; "
                        "write '# repro: allow[rule] -- why it is safe'",
                    )
                )
            elif suppression.rule not in known_rules:
                findings.append(
                    Finding(
                        SUPPRESSION_RULE,
                        module.display_path,
                        suppression.line,
                        f"suppression names unknown rule {suppression.rule!r}; "
                        f"known rules: {', '.join(sorted(known_rules))}",
                    )
                )
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def _module_for_display(program: Program, finding: Finding) -> Optional[SourceModule]:
    for module in program.modules:
        if module.display_path == finding.path:
            return module
    return None
