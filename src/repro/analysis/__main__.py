"""``python -m repro.analysis`` — run the invariant checkers, exit-code gated."""

import sys

from .cli import main

sys.exit(main())
