"""The ``python -m repro.analysis`` command line: the exit-code-gated lint.

Runs every registered checker over the package source (or explicit paths)
and prints one ``path:line: [rule] message`` per surviving finding.  Exit
status 0 means the tree is clean — every invariant holds and every
suppression carries a reason; any finding exits 1, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .checkers import ALL_CHECKERS
from .framework import Checker, Finding, Program, run_checkers


def default_root() -> Path:
    """The ``repro`` package source tree this module was imported from."""
    return Path(__file__).resolve().parents[1]


def _select_checkers(rules: Optional[Sequence[str]]) -> tuple[Checker, ...]:
    if not rules:
        return ALL_CHECKERS
    by_name = {checker.name: checker for checker in ALL_CHECKERS}
    unknown = sorted(set(rules) - set(by_name))
    if unknown:
        raise SystemExit(
            f"unknown rule(s): {', '.join(unknown)}; known: {', '.join(sorted(by_name))}"
        )
    return tuple(by_name[name] for name in dict.fromkeys(rules))


def analyze_paths(
    paths: Sequence[Path], checkers: Sequence[Checker] = ALL_CHECKERS
) -> list[Finding]:
    """Analyze one or more package roots / single files and merge findings.

    Each directory is treated as a package root (cache-registry keys are
    relative to it); a single file is analyzed as a one-module program.
    """
    findings: list[Finding] = []
    for path in paths:
        if path.is_dir():
            program = Program.from_root(path)
        else:
            program = Program.from_root(path.parent)
            program.modules = [
                module for module in program.modules if module.relpath == path.name
            ]
        findings.extend(run_checkers(program, checkers))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static invariant checks for the repro package.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="package roots or files to analyze (default: the installed repro package)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="NAME",
        help="run only this rule (repeatable)",
    )
    parser.add_argument("--json", action="store_true", help="emit findings as JSON records")
    parser.add_argument("--list-rules", action="store_true", help="list rules and exit")
    arguments = parser.parse_args(argv)

    if arguments.list_rules:
        for checker in ALL_CHECKERS:
            print(f"{checker.name}: {checker.description}")
        return 0

    checkers = _select_checkers(arguments.rules)
    paths = arguments.paths or [default_root()]
    findings = analyze_paths(paths, checkers)

    if arguments.json:
        for finding in findings:
            print(json.dumps(finding.__dict__, sort_keys=True))
    else:
        for finding in findings:
            print(finding.render())
        print(
            f"repro.analysis: {len(findings)} finding(s) from "
            f"{len(checkers)} rule(s)",
            file=sys.stderr,
        )
    return 1 if findings else 0
