"""repro.analysis — static invariant checks and the kernel-source verifier.

Two layers guard the invariants the test suite only samples:

* **Static analysis** (``python -m repro.analysis``): an AST-based checker
  framework (:mod:`repro.analysis.framework`) with five repo-specific rules
  (:mod:`repro.analysis.checkers`) — cache discipline, seeded randomness,
  verdict soundness, fork safety, and engine threading — run over the
  package source and exit-code gated in CI.  Inline suppressions
  (``# repro: allow[rule] -- reason``) require a reason.
* **Kernel verification** (:mod:`repro.analysis.kernelcheck`): every
  code-generated kernel from :mod:`repro.engine.compile` is parsed and
  validated against a closed whitelist grammar before ``exec`` when
  ``REPRO_VERIFY_KERNELS=1`` — once per compiled kernel, so the warm path
  never pays for it.
"""

from .checkers import ALL_CHECKERS
from .cli import analyze_paths, default_root, main
from .framework import (
    Checker,
    Finding,
    Program,
    SourceModule,
    Suppression,
    run_checkers,
)
from .kernelcheck import STORE_API, verify_kernel_source

__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "Finding",
    "Program",
    "STORE_API",
    "SourceModule",
    "Suppression",
    "analyze_paths",
    "default_root",
    "main",
    "run_checkers",
    "verify_kernel_source",
]
