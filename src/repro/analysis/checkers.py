"""The repo-specific invariant checkers.

Each checker machine-checks one convention the test suite only samples:

* ``cache-discipline`` — every module-level mutable container is either
  registered with the cache registry (:mod:`repro.caches`) so a public clear
  entry resets it, or exempted with a reason in ``EXEMPT_CACHES``.
* ``seeded-randomness`` — no draws from the process-global ``random`` module
  and no argless ``Random()``: randomized searches must flow an explicit
  seed into a private ``random.Random(seed)``.
* ``verdict-soundness`` — a directly constructed NOT_EQUIVALENT
  :class:`~repro.core.equivalence.EquivalenceResult` must carry a
  ``counterexample=`` or ``report=`` argument (the PR 1 soundness contract:
  never a witness-less refutation).
* ``fork-safety`` — parallel task dataclasses must be picklable by
  construction: no callable/handle-typed fields, no lambda defaults, no
  field defaults referencing module-level caches.
* ``engine-threading`` — evaluation entry points outside ``engine/`` never
  touch a backend driver directly and never hard-code an engine mode
  string; the mode is threaded (``engine=`` / task field) or read from
  ``active_engine()``.

All checks are syntactic (AST-level).  They catch the construction patterns
the repo actually uses; code determined to evade them can (dataflow through
aliases, ``getattr`` tricks) — the gate is for honest mistakes, not
adversaries.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from .framework import Checker, Finding, Program, SourceModule

# ----------------------------------------------------------------------
# Shared discovery helpers
# ----------------------------------------------------------------------
#: Constructor names whose module-level call produces a mutable container.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "bytearray", "defaultdict", "Counter", "OrderedDict", "deque"}
)

#: Module-level names that are mutable containers by Python convention and
#: never caches (``__all__`` is a list by idiom).
_AUTO_EXEMPT_NAMES = frozenset({"__all__"})


def _is_mutable_container(value: ast.expr) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in _MUTABLE_CONSTRUCTORS
    )


def module_level_mutable_containers(module: SourceModule) -> Iterator[tuple[str, int]]:
    """``(name, line)`` for every module-level mutable-container assignment."""
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
            value: Optional[ast.expr] = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target]
            value = node.value
        else:
            continue
        if value is None or not _is_mutable_container(value):
            continue
        for target in targets:
            if target.id not in _AUTO_EXEMPT_NAMES:
                yield target.id, node.lineno


def _call_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


# ----------------------------------------------------------------------
# cache-discipline
# ----------------------------------------------------------------------
class CacheDisciplineChecker(Checker):
    name = "cache-discipline"
    description = (
        "module-level mutable containers must be registered with "
        "repro.caches.register_cache or exempted in EXEMPT_CACHES with a reason"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        findings: list[Finding] = []
        discovered: dict[str, tuple[SourceModule, int]] = {}
        for module in program.modules:
            for cache_name, line in module_level_mutable_containers(module):
                discovered[f"{module.relpath}:{cache_name}"] = (module, line)

        registered: dict[str, tuple[SourceModule, int]] = {}
        for module in program.modules:
            for node in ast.walk(module.tree):
                if not (isinstance(node, ast.Call) and _call_name(node.func) == "register_cache"):
                    continue
                key_node = node.args[0] if node.args else None
                if not (isinstance(key_node, ast.Constant) and isinstance(key_node.value, str)):
                    findings.append(
                        Finding(
                            self.name,
                            module.display_path,
                            node.lineno,
                            "register_cache key must be a string literal so the "
                            "checker can match it against the cache definition",
                        )
                    )
                    continue
                key = key_node.value
                relpath = key.partition(":")[0]
                if relpath != module.relpath:
                    findings.append(
                        Finding(
                            self.name,
                            module.display_path,
                            node.lineno,
                            f"register_cache key {key!r} names {relpath!r} but the "
                            f"registration sits in {module.relpath!r}; register a "
                            "cache in the module that defines it",
                        )
                    )
                    continue
                registered[key] = (module, node.lineno)

        exempt: dict[str, tuple[SourceModule, int, str]] = {}
        for module in program.modules:
            for node in module.tree.body:
                if isinstance(node, ast.Assign):
                    named = any(
                        isinstance(t, ast.Name) and t.id == "EXEMPT_CACHES" for t in node.targets
                    )
                elif isinstance(node, ast.AnnAssign):
                    named = isinstance(node.target, ast.Name) and node.target.id == "EXEMPT_CACHES"
                else:
                    named = False
                if not named or not isinstance(node.value, ast.Dict):
                    continue
                for key_node, reason_node in zip(node.value.keys, node.value.values):
                    if not (isinstance(key_node, ast.Constant) and isinstance(key_node.value, str)):
                        continue
                    reason = (
                        reason_node.value
                        if isinstance(reason_node, ast.Constant)
                        and isinstance(reason_node.value, str)
                        else ""
                    )
                    exempt[key_node.value] = (module, key_node.lineno, reason.strip())

        for key, (module, line) in sorted(discovered.items()):
            if key in registered and key in exempt:
                findings.append(
                    Finding(
                        self.name,
                        module.display_path,
                        line,
                        f"{key} is both registered and exempted; pick one",
                    )
                )
            elif key not in registered and key not in exempt:
                cache_name = key.partition(":")[2]
                findings.append(
                    Finding(
                        self.name,
                        module.display_path,
                        line,
                        f"module-level mutable container {cache_name!r} is neither "
                        "registered with repro.caches.register_cache nor listed in "
                        "EXEMPT_CACHES; caches must reset through a public clear entry",
                    )
                )
        for key, (module, line) in sorted(registered.items()):
            if key not in discovered:
                findings.append(
                    Finding(
                        self.name,
                        module.display_path,
                        line,
                        f"stale registration: {key} does not name a module-level "
                        "mutable container in this program",
                    )
                )
        for key, (module, line, reason) in sorted(exempt.items()):
            if key not in discovered:
                findings.append(
                    Finding(
                        self.name,
                        module.display_path,
                        line,
                        f"stale exemption: {key} does not name a module-level "
                        "mutable container in this program",
                    )
                )
            elif not reason:
                findings.append(
                    Finding(
                        self.name,
                        module.display_path,
                        line,
                        f"exemption for {key} has no reason; every exemption must "
                        "say why the container is not a cache",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# seeded-randomness
# ----------------------------------------------------------------------
#: ``random``-module functions that draw from (or reseed) the process-global
#: RNG.  ``Random`` itself is fine *with* arguments.
_GLOBAL_RNG_DRAWS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate", "randbytes",
        "randint", "random", "randrange", "sample", "seed", "shuffle", "triangular",
        "uniform", "vonmisesvariate", "weibullvariate",
    }
)


class SeededRandomnessChecker(Checker):
    name = "seeded-randomness"
    description = (
        "no draws from the process-global random module and no argless Random(); "
        "randomized searches take an explicit seed and build random.Random(seed)"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        findings: list[Finding] = []
        aliases: set[str] = set()
        random_class_aliases: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name == "Random":
                        random_class_aliases.add(alias.asname or alias.name)
                    elif alias.name in _GLOBAL_RNG_DRAWS:
                        findings.append(
                            Finding(
                                self.name,
                                module.display_path,
                                node.lineno,
                                f"'from random import {alias.name}' pulls in a "
                                "process-global RNG draw; import the module and pass "
                                "an explicit random.Random(seed) instead",
                            )
                        )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in aliases
            ):
                if func.attr in _GLOBAL_RNG_DRAWS:
                    findings.append(
                        Finding(
                            self.name,
                            module.display_path,
                            node.lineno,
                            f"random.{func.attr}() draws from the process-global RNG; "
                            "draw from an explicit seeded random.Random instead",
                        )
                    )
                elif func.attr == "Random" and not node.args and not node.keywords:
                    findings.append(
                        Finding(
                            self.name,
                            module.display_path,
                            node.lineno,
                            "argless random.Random() seeds from the OS; thread an "
                            "explicit seed parameter into Random(seed)",
                        )
                    )
            elif (
                isinstance(func, ast.Name)
                and func.id in random_class_aliases
                and not node.args
                and not node.keywords
            ):
                findings.append(
                    Finding(
                        self.name,
                        module.display_path,
                        node.lineno,
                        "argless Random() seeds from the OS; thread an explicit "
                        "seed parameter into Random(seed)",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# verdict-soundness
# ----------------------------------------------------------------------
class VerdictSoundnessChecker(Checker):
    name = "verdict-soundness"
    description = (
        "a directly constructed NOT_EQUIVALENT EquivalenceResult must carry a "
        "counterexample= or report= argument (no witness-less refutations)"
    )

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and _call_name(node.func) == "EquivalenceResult"):
                continue
            verdict: Optional[ast.expr] = node.args[0] if node.args else None
            if verdict is None:
                for keyword in node.keywords:
                    if keyword.arg == "verdict":
                        verdict = keyword.value
            if verdict is None or not self._mentions_not_equivalent(verdict):
                continue
            witnessed = any(
                keyword.arg in ("counterexample", "report")
                and not (
                    isinstance(keyword.value, ast.Constant) and keyword.value.value is None
                )
                for keyword in node.keywords
            )
            if not witnessed:
                findings.append(
                    Finding(
                        self.name,
                        module.display_path,
                        node.lineno,
                        "EquivalenceResult constructed with Verdict.NOT_EQUIVALENT "
                        "but no counterexample= or report= argument; refutations "
                        "must carry their witness",
                    )
                )
        return findings

    @staticmethod
    def _mentions_not_equivalent(expr: ast.expr) -> bool:
        return any(
            isinstance(node, ast.Attribute) and node.attr == "NOT_EQUIVALENT"
            for node in ast.walk(expr)
        )


# ----------------------------------------------------------------------
# fork-safety
# ----------------------------------------------------------------------
#: Annotation names that mark a field as non-picklable (or picklable only by
#: accident): callables and closures, synchronization primitives, live
#: handles, and lazily evaluated streams.
_UNPICKLABLE_ANNOTATIONS = frozenset(
    {
        "Callable", "Lambda", "Lock", "RLock", "Event", "Semaphore", "BoundedSemaphore",
        "Condition", "Barrier", "Queue", "SimpleQueue", "Thread", "Process", "Pool",
        "Executor", "IO", "TextIO", "BinaryIO", "IOBase", "Popen", "socket", "Socket",
        "Connection", "Iterator", "Generator",
    }
)


def _is_task_dataclass(node: ast.ClassDef) -> bool:
    if not node.name.endswith("Task"):
        return False
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if _call_name(target) == "dataclass" or (
            isinstance(target, ast.Name) and target.id == "dataclass"
        ):
            return True
    return False


class ForkSafetyChecker(Checker):
    name = "fork-safety"
    description = (
        "parallel task dataclasses must be picklable by construction: no "
        "callable/handle-typed fields, no lambda defaults, no defaults that "
        "reference module-level caches"
    )

    def check_program(self, program: Program) -> Iterable[Finding]:
        findings: list[Finding] = []
        for module in program.modules:
            cache_names = {name for name, _line in module_level_mutable_containers(module)}
            for node in ast.walk(module.tree):
                if not (isinstance(node, ast.ClassDef) and _is_task_dataclass(node)):
                    continue
                for statement in node.body:
                    if not isinstance(statement, ast.AnnAssign) or not isinstance(
                        statement.target, ast.Name
                    ):
                        continue
                    field_name = statement.target.id
                    findings.extend(
                        self._field_findings(
                            module, node.name, field_name, statement, cache_names
                        )
                    )
        return findings

    def _field_findings(
        self,
        module: SourceModule,
        class_name: str,
        field_name: str,
        statement: ast.AnnAssign,
        cache_names: set[str],
    ) -> Iterator[Finding]:
        for annotation_node in ast.walk(statement.annotation):
            named = None
            if isinstance(annotation_node, ast.Name):
                named = annotation_node.id
            elif isinstance(annotation_node, ast.Attribute):
                named = annotation_node.attr
            if named in _UNPICKLABLE_ANNOTATIONS:
                yield Finding(
                    self.name,
                    module.display_path,
                    statement.lineno,
                    f"task field {class_name}.{field_name} is annotated with "
                    f"{named}; task fields must hold picklable plain data",
                )
                break
        if statement.value is not None:
            for default_node in ast.walk(statement.value):
                if isinstance(default_node, ast.Lambda):
                    yield Finding(
                        self.name,
                        module.display_path,
                        statement.lineno,
                        f"task field {class_name}.{field_name} defaults to a lambda; "
                        "closures do not pickle",
                    )
                    break
                if isinstance(default_node, ast.Name) and default_node.id in cache_names:
                    yield Finding(
                        self.name,
                        module.display_path,
                        statement.lineno,
                        f"task field {class_name}.{field_name} default references the "
                        f"module-level cache {default_node.id!r}; workers must rebuild "
                        "caches locally, not ship them",
                    )
                    break


# ----------------------------------------------------------------------
# engine-threading
# ----------------------------------------------------------------------
#: Per-backend driver entry points: only the dispatching layer under
#: ``engine/`` may name these; everything above goes through the mode-aware
#: public API (``evaluate_*``, ``satisfying_assignments``, ...).
_BACKEND_DRIVERS = frozenset(
    {
        "compiled_evaluate_set", "compiled_evaluate_bag_set", "compiled_evaluate_aggregate",
        "compiled_satisfying_assignments", "compiled_symbolic_assignments",
        "compiled_symbolic_groups", "compiled_symbolic_multiset",
        "naive_satisfying_assignments", "execute_plan", "execute_plan_vector",
        "execute_symbolic_plan",
    }
)


class EngineThreadingChecker(Checker):
    name = "engine-threading"
    description = (
        "evaluation code outside engine/ must not call backend drivers directly "
        "and must not hard-code an engine mode string; thread engine= or read "
        "active_engine()"
    )

    #: Module relpath prefix that owns the backend drivers.
    engine_prefix = "engine/"
    #: The one module allowed to name mode strings (it defines them).
    modes_module = "engine/modes.py"
    #: The multi-tenant service layer: *no* call of ``set_engine`` /
    #: ``engine_scope`` at all (literal or threaded) — the engine mode is
    #: process-global, so flipping it from a request handler leaks one
    #: tenant's mode into every other tenant's decisions.  Service code
    #: pins the mode per workspace (``Workspace(engine=...)``) instead.
    service_prefix = "service/"

    def check_module(self, module: SourceModule) -> Iterable[Finding]:
        findings: list[Finding] = []
        inside_engine = module.relpath.startswith(self.engine_prefix)
        inside_service = module.relpath.startswith(self.service_prefix)
        for node in ast.walk(module.tree):
            if (
                inside_service
                and isinstance(node, ast.Call)
                and _call_name(node.func) in ("set_engine", "engine_scope")
            ):
                findings.append(
                    Finding(
                        self.name,
                        module.display_path,
                        node.lineno,
                        f"{_call_name(node.func)}() mutates the process-global "
                        "engine mode from the multi-tenant service layer; pin "
                        "the mode per tenant with Workspace(engine=...)",
                    )
                )
                continue
            if not inside_engine:
                if isinstance(node, ast.ImportFrom):
                    for alias in node.names:
                        if alias.name in _BACKEND_DRIVERS:
                            findings.append(self._driver_finding(module, node.lineno, alias.name))
                elif isinstance(node, ast.Name) and node.id in _BACKEND_DRIVERS:
                    findings.append(self._driver_finding(module, node.lineno, node.id))
                elif isinstance(node, ast.Attribute) and node.attr in _BACKEND_DRIVERS:
                    findings.append(self._driver_finding(module, node.lineno, node.attr))
            if (
                isinstance(node, ast.Call)
                and _call_name(node.func) in ("set_engine", "engine_scope")
                and module.relpath != self.modes_module
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                findings.append(
                    Finding(
                        self.name,
                        module.display_path,
                        node.lineno,
                        f"{_call_name(node.func)}({node.args[0].value!r}) hard-codes an "
                        "engine backend; thread the mode from the caller (engine= "
                        "parameter, task field) or read active_engine()",
                    )
                )
        return findings

    def _driver_finding(self, module: SourceModule, line: int, symbol: str) -> Finding:
        return Finding(
            self.name,
            module.display_path,
            line,
            f"{symbol} is a per-backend driver; outside engine/ evaluation must "
            "go through the mode-aware entry points so engine= stays threaded",
        )


#: Every checker the default run executes, in reporting order.
ALL_CHECKERS: tuple[Checker, ...] = (
    CacheDisciplineChecker(),
    SeededRandomnessChecker(),
    VerdictSoundnessChecker(),
    ForkSafetyChecker(),
    EngineThreadingChecker(),
)
