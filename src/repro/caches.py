"""The module-level cache registry: every mutable module-level cache, named.

The engine accumulated per-module caches PR by PR — the kernel cache, the
columnar store cache, the shared symbolic Γ tables, the parallel worker's
setup memo — each reset by convention from one of two public entry points
(:func:`repro.engine.clear_evaluation_caches`,
:func:`repro.engine.clear_symbolic_caches`).  Nothing *enforced* the
convention: a new cache that forgot to join a clear function leaked silently,
which a long-lived multi-tenant process turns from a flaky test into a
cross-tenant cache-poisoning bug.

This module makes the convention a checked contract, in two halves:

* **Runtime**: a module that owns a cache calls :func:`register_cache` at
  import time, naming the cache (``"<relpath>:<NAME>"`` relative to the
  ``repro`` package), the public clear entry that owns its reset, and —
  unless the clear entry already drops it by hand — a callable that performs
  the drop.  The owning clear entry calls :func:`run_registered_clears` so
  registered caches reset without that entry naming them one by one.
* **Static**: the ``cache-discipline`` checker of :mod:`repro.analysis`
  discovers every module-level mutable container in the package and requires
  each to be registered here (it reads the ``register_cache`` call sites
  syntactically) or listed in :data:`EXEMPT_CACHES` with a reason.

Keys are ``"engine/compile.py:_KERNEL_CACHE"``-style: the module path
relative to the package root, a colon, the module-level name.  A
registration must appear *in the module the key names* — the checker
enforces that too, so a cache's reset wiring always sits next to its
definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class CacheRegistration:
    """One registered module-level cache."""

    #: ``"<relpath>:<NAME>"``, e.g. ``"engine/compile.py:_KERNEL_CACHE"``.
    key: str
    #: The public clear entry that owns the reset (``"clear_evaluation_caches"``
    #: or ``"clear_symbolic_caches"``).
    clearer: str
    #: The drop, invoked by :func:`run_registered_clears`; ``None`` when the
    #: owning clear entry drops the cache by hand (kept for caches whose reset
    #: also resets counters or sibling ``lru_cache``\ s in one place).
    clear: Optional[Callable[[], None]] = None


# The registry itself and the exemption manifest are module-level mutable
# containers; both are listed in EXEMPT_CACHES below (they live for the
# process and are append-only after import).
_REGISTRATIONS: dict[str, CacheRegistration] = {}

#: Module-level mutable containers that are *not* caches: constant lookup
#: tables and append-only registries populated at import time.  The
#: cache-discipline checker requires every entry to carry a non-empty reason
#: and to still exist in the source it names.
EXEMPT_CACHES: dict[str, str] = {
    "caches.py:_REGISTRATIONS": "the cache registry itself; append-only at import time",
    "caches.py:EXEMPT_CACHES": "the exemption manifest itself; constant after import",
    "aggregates/functions.py:_REGISTRY": "aggregation-function registry; append-only at import time",
    "aggregates/properties.py:PAPER_TABLE1": "constant reproduction of the paper's Table 1",
    "core/equivalence.py:PAPER_TABLE2": "constant reproduction of the paper's Table 2",
    "datalog/atoms.py:_FLIPPED": "constant comparison-operator flip table",
    "datalog/atoms.py:_NEGATED": "constant comparison-operator negation table",
    "datalog/atoms.py:_BY_SYMBOL": "constant symbol-to-operator parse table",
    "datalog/parser.py:_NEGATION_WORDS": "constant parser keyword set",
    "engine/compile.py:_OP_TEXT": "constant operator-to-Python-source table",
    "engine/compile.py:_CONST_COMPARE": "constant bounds-comparison codegen table",
    "rewriting/unfold.py:THREADED_PAIRINGS": "constant aggregate-threading rule table",
    "service/app.py:_STATUS_TEXT": "constant HTTP status-to-reason-phrase table",
    "sql/parser.py:_AGGREGATE_KEYWORDS": "constant SQL aggregate keyword set",
    "workloads/scenarios.py:WAREHOUSE_SCHEMA": "constant scenario schema description",
}


def register_cache(
    key: str, clearer: str, clear: Optional[Callable[[], None]] = None
) -> CacheRegistration:
    """Register a module-level cache under the clear entry that resets it.

    Re-registration with the same key replaces the entry (modules re-imported
    under ``importlib.reload`` re-run their registrations); the static checker
    separately guarantees one registration site per cache.
    """
    registration = CacheRegistration(key, clearer, clear)
    _REGISTRATIONS[key] = registration
    return registration


def run_registered_clears(clearer: str) -> None:
    """Invoke the ``clear`` callable of every cache registered under
    ``clearer`` (deterministic: registration order)."""
    for registration in list(_REGISTRATIONS.values()):
        if registration.clearer == clearer and registration.clear is not None:
            registration.clear()


def registered_caches() -> tuple[CacheRegistration, ...]:
    """Every registration, in registration order."""
    return tuple(_REGISTRATIONS.values())


def registered_cache_keys() -> frozenset[str]:
    """The keys of every registered cache."""
    return frozenset(_REGISTRATIONS)
