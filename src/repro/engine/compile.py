"""Per-plan compiled kernels: plans code-generated into Python closures.

The planned engine of PR 1 interprets each :class:`~repro.engine.planner.Plan`
step by step, carrying dict-shaped partial assignments.  That interpretation
overhead — step dispatch, dict copying, per-tuple term resolution — is paid
again for *every* database a plan is executed over, and a bounded-equivalence
sweep executes the same few plans over thousands of ``(subset, ordering)``
pairs.

This module pays the cost once: :func:`get_kernel` turns a plan (plus the
output terms the caller wants projected) into a specialized Python function by
generating its source — one nested ``for`` loop per atom join, index probes on
the bound columns, comparisons emitted as plain integer comparisons on
interned ids — and ``exec``-ing it.  The kernel has no per-tuple
interpretation left: no step objects, no dicts, no term dispatch.  Its
contract is

    ``kernel(store) -> list[tuple[int, ...]]``

one id row per satisfying assignment (multiplicities preserved), over any
:class:`~repro.engine.columnar.ColumnarStore` — concrete or symbolic — since
both intern into order-isomorphic integer ids.  Store-dependent values
(constant bounds, indexes, negation sets, constant-vs-constant guards) are
fetched in a per-call prologue, so one compiled kernel serves every database
the plan is ever executed over; kernels are cached by
``(plan.steps, plan.resolvable, output_terms)``, deliberately *excluding* the
plan's size-statistics signature, so databases that merely differ in relation
sizes share the kernel too.

The drivers at the bottom are the compiled engine's entry points, mirroring
the public evaluation API: concrete set / bag-set / aggregate evaluation and
Γ(q, D), plus the symbolic Γ / groups / answer-multiset triple.  They decode
id rows back to values (or block representatives) only at the projection
boundary — group keys once per distinct group, never per tuple — which is
where the engine's end-to-end speedup over the interpreter comes from.  Each
driver routes through :func:`repro.engine.columnar.execute_plan_vector` first
when the store's relations are large enough to clear the NumPy threshold.
"""

from __future__ import annotations

import itertools
import os
from typing import Callable, Iterable

from ..caches import register_cache
from ..datalog.atoms import ComparisonOp
from ..datalog.conditions import Condition
from ..datalog.queries import Query
from ..datalog.terms import Constant, Term, Variable
from ..errors import EvaluationError
from ..obs import REGISTRY as _OBS
from ..obs import span as _span
from .planner import AtomStep, BindStep, CompareStep, NegationStep, Plan, plan_condition
from .columnar import ColumnarStore, execute_plan_vector, store_for

#: Python source operators per comparison op (``EQ.symbol`` is ``"="``, which
#: is not valid Python — hence an explicit table rather than ``op.symbol``).
_OP_TEXT = {
    ComparisonOp.LT: "<",
    ComparisonOp.LE: "<=",
    ComparisonOp.GT: ">",
    ComparisonOp.GE: ">=",
    ComparisonOp.EQ: "==",
    ComparisonOp.NE: "!=",
}

#: Variable-vs-constant comparisons compile against the constant's
#: ``(lo, hi, eq)`` bounds; this table picks the bound and the id comparison
#: (correct even for constants absent from the carrier, where ``eq`` is -1).
_CONST_COMPARE = {
    ComparisonOp.LT: ("<", "_lo"),
    ComparisonOp.LE: ("<", "_hi"),
    ComparisonOp.GT: (">=", "_hi"),
    ComparisonOp.GE: (">=", "_lo"),
    ComparisonOp.EQ: ("==", "_eq"),
    ComparisonOp.NE: ("!=", "_eq"),
}


def kernel_verification_enabled() -> bool:
    """Whether ``REPRO_VERIFY_KERNELS`` asks for pre-``exec`` verification of
    every generated kernel.  Read per compile (compiles are rare and cached),
    so tests can toggle the variable without reloading the module."""
    return os.environ.get("REPRO_VERIFY_KERNELS", "").strip() not in ("", "0")


def _empty_kernel(store: ColumnarStore) -> list:
    return []


def _compile_kernel(plan: Plan, output_terms: tuple[Term, ...]) -> Callable:
    """Generate and ``exec`` the specialized function for one plan."""
    if not plan.resolvable:
        return _empty_kernel

    namespace: dict[str, object] = {}
    prologue: list[str] = []
    body: list[str] = []
    depth = 0

    constants: dict[Constant, int] = {}
    decoded: set[int] = set()
    #: Variables defined by equating them with a constant: every use compiles
    #: as a use of the constant itself (its value may lie outside the carrier,
    #: so it cannot be given an id without breaking the order isomorphism).
    const_slot: dict[Variable, Constant] = {}
    local_of: dict[Variable, str] = {}
    op_count = 0

    def intern(constant: Constant) -> int:
        index = constants.get(constant)
        if index is None:
            index = len(constants)
            constants[constant] = index
            namespace[f"_c{index}"] = constant
            prologue.append(f"    _lo{index}, _hi{index}, _eq{index} = store.bounds(_c{index})")
        return index

    def decode(constant: Constant) -> str:
        index = intern(constant)
        if index not in decoded:
            decoded.add(index)
            prologue.append(f"    _d{index} = store.decode_id(_c{index})")
        return f"_d{index}"

    def as_constant(term: Term):
        if isinstance(term, Constant):
            return term
        return const_slot.get(term)

    def eq_expr(term: Term) -> str:
        """The id expression of a bound term, for probe keys and row checks."""
        constant = as_constant(term)
        if constant is not None:
            return f"_eq{intern(constant)}"
        return local_of[term]

    def emit_guard(fail_condition: str) -> None:
        escape = "return out" if depth == 0 else "continue"
        body.append(f"{'    ' * (depth + 1)}if {fail_condition}: {escape}")

    def tuple_expr(parts: list[str]) -> str:
        if not parts:
            return "()"
        return "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"

    for step_index, step in enumerate(plan.steps):
        pad = "    " * (depth + 1)
        if isinstance(step, AtomStep):
            atom = step.atom
            if step.bound_columns:
                prologue.append(
                    f"    _idx{step_index} = store.index("
                    f"{atom.predicate!r}, {step.bound_columns!r}, {atom.arity})"
                )
                keys = [eq_expr(atom.arguments[column]) for column in step.bound_columns]
                key_expr = keys[0] if len(keys) == 1 else tuple_expr(keys)
                body.append(
                    f"{pad}for _row{step_index} in _idx{step_index}.get({key_expr}, ()):"
                )
            else:
                prologue.append(
                    f"    _rows{step_index} = store.rows({atom.predicate!r}, {atom.arity})"
                )
                body.append(f"{pad}for _row{step_index} in _rows{step_index}:")
            depth += 1
            pad = "    " * (depth + 1)
            bound_positions = set(step.bound_columns)
            for position, argument in enumerate(atom.arguments):
                if position in bound_positions:
                    continue
                # Unbound positions are variables: fresh, or a same-atom
                # repeat of a variable bound at an earlier position.
                if argument in local_of:
                    body.append(
                        f"{pad}if _row{step_index}[{position}] != {local_of[argument]}: continue"
                    )
                else:
                    name = f"_v{len(local_of)}"
                    local_of[argument] = name
                    body.append(f"{pad}{name} = _row{step_index}[{position}]")
        elif isinstance(step, BindStep):
            # Binds emit no code: constant sources route later uses to the
            # constant's bounds, variable sources alias the source's local.
            source = step.source
            source_constant = as_constant(source)
            if source_constant is not None:
                const_slot[step.variable] = source_constant
            else:
                local_of[step.variable] = local_of[source]
        elif isinstance(step, CompareStep):
            comparison = step.comparison
            op = comparison.op
            left, right = comparison.left, comparison.right
            left_constant = as_constant(left)
            right_constant = as_constant(right)
            if left_constant is not None and right_constant is not None:
                # Store-dependent (symbolic ids follow the ordering), but
                # loop-independent: resolve once per call, in the prologue.
                first, second = intern(left_constant), intern(right_constant)
                namespace[f"_op{op_count}"] = op
                prologue.append(
                    f"    if not store.const_holds(_c{first}, _op{op_count}, _c{second}):"
                    " return out"
                )
                op_count += 1
            elif left_constant is None and right_constant is None:
                emit_guard(
                    f"not ({local_of[left]} {_OP_TEXT[op]} {local_of[right]})"
                )
            else:
                if left_constant is not None:
                    op = op.flip()
                    variable, constant = right, left_constant
                else:
                    variable, constant = left, right_constant
                symbol, bound = _CONST_COMPARE[op]
                emit_guard(
                    f"not ({local_of[variable]} {symbol} {bound}{intern(constant)})"
                )
        else:  # NegationStep
            atom = step.atom
            prologue.append(f"    _neg{step_index} = store.row_set({atom.predicate!r})")
            parts = [eq_expr(argument) for argument in atom.arguments]
            emit_guard(f"{tuple_expr(parts)} in _neg{step_index}")

    output_parts: list[str] = []
    for term in output_terms:
        constant = as_constant(term)
        if constant is not None:
            output_parts.append(decode(constant))
        elif term in local_of:
            output_parts.append(local_of[term])
        else:
            raise EvaluationError(f"unbound term {term} in compiled projection")
    body.append(f"{'    ' * (depth + 1)}_append({tuple_expr(output_parts)})")

    source = "\n".join(
        ["def _kernel(store):", "    out = []", "    _append = out.append"]
        + prologue
        + body
        + ["    return out"]
    )
    if kernel_verification_enabled():
        # Imported lazily: the verifier only loads when the gate is on, so
        # the default path never pays the analysis-package import.
        from ..analysis.kernelcheck import verify_kernel_source

        verify_kernel_source(source, namespace)
        _OBS.inc("engine.kernel.verified")
    exec(compile(source, "<plan-kernel>", "exec"), namespace)  # noqa: S102
    kernel = namespace["_kernel"]
    kernel._source = source  # debugging / tests
    return kernel


# ----------------------------------------------------------------------
# The kernel cache
# ----------------------------------------------------------------------
_KERNEL_CACHE: dict = {}
_KERNEL_CACHE_LIMIT = 4096


def get_kernel(plan: Plan, output_terms: tuple[Term, ...]) -> Callable:
    """The compiled kernel for ``(plan, output_terms)``, compiled at most once.

    The key excludes the plan's statistics signature on purpose: two databases
    whose sizes produce the same step sequence share one kernel, and the
    thousands of ``S_L`` a sweep evaluates typically collapse onto a handful
    of kernels per query.
    """
    key = (plan.steps, plan.resolvable, output_terms)
    kernel = _KERNEL_CACHE.get(key)
    if kernel is None:
        _OBS.inc("engine.kernel.compiles")
        with _span("kernel.compile", steps=len(plan.steps)):
            kernel = _compile_kernel(plan, output_terms)
        if len(_KERNEL_CACHE) >= _KERNEL_CACHE_LIMIT:
            for stale in list(itertools.islice(iter(_KERNEL_CACHE), _KERNEL_CACHE_LIMIT // 4)):
                del _KERNEL_CACHE[stale]
        _KERNEL_CACHE[key] = kernel
    else:
        _OBS.inc("engine.kernel.hits")
    return kernel


def clear_kernel_cache() -> None:
    """Drop every compiled kernel and reset the compile/hit (and, under
    ``REPRO_VERIFY_KERNELS``, verified) counters."""
    _KERNEL_CACHE.clear()
    _OBS.reset("engine.kernel.")


register_cache("engine/compile.py:_KERNEL_CACHE", "clear_evaluation_caches", clear_kernel_cache)


def kernel_cache_stats() -> dict[str, int]:
    """``{"entries", "compiles", "hits"}`` — the leak test asserts that a
    steady-state workload stops growing ``compiles``.  The counters live in
    the metrics registry (``engine.kernel.*``); this view keeps the
    historical shape."""
    return {
        "entries": len(_KERNEL_CACHE),
        "compiles": _OBS.get("engine.kernel.compiles"),
        "hits": _OBS.get("engine.kernel.hits"),
    }


# ----------------------------------------------------------------------
# Shared row production
# ----------------------------------------------------------------------
def condition_rows(
    condition: Condition, store: ColumnarStore, output_terms: tuple[Term, ...]
) -> list[tuple[int, ...]]:
    """All id rows (one per satisfying assignment, projected onto
    ``output_terms``) of one condition over one store, via the vectorized
    executor when profitable, the compiled loop kernel otherwise."""
    plan = plan_condition(condition, store.size, store.distinct)
    if store.vector_candidate(plan):
        rows = execute_plan_vector(plan, store, output_terms)
        if rows is not None:
            _OBS.inc("engine.dispatch.vector")
            return rows
        _OBS.inc("engine.dispatch.vector_fallback")
    _OBS.inc("engine.dispatch.loop")
    with _span("kernel.execute"):
        return get_kernel(plan, output_terms)(store)


def _decoded_rows(
    query: Query, store: ColumnarStore, output_terms: tuple[Term, ...]
) -> Iterable[tuple]:
    decode = store.decode_values
    for disjunct in query.disjuncts:
        for row in condition_rows(disjunct, store, output_terms):
            yield tuple(decode[identifier] for identifier in row)


# ----------------------------------------------------------------------
# Concrete drivers
# ----------------------------------------------------------------------
def compiled_evaluate_set(query: Query, database) -> set:  # noqa: ANN001
    store = store_for(database)
    return set(_decoded_rows(query, store, tuple(query.head_terms)))


def compiled_evaluate_bag_set(query: Query, database):  # noqa: ANN001
    from collections import Counter

    store = store_for(database)
    return Counter(_decoded_rows(query, store, tuple(query.head_terms)))


def compiled_evaluate_aggregate(query: Query, database, function):  # noqa: ANN001
    store = store_for(database)
    decode = store.decode_values
    key_width = len(query.head_terms)
    output_terms = tuple(query.head_terms) + tuple(query.aggregation_variables())
    groups: dict[tuple[int, ...], list[tuple]] = {}
    for disjunct in query.disjuncts:
        for row in condition_rows(disjunct, store, output_terms):
            groups.setdefault(row[:key_width], []).append(
                tuple(decode[identifier] for identifier in row[key_width:])
            )
    return {
        tuple(decode[identifier] for identifier in key): function.apply(bag)
        for key, bag in groups.items()
    }


def compiled_satisfying_assignments(query: Query, database) -> list:  # noqa: ANN001
    """Γ(q, D) through the compiled kernels: full labeled assignments, for
    callers (grouping, witness inspection) that need every variable."""
    from .evaluator import LabeledAssignment

    store = store_for(database)
    decode = store.decode_values
    results: list = []
    for index, disjunct in enumerate(query.disjuncts):
        variables = tuple(sorted(disjunct.variables(), key=lambda v: v.name))
        for row in condition_rows(disjunct, store, variables):
            mapping = tuple(
                (variable, decode[identifier])
                for variable, identifier in zip(variables, row)
            )
            results.append(LabeledAssignment(mapping, index))
    return results


# ----------------------------------------------------------------------
# Symbolic drivers
# ----------------------------------------------------------------------
def compiled_symbolic_assignments(query: Query, database) -> tuple:  # noqa: ANN001
    """Symbolic Γ(q, S_L): the same kernels, decoding ids to block
    representatives instead of numeric values."""
    from .symbolic import SymbolicAssignment

    store = store_for(database)
    decode = store.decode_values
    results: list = []
    for index, disjunct in enumerate(query.disjuncts):
        variables = tuple(sorted(disjunct.variables(), key=lambda v: v.name))
        for row in condition_rows(disjunct, store, variables):
            mapping = tuple(
                (variable, decode[identifier])
                for variable, identifier in zip(variables, row)
            )
            results.append(SymbolicAssignment(mapping, index))
    return tuple(results)


def compiled_symbolic_groups(query: Query, database) -> dict:  # noqa: ANN001
    store = store_for(database)
    decode = store.decode_values
    key_width = len(query.head_terms)
    output_terms = tuple(query.head_terms) + tuple(query.aggregation_variables())
    id_groups: dict[tuple[int, ...], list[tuple]] = {}
    for disjunct in query.disjuncts:
        for row in condition_rows(disjunct, store, output_terms):
            id_groups.setdefault(row[:key_width], []).append(
                tuple(decode[identifier] for identifier in row[key_width:])
            )
    return {
        tuple(decode[identifier] for identifier in key): bag
        for key, bag in id_groups.items()
    }


def compiled_symbolic_multiset(query: Query, database) -> dict:  # noqa: ANN001
    store = store_for(database)
    decode = store.decode_values
    head_terms = tuple(query.head_terms)
    id_counts: dict[tuple[int, ...], int] = {}
    for disjunct in query.disjuncts:
        for row in condition_rows(disjunct, store, head_terms):
            id_counts[row] = id_counts.get(row, 0) + 1
    return {
        tuple(decode[identifier] for identifier in key): count
        for key, count in id_counts.items()
    }
