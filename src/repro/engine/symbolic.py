"""Symbolic evaluation over databases of the form S_L (Theorem 4.8).

The bounded-equivalence procedure does not enumerate concrete databases
(there are infinitely many); instead it enumerates subsets ``S`` of the finite
atom universe BASE together with a complete ordering ``L`` of the term set
``T``, and evaluates the queries *symbolically* over the pair ``S_L``:
variables of the query are mapped to terms of ``T`` rather than to values,
comparisons are decided by ``L``, and groups collect *bags of term tuples*
whose equality is then settled by the ordered-identity deciders.

Terms that ``L`` makes equal are identified by mapping every term to the
representative of its block, so a subset ``S`` paired with an ordering that
equates terms behaves exactly like its instantiation with a non-injective
assignment.

The engine executes the same plans as the concrete engine (see
:mod:`repro.engine.planner`): positive atoms are matched by probing hash
indexes of the canonical relations on the already-bound columns, and
comparisons — decided by the ordering ``L`` rather than by numeric values —
and negated atoms filter as soon as their variables are bound.  Symbolic
``Γ(q, S_L)`` is memoized per ``(query, database)`` pair, so the thousands of
evaluations performed by one bounded-equivalence run (and across runs sharing
subsets, e.g. an equivalence matrix over a catalog) are each paid for once.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property, lru_cache
from typing import Iterator, Mapping, Optional

from ..datalog.atoms import RelationalAtom
from ..datalog.conditions import Condition
from ..datalog.database import Database, build_column_index
from ..datalog.queries import Query
from ..datalog.terms import Constant, Term, Variable
from ..errors import EvaluationError
from ..orderings.complete_orderings import CompleteOrdering
from .planner import AtomStep, BindStep, CompareStep, NegationStep, Plan, plan_condition


@dataclass(frozen=True)
class SymbolicDatabase:
    """A subset of BASE together with a complete ordering of the term set."""

    atoms: frozenset[RelationalAtom]
    ordering: CompleteOrdering

    def __post_init__(self) -> None:
        object.__setattr__(self, "atoms", frozenset(self.atoms))
        for atom in self.atoms:
            if atom.negated:
                raise EvaluationError("symbolic databases contain positive atoms only")

    def canonical(self, term: Term) -> Term:
        """The representative of the term's block under the ordering."""
        return self.ordering.representative(self.ordering.block_index(term))

    @cached_property
    def canonical_relations(self) -> dict[str, frozenset[tuple[Term, ...]]]:
        """The atoms of the database with every term replaced by its block
        representative, grouped by predicate."""
        relations: dict[str, set[tuple[Term, ...]]] = {}
        for atom in self.atoms:
            row = tuple(self.canonical(argument) for argument in atom.arguments)
            relations.setdefault(atom.predicate, set()).add(row)
        return {predicate: frozenset(rows) for predicate, rows in relations.items()}

    @cached_property
    def carrier_terms(self) -> frozenset[Term]:
        """The block representatives occurring in the database — the symbolic
        counterpart of the carrier of the instantiated database."""
        carrier: set[Term] = set()
        for rows in self.canonical_relations.values():
            for row in rows:
                carrier.update(row)
        return frozenset(carrier)

    @cached_property
    def _indexes(self) -> dict[tuple[str, tuple[int, ...]], dict[tuple, tuple[tuple, ...]]]:
        return {}

    def relation(self, predicate: str) -> frozenset[tuple[Term, ...]]:
        return self.canonical_relations.get(predicate, frozenset())

    def contains(self, predicate: str, row: tuple[Term, ...]) -> bool:
        return row in self.canonical_relations.get(predicate, frozenset())

    def index(
        self, predicate: str, columns: tuple[int, ...]
    ) -> Mapping[tuple, tuple[tuple, ...]]:
        """A hash index of the canonical relation on the given columns, built
        lazily and cached (the database is immutable, so it never goes stale).
        Keys and rows hold block representatives, mirroring
        :meth:`repro.datalog.database.Database.index`."""
        key = (predicate, columns)
        cached = self._indexes.get(key)
        if cached is None:
            cached = build_column_index(
                self.canonical_relations.get(predicate, frozenset()), columns
            )
            self._indexes[key] = cached
        return cached

    def instantiate(self) -> Database:
        """A concrete database δ(S) for the canonical satisfying assignment δ
        of the ordering."""
        assignment = self.ordering.instantiate()
        facts = []
        for atom in self.atoms:
            values = tuple(
                argument.value if isinstance(argument, Constant) else assignment[argument]
                for argument in atom.arguments
            )
            facts.append((atom.predicate, values))
        return Database(facts)

    def __len__(self) -> int:
        return len(self.atoms)


@dataclass(frozen=True)
class SymbolicAssignment:
    """An assignment of query variables to block representatives, labeled with
    the disjunct it satisfies."""

    mapping: tuple[tuple[Variable, Term], ...]
    disjunct_index: int

    def __post_init__(self) -> None:
        # Dict-backed lookup for term_of; equality and hashing still use the
        # canonical sorted tuple.
        object.__setattr__(self, "_lookup", dict(self.mapping))

    @classmethod
    def from_dict(cls, mapping: Mapping[Variable, Term], disjunct_index: int):
        ordered = tuple(sorted(mapping.items(), key=lambda item: item[0].name))
        return cls(ordered, disjunct_index)

    def as_dict(self) -> dict[Variable, Term]:
        return dict(self.mapping)

    def term_of(self, term: Term, database: SymbolicDatabase) -> Term:
        if isinstance(term, Constant):
            return database.canonical(term)
        try:
            return self._lookup[term]  # type: ignore[attr-defined]
        except KeyError:
            raise EvaluationError(f"symbolic assignment does not bind {term}") from None

    def terms_of(self, terms, database: SymbolicDatabase) -> tuple[Term, ...]:
        return tuple(self.term_of(term, database) for term in terms)


def symbolic_satisfying_assignments(
    query: Query, database: SymbolicDatabase
) -> list[SymbolicAssignment]:
    """The symbolic counterpart of Γ(q, S_L)."""
    return list(_symbolic_assignments_cached(query, database))


@lru_cache(maxsize=16384)
def _symbolic_assignments_cached(
    query: Query, database: SymbolicDatabase
) -> tuple[SymbolicAssignment, ...]:
    results: list[SymbolicAssignment] = []
    for index, disjunct in enumerate(query.disjuncts):
        plan = plan_condition(disjunct, lambda predicate: len(database.relation(predicate)))
        for mapping in execute_symbolic_plan(plan, database):
            results.append(SymbolicAssignment.from_dict(mapping, index))
    return tuple(results)


def clear_symbolic_caches() -> None:
    """Drop the memoized symbolic Γ(q, S_L) results."""
    _symbolic_assignments_cached.cache_clear()


# ----------------------------------------------------------------------
# Plan execution (symbolic engine)
# ----------------------------------------------------------------------
def execute_symbolic_plan(
    plan: Plan, database: SymbolicDatabase
) -> Iterator[dict[Variable, Term]]:
    """Enumerate the symbolic assignments satisfying the plan's condition.

    Identical in structure to the concrete executor, except that terms are
    block representatives (constants canonicalize through the ordering) and
    comparisons are decided by the ordering ``L`` instead of numerically.
    """
    if not plan.resolvable:
        return
    ordering = database.ordering
    partials: list[dict[Variable, Term]] = [{}]
    for step in plan.steps:
        if isinstance(step, AtomStep):
            partials = _join_symbolic_atom(step, database, partials)
        elif isinstance(step, BindStep):
            source = step.source
            if isinstance(source, Constant):
                value = database.canonical(source)
                for partial in partials:
                    partial[step.variable] = value
            else:
                for partial in partials:
                    partial[step.variable] = partial[source]
        elif isinstance(step, CompareStep):
            comparison = step.comparison
            partials = [
                partial
                for partial in partials
                if ordering.satisfies(
                    type(comparison)(
                        _require_symbolic(comparison.left, partial, database),
                        comparison.op,
                        _require_symbolic(comparison.right, partial, database),
                    )
                )
            ]
        else:  # NegationStep
            atom = step.atom
            partials = [
                partial
                for partial in partials
                if not database.contains(
                    atom.predicate,
                    tuple(
                        _require_symbolic(argument, partial, database)
                        for argument in atom.arguments
                    ),
                )
            ]
        if not partials:
            return
    yield from partials


def _join_symbolic_atom(
    step: AtomStep, database: SymbolicDatabase, partials: list[dict[Variable, Term]]
) -> list[dict[Variable, Term]]:
    atom = step.atom
    extended: list[dict[Variable, Term]] = []
    if step.bound_columns:
        index = database.index(atom.predicate, step.bound_columns)
        arguments = [atom.arguments[column] for column in step.bound_columns]
        for partial in partials:
            key = tuple(_require_symbolic(argument, partial, database) for argument in arguments)
            for row in index.get(key, ()):
                match = _match_symbolic_atom(atom, row, partial, database)
                if match is not None:
                    extended.append(match)
    else:
        relation = database.relation(atom.predicate)
        for partial in partials:
            for row in relation:
                match = _match_symbolic_atom(atom, row, partial, database)
                if match is not None:
                    extended.append(match)
    return extended


def _match_symbolic_atom(
    atom: RelationalAtom,
    row: tuple[Term, ...],
    partial: Mapping[Variable, Term],
    database: SymbolicDatabase,
) -> Optional[dict[Variable, Term]]:
    if len(row) != atom.arity:
        return None
    extended = dict(partial)
    for argument, value in zip(atom.arguments, row):
        if isinstance(argument, Constant):
            if database.canonical(argument) != value:
                return None
        else:
            bound = extended.get(argument)
            if bound is None:
                extended[argument] = value
            elif bound != value:
                return None
    return extended


def _maybe_symbolic(
    term: Term, assignment: Mapping[Variable, Term], database: SymbolicDatabase
) -> Optional[Term]:
    if isinstance(term, Constant):
        return database.canonical(term)
    return assignment.get(term)


def _require_symbolic(
    term: Term, assignment: Mapping[Variable, Term], database: SymbolicDatabase
) -> Term:
    value = _maybe_symbolic(term, assignment, database)
    if value is None:
        raise EvaluationError(f"unbound term {term} during symbolic evaluation")
    return value


# ----------------------------------------------------------------------
# Groups and result signatures
# ----------------------------------------------------------------------
def symbolic_groups(
    query: Query, database: SymbolicDatabase
) -> dict[tuple[Term, ...], list[tuple[Term, ...]]]:
    """For every symbolic group key d̄ (a tuple of block representatives), the
    bag of aggregation-variable tuples collected for that group."""
    aggregation_variables = query.aggregation_variables()
    groups: dict[tuple[Term, ...], list[tuple[Term, ...]]] = {}
    for assignment in symbolic_satisfying_assignments(query, database):
        key = assignment.terms_of(query.head_terms, database)
        bag_element = assignment.terms_of(aggregation_variables, database)
        groups.setdefault(key, []).append(bag_element)
    return groups


def symbolic_answer_multiset(
    query: Query, database: SymbolicDatabase
) -> dict[tuple[Term, ...], int]:
    """For non-aggregate queries: the answer tuples with multiplicities
    (bag-set semantics, used by the bag-set equivalence reduction)."""
    result: dict[tuple[Term, ...], int] = {}
    for assignment in symbolic_satisfying_assignments(query, database):
        key = assignment.terms_of(query.head_terms, database)
        result[key] = result.get(key, 0) + 1
    return result
