"""Symbolic evaluation over databases of the form S_L (Theorem 4.8).

The bounded-equivalence procedure does not enumerate concrete databases
(there are infinitely many); instead it enumerates subsets ``S`` of the finite
atom universe BASE together with a complete ordering ``L`` of the term set
``T``, and evaluates the queries *symbolically* over the pair ``S_L``:
variables of the query are mapped to terms of ``T`` rather than to values,
comparisons are decided by ``L``, and groups collect *bags of term tuples*
whose equality is then settled by the ordered-identity deciders.

Terms that ``L`` makes equal are identified by mapping every term to the
representative of its block, so a subset ``S`` paired with an ordering that
equates terms behaves exactly like its instantiation with a non-injective
assignment.

The engine executes the same plans as the concrete engine (see
:mod:`repro.engine.planner`): positive atoms are matched by probing hash
indexes of the canonical relations on the already-bound columns, and
comparisons — decided by the ordering ``L`` rather than by numeric values —
and negated atoms filter as soon as their variables are bound.  Symbolic
``Γ(q, S_L)`` is memoized per ``(query, database)`` pair, so the thousands of
evaluations performed by one bounded-equivalence run (and across runs sharing
subsets, e.g. an equivalence matrix over a catalog) are each paid for once.

For *comparison-free* queries the memoization is sharper: the satisfying
assignments, groups, and answer multisets depend only on the canonical
relations of the predicates the query mentions (constants canonicalize to
themselves and block representatives ignore block order), so results are
keyed by that *restricted relation signature* instead of the full
``(atoms, ordering)`` pair.  One Γ computation is then shared across every
ordering of a block partition, across subsets that merge to the same
relations, and — with a catalog-wide BASE — across every catalog pair that
mentions the query (the ROADMAP's shared-BASE item).
:func:`catalog_symbolic_groups` is the batched, BASE-sharing entry point that
evaluates a whole catalog over one ``S_L`` through that cache.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import cached_property, lru_cache
from typing import Iterator, Mapping, Optional

from ..caches import register_cache, run_registered_clears
from ..datalog.atoms import RelationalAtom
from ..datalog.conditions import Condition
from ..datalog.database import Database, build_column_index
from ..datalog.queries import Query
from ..datalog.terms import Constant, Term, Variable
from ..errors import EvaluationError
from ..obs import REGISTRY as _OBS
from ..orderings.complete_orderings import CompleteOrdering
from . import compile as _compile
from .modes import ENGINE_COMPILED, active_engine
from .planner import AtomStep, BindStep, CompareStep, NegationStep, Plan, plan_condition


@lru_cache(maxsize=8192)
def _representative_map(ordering: CompleteOrdering) -> dict[Term, Term]:
    """Every term of the ordering mapped to its block representative.

    One bounded-equivalence run pairs each of its (few) orderings with
    thousands of subsets; computing the map once per ordering keeps the
    per-subset canonicalization a plain dict lookup.
    """
    mapping: dict[Term, Term] = {}
    for index, block in enumerate(ordering.blocks):
        representative = ordering.representative(index)
        for term in block:
            mapping[term] = representative
    return mapping


@dataclass(frozen=True)
class SymbolicDatabase:
    """A subset of BASE together with a complete ordering of the term set."""

    atoms: frozenset[RelationalAtom]
    ordering: CompleteOrdering

    def __post_init__(self) -> None:
        object.__setattr__(self, "atoms", frozenset(self.atoms))
        for atom in self.atoms:
            if atom.negated:
                raise EvaluationError("symbolic databases contain positive atoms only")

    def canonical(self, term: Term) -> Term:
        """The representative of the term's block under the ordering."""
        try:
            return _representative_map(self.ordering)[term]
        except KeyError:
            raise KeyError(f"term {term} does not occur in this ordering") from None

    @cached_property
    def canonical_relations(self) -> dict[str, frozenset[tuple[Term, ...]]]:
        """The atoms of the database with every term replaced by its block
        representative, grouped by predicate."""
        representative = _representative_map(self.ordering)
        relations: dict[str, set[tuple[Term, ...]]] = {}
        for atom in self.atoms:
            row = tuple(representative[argument] for argument in atom.arguments)
            relations.setdefault(atom.predicate, set()).add(row)
        return {predicate: frozenset(rows) for predicate, rows in relations.items()}

    @cached_property
    def carrier_terms(self) -> frozenset[Term]:
        """The block representatives occurring in the database — the symbolic
        counterpart of the carrier of the instantiated database."""
        carrier: set[Term] = set()
        for rows in self.canonical_relations.values():
            for row in rows:
                carrier.update(row)
        return frozenset(carrier)

    @cached_property
    def _indexes(self) -> dict[tuple[str, tuple[int, ...]], dict[tuple, tuple[tuple, ...]]]:
        return {}

    @cached_property
    def _signature_memo(self) -> dict[tuple[str, ...], tuple]:
        # Restricted relation signatures by predicate tuple.  One database
        # instance serves every query and pair of a catalog sweep, so the
        # per-(S, L) signatures are built once instead of once per cell.
        return {}

    def relation(self, predicate: str) -> frozenset[tuple[Term, ...]]:
        return self.canonical_relations.get(predicate, frozenset())

    def contains(self, predicate: str, row: tuple[Term, ...]) -> bool:
        return row in self.canonical_relations.get(predicate, frozenset())

    def index(
        self, predicate: str, columns: tuple[int, ...]
    ) -> Mapping[tuple, tuple[tuple, ...]]:
        """A hash index of the canonical relation on the given columns, built
        lazily and cached (the database is immutable, so it never goes stale).
        Keys and rows hold block representatives, mirroring
        :meth:`repro.datalog.database.Database.index`."""
        key = (predicate, columns)
        cached = self._indexes.get(key)
        if cached is None:
            cached = build_column_index(
                self.canonical_relations.get(predicate, frozenset()), columns
            )
            self._indexes[key] = cached
        return cached

    def instantiate(self) -> Database:
        """A concrete database δ(S) for the canonical satisfying assignment δ
        of the ordering."""
        assignment = self.ordering.instantiate()
        facts = []
        for atom in self.atoms:
            values = tuple(
                argument.value if isinstance(argument, Constant) else assignment[argument]
                for argument in atom.arguments
            )
            facts.append((atom.predicate, values))
        return Database(facts)

    def __len__(self) -> int:
        return len(self.atoms)


@dataclass(frozen=True)
class SymbolicAssignment:
    """An assignment of query variables to block representatives, labeled with
    the disjunct it satisfies."""

    mapping: tuple[tuple[Variable, Term], ...]
    disjunct_index: int

    def __post_init__(self) -> None:
        # Dict-backed lookup for term_of; equality and hashing still use the
        # canonical sorted tuple.
        object.__setattr__(self, "_lookup", dict(self.mapping))

    @classmethod
    def from_dict(cls, mapping: Mapping[Variable, Term], disjunct_index: int):
        ordered = tuple(sorted(mapping.items(), key=lambda item: item[0].name))
        return cls(ordered, disjunct_index)

    def as_dict(self) -> dict[Variable, Term]:
        return dict(self.mapping)

    def term_of(self, term: Term, database: SymbolicDatabase) -> Term:
        if isinstance(term, Constant):
            return database.canonical(term)
        try:
            return self._lookup[term]  # type: ignore[attr-defined]
        except KeyError:
            raise EvaluationError(f"symbolic assignment does not bind {term}") from None

    def terms_of(self, terms, database: SymbolicDatabase) -> tuple[Term, ...]:
        return tuple(self.term_of(term, database) for term in terms)


@lru_cache(maxsize=4096)
def query_uses_comparisons(query: Query) -> bool:
    """Whether any disjunct of the query contains a comparison literal.

    Comparison-free queries admit the restricted-relation-signature caches
    below: their symbolic results cannot depend on the block *order* of the
    ordering, only on which terms it equates.
    """
    return any(disjunct.comparisons for disjunct in query.disjuncts)


@lru_cache(maxsize=4096)
def _query_predicates(query: Query) -> tuple[str, ...]:
    return tuple(sorted(query.predicates()))


def _signature_for(database: SymbolicDatabase, predicates: tuple[str, ...]) -> tuple:
    """The canonical relations of the database restricted to a predicate
    tuple, memoized on the database instance."""
    memo = database._signature_memo
    signature = memo.get(predicates)
    if signature is None:
        relations = database.canonical_relations
        empty: frozenset = frozenset()
        signature = tuple(
            (predicate, relations.get(predicate, empty)) for predicate in predicates
        )
        memo[predicates] = signature
    return signature


def relation_signature(query: Query, database: SymbolicDatabase) -> tuple:
    """The canonical relations of the database restricted to the predicates
    the query mentions — the cache key under which comparison-free symbolic
    results are shared across orderings, subsets, and catalog pairs."""
    return _signature_for(database, _query_predicates(query))


#: Whether the shared (relation-signature keyed) Γ caches are active.  The
#: flag exists for ablation benchmarks; production code leaves it on.
_SHARED_GAMMA_ENABLED = True

#: Per-cache entry cap; dicts iterate in insertion order, so overflow evicts
#: the oldest quarter (bounded memory for long-lived processes sweeping many
#: catalogs, without the per-hit bookkeeping of a true LRU).
_SHARED_CACHE_LIMIT = 65536

_ASSIGNMENTS_BY_RELATIONS: dict[tuple, tuple[SymbolicAssignment, ...]] = {}
_GROUPS_BY_RELATIONS: dict[tuple, dict] = {}
_MULTISET_BY_RELATIONS: dict[tuple, dict] = {}
_GROUP_COMPARISON_BY_RELATIONS: dict[tuple, "GroupComparison"] = {}
_ANSWER_COMPARISON_BY_RELATIONS: dict[tuple, bool] = {}
_GROUP_INDEX_BY_RELATIONS: dict[tuple, dict] = {}
_GROUP_INDEX_INTERN: dict[frozenset, dict] = {}

# Each shared table is registered under clear_symbolic_caches, which drops
# them together with the lru-backed memos and the Γ counters below.
register_cache("engine/symbolic.py:_ASSIGNMENTS_BY_RELATIONS", "clear_symbolic_caches",
               _ASSIGNMENTS_BY_RELATIONS.clear)
register_cache("engine/symbolic.py:_GROUPS_BY_RELATIONS", "clear_symbolic_caches",
               _GROUPS_BY_RELATIONS.clear)
register_cache("engine/symbolic.py:_MULTISET_BY_RELATIONS", "clear_symbolic_caches",
               _MULTISET_BY_RELATIONS.clear)
register_cache("engine/symbolic.py:_GROUP_COMPARISON_BY_RELATIONS", "clear_symbolic_caches",
               _GROUP_COMPARISON_BY_RELATIONS.clear)
register_cache("engine/symbolic.py:_ANSWER_COMPARISON_BY_RELATIONS", "clear_symbolic_caches",
               _ANSWER_COMPARISON_BY_RELATIONS.clear)
register_cache("engine/symbolic.py:_GROUP_INDEX_BY_RELATIONS", "clear_symbolic_caches",
               _GROUP_INDEX_BY_RELATIONS.clear)
register_cache("engine/symbolic.py:_GROUP_INDEX_INTERN", "clear_symbolic_caches",
               _GROUP_INDEX_INTERN.clear)


def _shared_cache_put(cache: dict, key, value) -> None:
    if len(cache) >= _SHARED_CACHE_LIMIT:
        for stale in list(itertools.islice(iter(cache), _SHARED_CACHE_LIMIT // 4)):
            del cache[stale]
    cache[key] = value


def set_shared_gamma(enabled: bool) -> bool:
    """Enable/disable the shared Γ caches (ablation hook); returns the
    previous setting."""
    global _SHARED_GAMMA_ENABLED
    previous = _SHARED_GAMMA_ENABLED
    _SHARED_GAMMA_ENABLED = enabled
    return previous


def symbolic_cache_stats() -> dict[str, int]:
    """Hit/miss counters and sizes of the shared symbolic caches."""
    return {
        "shared_hits": _OBS.get("engine.gamma.shared_hits"),
        "shared_misses": _OBS.get("engine.gamma.shared_misses"),
        "assignments_entries": len(_ASSIGNMENTS_BY_RELATIONS),
        "groups_entries": len(_GROUPS_BY_RELATIONS),
        "multiset_entries": len(_MULTISET_BY_RELATIONS),
        "group_comparison_entries": len(_GROUP_COMPARISON_BY_RELATIONS),
        "answer_comparison_entries": len(_ANSWER_COMPARISON_BY_RELATIONS),
    }


def _shares_by_relations(query: Query) -> bool:
    return _SHARED_GAMMA_ENABLED and not query_uses_comparisons(query)


def symbolic_satisfying_assignments(
    query: Query, database: SymbolicDatabase
) -> list[SymbolicAssignment]:
    """The symbolic counterpart of Γ(q, S_L)."""
    if _shares_by_relations(query):
        key = (query, relation_signature(query, database))
        cached = _ASSIGNMENTS_BY_RELATIONS.get(key)
        if cached is None:
            _OBS.inc("engine.gamma.shared_misses")
            cached = _compute_symbolic_assignments(query, database)
            _shared_cache_put(_ASSIGNMENTS_BY_RELATIONS, key, cached)
        else:
            _OBS.inc("engine.gamma.shared_hits")
        return list(cached)
    return list(_symbolic_assignments_cached(query, database))


@lru_cache(maxsize=16384)
def _symbolic_assignments_cached(
    query: Query, database: SymbolicDatabase
) -> tuple[SymbolicAssignment, ...]:
    return _compute_symbolic_assignments(query, database)


def _compute_symbolic_assignments(
    query: Query, database: SymbolicDatabase
) -> tuple[SymbolicAssignment, ...]:
    # ``naive`` has no symbolic counterpart (the reference engine only exists
    # over concrete databases), so anything but ``compiled`` runs the plan
    # interpreter below.
    if active_engine() == ENGINE_COMPILED:
        return _compile.compiled_symbolic_assignments(query, database)
    results: list[SymbolicAssignment] = []
    for index, disjunct in enumerate(query.disjuncts):
        plan = plan_condition(disjunct, lambda predicate: len(database.relation(predicate)))
        for mapping in execute_symbolic_plan(plan, database):
            results.append(SymbolicAssignment.from_dict(mapping, index))
    return tuple(results)


def clear_symbolic_caches() -> None:
    """Drop the memoized symbolic Γ(q, S_L) results (both keyings): the
    lru-backed memos by hand, the shared relation-signature tables through
    their cache-registry registrations."""
    _symbolic_assignments_cached.cache_clear()
    _representative_map.cache_clear()
    run_registered_clears("clear_symbolic_caches")
    _OBS.reset("engine.gamma.")


# ----------------------------------------------------------------------
# Plan execution (symbolic engine)
# ----------------------------------------------------------------------
def execute_symbolic_plan(
    plan: Plan, database: SymbolicDatabase
) -> Iterator[dict[Variable, Term]]:
    """Enumerate the symbolic assignments satisfying the plan's condition.

    Identical in structure to the concrete executor, except that terms are
    block representatives (constants canonicalize through the ordering) and
    comparisons are decided by the ordering ``L`` instead of numerically.
    """
    if not plan.resolvable:
        return
    ordering = database.ordering
    partials: list[dict[Variable, Term]] = [{}]
    for step in plan.steps:
        if isinstance(step, AtomStep):
            partials = _join_symbolic_atom(step, database, partials)
        elif isinstance(step, BindStep):
            source = step.source
            if isinstance(source, Constant):
                value = database.canonical(source)
                for partial in partials:
                    partial[step.variable] = value
            else:
                for partial in partials:
                    partial[step.variable] = partial[source]
        elif isinstance(step, CompareStep):
            comparison = step.comparison
            partials = [
                partial
                for partial in partials
                if ordering.satisfies(
                    type(comparison)(
                        _require_symbolic(comparison.left, partial, database),
                        comparison.op,
                        _require_symbolic(comparison.right, partial, database),
                    )
                )
            ]
        else:  # NegationStep
            atom = step.atom
            partials = [
                partial
                for partial in partials
                if not database.contains(
                    atom.predicate,
                    tuple(
                        _require_symbolic(argument, partial, database)
                        for argument in atom.arguments
                    ),
                )
            ]
        if not partials:
            return
    yield from partials


def _join_symbolic_atom(
    step: AtomStep, database: SymbolicDatabase, partials: list[dict[Variable, Term]]
) -> list[dict[Variable, Term]]:
    atom = step.atom
    extended: list[dict[Variable, Term]] = []
    if step.bound_columns:
        index = database.index(atom.predicate, step.bound_columns)
        arguments = [atom.arguments[column] for column in step.bound_columns]
        for partial in partials:
            key = tuple(_require_symbolic(argument, partial, database) for argument in arguments)
            for row in index.get(key, ()):
                match = _match_symbolic_atom(atom, row, partial, database)
                if match is not None:
                    extended.append(match)
    else:
        relation = database.relation(atom.predicate)
        for partial in partials:
            for row in relation:
                match = _match_symbolic_atom(atom, row, partial, database)
                if match is not None:
                    extended.append(match)
    return extended


def _match_symbolic_atom(
    atom: RelationalAtom,
    row: tuple[Term, ...],
    partial: Mapping[Variable, Term],
    database: SymbolicDatabase,
) -> Optional[dict[Variable, Term]]:
    if len(row) != atom.arity:
        return None
    extended = dict(partial)
    for argument, value in zip(atom.arguments, row):
        if isinstance(argument, Constant):
            if database.canonical(argument) != value:
                return None
        else:
            bound = extended.get(argument)
            if bound is None:
                extended[argument] = value
            elif bound != value:
                return None
    return extended


def _maybe_symbolic(
    term: Term, assignment: Mapping[Variable, Term], database: SymbolicDatabase
) -> Optional[Term]:
    if isinstance(term, Constant):
        return database.canonical(term)
    return assignment.get(term)


def _require_symbolic(
    term: Term, assignment: Mapping[Variable, Term], database: SymbolicDatabase
) -> Term:
    value = _maybe_symbolic(term, assignment, database)
    if value is None:
        raise EvaluationError(f"unbound term {term} during symbolic evaluation")
    return value


# ----------------------------------------------------------------------
# Groups and result signatures
# ----------------------------------------------------------------------
def symbolic_groups(
    query: Query, database: SymbolicDatabase
) -> dict[tuple[Term, ...], list[tuple[Term, ...]]]:
    """For every symbolic group key d̄ (a tuple of block representatives), the
    bag of aggregation-variable tuples collected for that group.

    For comparison-free queries the result is cached by the restricted
    relation signature and shared; callers must treat it as read-only.
    """
    if _shares_by_relations(query):
        key = (query, relation_signature(query, database))
        cached = _GROUPS_BY_RELATIONS.get(key)
        if cached is None:
            cached = _compute_symbolic_groups(query, database)
            _shared_cache_put(_GROUPS_BY_RELATIONS, key, cached)
        return cached
    return _compute_symbolic_groups(query, database)


def _compute_symbolic_groups(
    query: Query, database: SymbolicDatabase
) -> dict[tuple[Term, ...], list[tuple[Term, ...]]]:
    if active_engine() == ENGINE_COMPILED:
        # Grouping happens on interned id keys inside the compiled driver;
        # Γ is never materialized as SymbolicAssignment objects.
        return _compile.compiled_symbolic_groups(query, database)
    aggregation_variables = query.aggregation_variables()
    groups: dict[tuple[Term, ...], list[tuple[Term, ...]]] = {}
    for assignment in symbolic_satisfying_assignments(query, database):
        key = assignment.terms_of(query.head_terms, database)
        bag_element = assignment.terms_of(aggregation_variables, database)
        groups.setdefault(key, []).append(bag_element)
    return groups


def symbolic_answer_multiset(
    query: Query, database: SymbolicDatabase
) -> dict[tuple[Term, ...], int]:
    """For non-aggregate queries: the answer tuples with multiplicities
    (bag-set semantics, used by the bag-set equivalence reduction).

    Cached by restricted relation signature for comparison-free queries;
    callers must treat the result as read-only.
    """
    if _shares_by_relations(query):
        key = (query, relation_signature(query, database))
        cached = _MULTISET_BY_RELATIONS.get(key)
        if cached is None:
            cached = _compute_answer_multiset(query, database)
            _shared_cache_put(_MULTISET_BY_RELATIONS, key, cached)
        return cached
    return _compute_answer_multiset(query, database)


def _compute_answer_multiset(
    query: Query, database: SymbolicDatabase
) -> dict[tuple[Term, ...], int]:
    if active_engine() == ENGINE_COMPILED:
        return _compile.compiled_symbolic_multiset(query, database)
    result: dict[tuple[Term, ...], int] = {}
    for assignment in symbolic_satisfying_assignments(query, database):
        key = assignment.terms_of(query.head_terms, database)
        result[key] = result.get(key, 0) + 1
    return result


def catalog_symbolic_groups(
    queries: Mapping[str, Query], database: SymbolicDatabase
) -> dict[str, dict[tuple[Term, ...], list[tuple[Term, ...]]]]:
    """BASE-sharing entry point: the symbolic groups of every query of a
    catalog over one ``S_L``.

    When the catalog is checked pairwise over a shared BASE (see
    :class:`repro.core.bounded.SharedBaseContext`), each Γ(q, S_L) is computed
    once here and every pair mentioning ``q`` reuses it through the
    restricted-relation-signature cache.
    """
    return {name: symbolic_groups(query, database) for name, query in queries.items()}


# ----------------------------------------------------------------------
# Group-comparison kernels (single-sweep catalog engine)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GroupComparison:
    """The ordering-independent part of comparing two queries over one S_L.

    ``keys_match`` is whether the two queries produce the same group keys;
    ``residual`` lists the groups whose bags differ *as multisets* — only
    those can fail an ordered identity (``α(B) = α(B)`` is trivially valid),
    so only those need the per-ordering deciders.  An instance with matching
    keys and an empty residual certifies agreement under *every* ordering of
    the block partition.
    """

    keys_match: bool
    residual: tuple[tuple[tuple[Term, ...], tuple[tuple[Term, ...], ...], tuple[tuple[Term, ...], ...]], ...] = ()

    @property
    def agree_everywhere(self) -> bool:
        return self.keys_match and not self.residual


@lru_cache(maxsize=16384)
def _pair_predicates(first: Query, second: Query) -> tuple[str, ...]:
    return tuple(sorted(set(_query_predicates(first)) | set(_query_predicates(second))))


def _pair_signature(first: Query, second: Query, database: SymbolicDatabase) -> tuple:
    """The canonical relations restricted to the union of the two queries'
    predicates — the key under which comparison results are shared."""
    return _signature_for(database, _pair_predicates(first, second))


def _shares_pair(first: Query, second: Query) -> bool:
    return (
        _SHARED_GAMMA_ENABLED
        and not query_uses_comparisons(first)
        and not query_uses_comparisons(second)
    )


def compare_symbolic_groups(
    first: Query, second: Query, database: SymbolicDatabase
) -> GroupComparison:
    """Compare the symbolic groups of two aggregate queries over one ``S_L``,
    separating the ordering-independent part (group keys and multiset-equal
    bags) from the residual groups that still need ordered-identity checks.

    For comparison-free pairs the result is cached by the pair's joint
    restricted relation signature, so one comparison serves every ordering of
    a block partition, every subset merging to the same canonical relations,
    and — in a catalog sweep — every (subset, ordering-class) cell the pair
    is re-examined under.
    """
    if _shares_pair(first, second):
        key = (first, second, _pair_signature(first, second, database))
        cached = _GROUP_COMPARISON_BY_RELATIONS.get(key)
        if cached is None:
            cached = _compute_group_comparison(first, second, database)
            _shared_cache_put(_GROUP_COMPARISON_BY_RELATIONS, key, cached)
        return cached
    return _compute_group_comparison(first, second, database)


def symbolic_group_index(
    query: Query, database: SymbolicDatabase
) -> dict[tuple[Term, ...], "Counter"]:
    """``{group key: multiset of bag elements}`` for one query over one S_L —
    the canonical form under which group comparisons are one dict equality.
    Cached per (query, restricted relation signature), so the multisets are
    built O(catalog) times per sweep, not O(pairs), and *interned* by
    content: two queries producing equal groups over the same S_L share one
    index object, so the sweep's per-pair agreement check is an identity
    check.  Callers must treat the result as read-only.
    """
    if _shares_by_relations(query):
        key = (query, relation_signature(query, database))
        cached = _GROUP_INDEX_BY_RELATIONS.get(key)
        if cached is None:
            cached = _intern_group_index(_compute_group_index(query, database))
            _shared_cache_put(_GROUP_INDEX_BY_RELATIONS, key, cached)
        return cached
    return _compute_group_index(query, database)


def _intern_group_index(index: dict) -> dict:
    frozen = frozenset(
        (group_key, frozenset(counter.items())) for group_key, counter in index.items()
    )
    canonical = _GROUP_INDEX_INTERN.get(frozen)
    if canonical is None:
        _shared_cache_put(_GROUP_INDEX_INTERN, frozen, index)
        return index
    return canonical


def _compute_group_index(query: Query, database: SymbolicDatabase) -> dict:
    from collections import Counter

    return {
        group_key: Counter(bag)
        for group_key, bag in symbolic_groups(query, database).items()
    }


def _compute_group_comparison(
    first: Query, second: Query, database: SymbolicDatabase
) -> GroupComparison:
    left_index = symbolic_group_index(first, database)
    right_index = symbolic_group_index(second, database)
    if left_index is right_index or left_index == right_index:
        # The common case for equivalent rewritings: identical groups, so
        # every ordered identity holds trivially under every ordering.
        return GroupComparison(keys_match=True)
    if left_index.keys() != right_index.keys():
        return GroupComparison(keys_match=False)
    left_groups = symbolic_groups(first, database)
    right_groups = symbolic_groups(second, database)
    residual = tuple(
        (group_key, tuple(left_groups[group_key]), tuple(right_groups[group_key]))
        for group_key in left_groups
        if left_index[group_key] != right_index[group_key]
    )
    return GroupComparison(keys_match=True, residual=residual)


def compare_symbolic_answers(
    first: Query, second: Query, database: SymbolicDatabase, semantics: str
) -> bool:
    """Whether two non-aggregate queries produce the same symbolic answers
    over one ``S_L`` (as a set for ``"set"`` semantics, with multiplicities
    for ``"bag-set"``), cached like :func:`compare_symbolic_groups`."""
    if _shares_pair(first, second):
        key = (first, second, semantics, _pair_signature(first, second, database))
        cached = _ANSWER_COMPARISON_BY_RELATIONS.get(key)
        if cached is None:
            cached = _compute_answer_comparison(first, second, database, semantics)
            _shared_cache_put(_ANSWER_COMPARISON_BY_RELATIONS, key, cached)
        return cached
    return _compute_answer_comparison(first, second, database, semantics)


def _compute_answer_comparison(
    first: Query, second: Query, database: SymbolicDatabase, semantics: str
) -> bool:
    left = symbolic_answer_multiset(first, database)
    right = symbolic_answer_multiset(second, database)
    if semantics == "bag-set":
        return left == right
    return set(left) == set(right)
