"""Symbolic evaluation over databases of the form S_L (Theorem 4.8).

The bounded-equivalence procedure does not enumerate concrete databases
(there are infinitely many); instead it enumerates subsets ``S`` of the finite
atom universe BASE together with a complete ordering ``L`` of the term set
``T``, and evaluates the queries *symbolically* over the pair ``S_L``:
variables of the query are mapped to terms of ``T`` rather than to values,
comparisons are decided by ``L``, and groups collect *bags of term tuples*
whose equality is then settled by the ordered-identity deciders.

Terms that ``L`` makes equal are identified by mapping every term to the
representative of its block, so a subset ``S`` paired with an ordering that
equates terms behaves exactly like its instantiation with a non-injective
assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, Mapping, Optional

from ..datalog.atoms import RelationalAtom
from ..datalog.conditions import Condition
from ..datalog.database import Database
from ..datalog.queries import Query
from ..datalog.terms import Constant, Term, Variable
from ..errors import EvaluationError
from ..orderings.complete_orderings import CompleteOrdering


@dataclass(frozen=True)
class SymbolicDatabase:
    """A subset of BASE together with a complete ordering of the term set."""

    atoms: frozenset[RelationalAtom]
    ordering: CompleteOrdering

    def __post_init__(self) -> None:
        object.__setattr__(self, "atoms", frozenset(self.atoms))
        for atom in self.atoms:
            if atom.negated:
                raise EvaluationError("symbolic databases contain positive atoms only")

    def canonical(self, term: Term) -> Term:
        """The representative of the term's block under the ordering."""
        return self.ordering.representative(self.ordering.block_index(term))

    @cached_property
    def canonical_relations(self) -> dict[str, frozenset[tuple[Term, ...]]]:
        """The atoms of the database with every term replaced by its block
        representative, grouped by predicate."""
        relations: dict[str, set[tuple[Term, ...]]] = {}
        for atom in self.atoms:
            row = tuple(self.canonical(argument) for argument in atom.arguments)
            relations.setdefault(atom.predicate, set()).add(row)
        return {predicate: frozenset(rows) for predicate, rows in relations.items()}

    @cached_property
    def carrier_terms(self) -> frozenset[Term]:
        """The block representatives occurring in the database — the symbolic
        counterpart of the carrier of the instantiated database."""
        carrier: set[Term] = set()
        for rows in self.canonical_relations.values():
            for row in rows:
                carrier.update(row)
        return frozenset(carrier)

    def relation(self, predicate: str) -> frozenset[tuple[Term, ...]]:
        return self.canonical_relations.get(predicate, frozenset())

    def contains(self, predicate: str, row: tuple[Term, ...]) -> bool:
        return row in self.canonical_relations.get(predicate, frozenset())

    def instantiate(self) -> Database:
        """A concrete database δ(S) for the canonical satisfying assignment δ
        of the ordering."""
        assignment = self.ordering.instantiate()
        facts = []
        for atom in self.atoms:
            values = tuple(
                argument.value if isinstance(argument, Constant) else assignment[argument]
                for argument in atom.arguments
            )
            facts.append((atom.predicate, values))
        return Database(facts)

    def __len__(self) -> int:
        return len(self.atoms)


@dataclass(frozen=True)
class SymbolicAssignment:
    """An assignment of query variables to block representatives, labeled with
    the disjunct it satisfies."""

    mapping: tuple[tuple[Variable, Term], ...]
    disjunct_index: int

    @classmethod
    def from_dict(cls, mapping: Mapping[Variable, Term], disjunct_index: int):
        ordered = tuple(sorted(mapping.items(), key=lambda item: item[0].name))
        return cls(ordered, disjunct_index)

    def as_dict(self) -> dict[Variable, Term]:
        return dict(self.mapping)

    def term_of(self, term: Term, database: SymbolicDatabase) -> Term:
        if isinstance(term, Constant):
            return database.canonical(term)
        for variable, value in self.mapping:
            if variable == term:
                return value
        raise EvaluationError(f"symbolic assignment does not bind {term}")

    def terms_of(self, terms, database: SymbolicDatabase) -> tuple[Term, ...]:
        return tuple(self.term_of(term, database) for term in terms)


def symbolic_satisfying_assignments(
    query: Query, database: SymbolicDatabase
) -> list[SymbolicAssignment]:
    """The symbolic counterpart of Γ(q, S_L)."""
    results: list[SymbolicAssignment] = []
    for index, disjunct in enumerate(query.disjuncts):
        for mapping in _symbolic_assignments_for_condition(disjunct, database):
            results.append(SymbolicAssignment.from_dict(mapping, index))
    return results


def _symbolic_assignments_for_condition(
    condition: Condition, database: SymbolicDatabase
) -> Iterator[dict[Variable, Term]]:
    positive = sorted(condition.positive_atoms, key=lambda atom: -atom.arity)
    partial_assignments: list[dict[Variable, Term]] = [{}]
    for atom in positive:
        relation = database.relation(atom.predicate)
        extended: list[dict[Variable, Term]] = []
        for partial in partial_assignments:
            for row in relation:
                match = _match_symbolic_atom(atom, row, partial, database)
                if match is not None:
                    extended.append(match)
        partial_assignments = extended
        if not partial_assignments:
            return
    for partial in partial_assignments:
        resolved = _resolve_symbolic_equalities(condition, partial, database)
        if resolved is None:
            continue
        if _check_symbolic_residual(condition, resolved, database):
            yield resolved


def _match_symbolic_atom(
    atom: RelationalAtom,
    row: tuple[Term, ...],
    partial: Mapping[Variable, Term],
    database: SymbolicDatabase,
) -> Optional[dict[Variable, Term]]:
    if len(row) != atom.arity:
        return None
    extended = dict(partial)
    for argument, value in zip(atom.arguments, row):
        if isinstance(argument, Constant):
            if database.canonical(argument) != value:
                return None
        else:
            bound = extended.get(argument)
            if bound is None:
                extended[argument] = value
            elif bound != value:
                return None
    return extended


def _resolve_symbolic_equalities(
    condition: Condition, partial: dict[Variable, Term], database: SymbolicDatabase
) -> Optional[dict[Variable, Term]]:
    resolved = dict(partial)
    pending = [c for c in condition.comparisons if c.is_equality]
    progress = True
    while progress and pending:
        progress = False
        remaining = []
        for comparison in pending:
            left = _maybe_symbolic(comparison.left, resolved, database)
            right = _maybe_symbolic(comparison.right, resolved, database)
            if left is not None and right is None and isinstance(comparison.right, Variable):
                resolved[comparison.right] = left
                progress = True
            elif right is not None and left is None and isinstance(comparison.left, Variable):
                resolved[comparison.left] = right
                progress = True
            else:
                remaining.append(comparison)
        pending = remaining
    if condition.variables() - set(resolved):
        return None
    return resolved


def _maybe_symbolic(
    term: Term, assignment: Mapping[Variable, Term], database: SymbolicDatabase
) -> Optional[Term]:
    if isinstance(term, Constant):
        return database.canonical(term)
    return assignment.get(term)


def _check_symbolic_residual(
    condition: Condition, assignment: Mapping[Variable, Term], database: SymbolicDatabase
) -> bool:
    ordering = database.ordering
    for atom in condition.negated_atoms:
        row = tuple(_require_symbolic(argument, assignment, database) for argument in atom.arguments)
        if database.contains(atom.predicate, row):
            return False
    for comparison in condition.comparisons:
        left = _require_symbolic(comparison.left, assignment, database)
        right = _require_symbolic(comparison.right, assignment, database)
        if not ordering.satisfies(type(comparison)(left, comparison.op, right)):
            return False
    for atom in condition.positive_atoms:
        row = tuple(_require_symbolic(argument, assignment, database) for argument in atom.arguments)
        if not database.contains(atom.predicate, row):
            return False
    return True


def _require_symbolic(
    term: Term, assignment: Mapping[Variable, Term], database: SymbolicDatabase
) -> Term:
    value = _maybe_symbolic(term, assignment, database)
    if value is None:
        raise EvaluationError(f"unbound term {term} during symbolic evaluation")
    return value


# ----------------------------------------------------------------------
# Groups and result signatures
# ----------------------------------------------------------------------
def symbolic_groups(
    query: Query, database: SymbolicDatabase
) -> dict[tuple[Term, ...], list[tuple[Term, ...]]]:
    """For every symbolic group key d̄ (a tuple of block representatives), the
    bag of aggregation-variable tuples collected for that group."""
    aggregation_variables = query.aggregation_variables()
    groups: dict[tuple[Term, ...], list[tuple[Term, ...]]] = {}
    for assignment in symbolic_satisfying_assignments(query, database):
        key = assignment.terms_of(query.head_terms, database)
        bag_element = assignment.terms_of(aggregation_variables, database)
        groups.setdefault(key, []).append(bag_element)
    return groups


def symbolic_answer_multiset(
    query: Query, database: SymbolicDatabase
) -> dict[tuple[Term, ...], int]:
    """For non-aggregate queries: the answer tuples with multiplicities
    (bag-set semantics, used by the bag-set equivalence reduction)."""
    result: dict[tuple[Term, ...], int] = {}
    for assignment in symbolic_satisfying_assignments(query, database):
        key = assignment.terms_of(query.head_terms, database)
        result[key] = result.get(key, 0) + 1
    return result
