"""Query evaluation: concrete databases and symbolic databases S_L.

Architecture
============

Evaluation is served by three engines sharing one pipeline, selected by the
process-global mode of :mod:`repro.engine.modes` (``REPRO_ENGINE`` env var;
``naive`` | ``planned`` | ``compiled``, default ``compiled``):

1. **Planning** (:mod:`repro.engine.planner`).  Each condition (disjunct) is
   compiled once into a :class:`~repro.engine.planner.Plan`: positive atoms
   ordered greedily by the number of already-bound argument positions (ties
   broken towards the smallest *estimated* probe result — join selectivity
   ``rows / distinct`` when column statistics are available, raw size
   otherwise), with every equality-definition (``BindStep``), comparison
   filter (``CompareStep``) and negated-atom anti-join (``NegationStep``)
   placed at the earliest point all its variables are bound.  Plans depend
   only on the condition and the relations' size/distinct *statistics*, so
   they are cached per ``(condition, statistics signature)``.

2. **Execution** — three interchangeable back ends:

   * ``naive`` — the original nested-loop engine
     (``naive_satisfying_assignments``), kept verbatim as the executable
     specification and differential oracle.
   * ``planned`` — the step interpreters (``execute_plan`` for concrete
     databases, ``execute_symbolic_plan`` for symbolic ones) extending
     dict-shaped partial assignments step by step, probing lazy
     per-``(predicate, columns)`` hash indexes supplied by the database.
   * ``compiled`` — the columnar engine.  :mod:`repro.engine.columnar`
     interns each database once into integer id columns whose order mirrors
     the value order (sorted-carrier rank concretely, block position
     symbolically), and :mod:`repro.engine.compile` code-generates each plan
     into a specialized Python function over those ids — no per-tuple
     interpretation, projection inside the kernel, one kernel shared by
     every database the plan runs over.  Large relations route through a
     NumPy ``searchsorted`` join executor when NumPy is importable
     (``REPRO_NO_NUMPY=1`` forces the pure-python kernels).

   Index invariants (planned and compiled alike): databases are immutable, so
   an index never goes stale; an index maps each projection of a row onto the
   indexed columns to the rows sharing that projection; a key absent from the
   index means no row matches; the empty column tuple is never indexed (it
   denotes a full scan).  Symbolic indexes hold block representatives — rows
   are canonicalized through the ordering before indexing.

3. **Memoization**.  ``Γ(q, D)`` (and its symbolic counterpart ``Γ(q, S_L)``)
   is cached per ``(query, database, engine)``; the compiled engine
   additionally caches the columnar store per database and the kernel per
   ``(plan, output terms)``.  ``clear_evaluation_caches`` /
   ``clear_symbolic_caches`` reset the caches (benchmarks use them for
   cold-cache timings; the kernel/store caches are dropped by the former).
"""

from .columnar import (
    ColumnarStore,
    clear_store_cache,
    execute_plan_vector,
    store_cache_stats,
    store_for,
)
from .compile import (
    clear_kernel_cache,
    get_kernel,
    kernel_cache_stats,
)
from .evaluator import (
    LabeledAssignment,
    clear_evaluation_caches,
    evaluate,
    evaluate_aggregate,
    evaluate_bag_set,
    evaluate_set,
    execute_plan,
    group_assignments,
    naive_satisfying_assignments,
    results_equal,
    satisfying_assignments,
)
from .modes import (
    DEFAULT_ENGINE,
    ENGINE_COMPILED,
    ENGINE_MODES,
    ENGINE_NAIVE,
    ENGINE_PLANNED,
    active_engine,
    engine_scope,
    set_engine,
)
from .planner import (
    AtomStep,
    BindStep,
    CompareStep,
    NegationStep,
    Plan,
    clear_plan_cache,
    plan_cache_stats,
    plan_condition,
)
from .symbolic import (
    GroupComparison,
    SymbolicAssignment,
    SymbolicDatabase,
    catalog_symbolic_groups,
    compare_symbolic_answers,
    compare_symbolic_groups,
    clear_symbolic_caches,
    execute_symbolic_plan,
    relation_signature,
    set_shared_gamma,
    symbolic_answer_multiset,
    symbolic_cache_stats,
    symbolic_groups,
    symbolic_satisfying_assignments,
)

__all__ = [
    "AtomStep",
    "BindStep",
    "ColumnarStore",
    "CompareStep",
    "DEFAULT_ENGINE",
    "ENGINE_COMPILED",
    "ENGINE_MODES",
    "ENGINE_NAIVE",
    "ENGINE_PLANNED",
    "GroupComparison",
    "LabeledAssignment",
    "NegationStep",
    "Plan",
    "SymbolicAssignment",
    "SymbolicDatabase",
    "active_engine",
    "catalog_symbolic_groups",
    "clear_evaluation_caches",
    "clear_kernel_cache",
    "clear_plan_cache",
    "plan_cache_stats",
    "clear_store_cache",
    "clear_symbolic_caches",
    "compare_symbolic_answers",
    "compare_symbolic_groups",
    "engine_scope",
    "evaluate",
    "evaluate_aggregate",
    "evaluate_bag_set",
    "evaluate_set",
    "execute_plan",
    "execute_plan_vector",
    "execute_symbolic_plan",
    "get_kernel",
    "group_assignments",
    "kernel_cache_stats",
    "naive_satisfying_assignments",
    "plan_condition",
    "relation_signature",
    "results_equal",
    "satisfying_assignments",
    "set_engine",
    "set_shared_gamma",
    "store_cache_stats",
    "store_for",
    "symbolic_answer_multiset",
    "symbolic_cache_stats",
    "symbolic_groups",
    "symbolic_satisfying_assignments",
]
