"""Query evaluation: concrete databases and symbolic databases S_L."""

from .evaluator import (
    LabeledAssignment,
    evaluate,
    evaluate_aggregate,
    evaluate_bag_set,
    evaluate_set,
    group_assignments,
    results_equal,
    satisfying_assignments,
)
from .symbolic import (
    SymbolicAssignment,
    SymbolicDatabase,
    symbolic_answer_multiset,
    symbolic_groups,
    symbolic_satisfying_assignments,
)

__all__ = [
    "LabeledAssignment",
    "SymbolicAssignment",
    "SymbolicDatabase",
    "evaluate",
    "evaluate_aggregate",
    "evaluate_bag_set",
    "evaluate_set",
    "group_assignments",
    "results_equal",
    "satisfying_assignments",
    "symbolic_answer_multiset",
    "symbolic_groups",
    "symbolic_satisfying_assignments",
]
