"""Query evaluation: concrete databases and symbolic databases S_L.

Architecture
============

Both engines share a three-stage pipeline:

1. **Planning** (:mod:`repro.engine.planner`).  Each condition (disjunct) is
   compiled once into a :class:`~repro.engine.planner.Plan`: positive atoms
   ordered greedily by the number of already-bound argument positions (ties
   broken towards the smaller relation), with every equality-definition
   (``BindStep``), comparison filter (``CompareStep``) and negated-atom
   anti-join (``NegationStep``) placed at the earliest point all its variables
   are bound.  Plans depend only on the condition and the relation *sizes*, so
   they are cached per ``(condition, size signature)``.

2. **Indexed execution**.  The executors (``execute_plan`` for concrete
   databases, ``execute_symbolic_plan`` for symbolic ones) extend partial
   assignments step by step.  An ``AtomStep`` with bound columns probes a
   lazy per-``(predicate, columns)`` hash index supplied by the database
   instead of scanning the relation.

   Index invariants: databases are immutable, so an index never goes stale;
   an index maps each projection of a row onto the indexed columns to the
   tuple of full rows sharing that projection; a key absent from the index
   means no row matches; the empty column tuple is never indexed (it denotes
   a full scan).  Symbolic indexes hold block representatives — rows are
   canonicalized through the ordering before indexing, matching the
   canonical relations they index.

3. **Memoization**.  ``Γ(q, D)`` (and its symbolic counterpart
   ``Γ(q, S_L)``) is cached per ``(query, database)`` pair, both immutable
   and hashable.  Counterexample searches, bounded-equivalence runs and
   equivalence matrices re-evaluate the same pairs constantly; each distinct
   pair is now computed once.  ``clear_evaluation_caches`` /
   ``clear_symbolic_caches`` reset the caches (benchmarks use them for
   cold-cache timings).

``naive_satisfying_assignments`` retains the original nested-loop engine as an
executable specification for differential testing and benchmarking.
"""

from .evaluator import (
    LabeledAssignment,
    clear_evaluation_caches,
    evaluate,
    evaluate_aggregate,
    evaluate_bag_set,
    evaluate_set,
    execute_plan,
    group_assignments,
    naive_satisfying_assignments,
    results_equal,
    satisfying_assignments,
)
from .planner import (
    AtomStep,
    BindStep,
    CompareStep,
    NegationStep,
    Plan,
    clear_plan_cache,
    plan_condition,
)
from .symbolic import (
    GroupComparison,
    SymbolicAssignment,
    SymbolicDatabase,
    catalog_symbolic_groups,
    compare_symbolic_answers,
    compare_symbolic_groups,
    clear_symbolic_caches,
    execute_symbolic_plan,
    relation_signature,
    set_shared_gamma,
    symbolic_answer_multiset,
    symbolic_cache_stats,
    symbolic_groups,
    symbolic_satisfying_assignments,
)

__all__ = [
    "AtomStep",
    "BindStep",
    "CompareStep",
    "GroupComparison",
    "LabeledAssignment",
    "NegationStep",
    "Plan",
    "SymbolicAssignment",
    "SymbolicDatabase",
    "catalog_symbolic_groups",
    "clear_evaluation_caches",
    "compare_symbolic_answers",
    "compare_symbolic_groups",
    "clear_plan_cache",
    "clear_symbolic_caches",
    "evaluate",
    "evaluate_aggregate",
    "evaluate_bag_set",
    "evaluate_set",
    "execute_plan",
    "execute_symbolic_plan",
    "group_assignments",
    "naive_satisfying_assignments",
    "plan_condition",
    "relation_signature",
    "results_equal",
    "satisfying_assignments",
    "set_shared_gamma",
    "symbolic_answer_multiset",
    "symbolic_cache_stats",
    "symbolic_groups",
    "symbolic_satisfying_assignments",
]
