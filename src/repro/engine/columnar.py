"""Columnar relation storage: interned id columns and vectorized join probes.

The compiled engine (:mod:`repro.engine.compile`) does not evaluate over the
value-shaped relations of :class:`~repro.datalog.database.Database` /
:class:`~repro.engine.symbolic.SymbolicDatabase`.  It evaluates over a
:class:`ColumnarStore` — an interned, column-oriented image of the database in
which every constant is replaced by a small integer id chosen so that **id
order equals value order**:

* concrete databases intern by *rank in the sorted carrier* — ``id(a) < id(b)``
  iff ``a < b`` — so every comparison the query performs becomes a plain
  integer comparison;
* symbolic databases ``S_L`` intern a block representative by its *block
  position in the ordering L* — so comparisons decided by ``L`` become the
  same integer comparisons, and one compiled kernel serves both engines.

Constants that a query mentions but the carrier lacks cannot be given a rank
without breaking the order isomorphism; they are resolved per store into
*comparison bounds* ``(lo, hi, eq)`` (bisection ranks plus a ``-1`` equality
sentinel), which make every operator against an absent constant correct
without special cases — an absent key simply probes an index miss, and
``x < c`` compiles to ``id(x) < bisect_left(carrier, c)``.

On top of the id rows the store maintains the lazy per-``(predicate,
columns)`` hash indexes the kernels probe, NumPy ``int64`` column matrices
when NumPy is importable (``REPRO_NO_NUMPY=1`` forces the pure-python
fallback), and :func:`execute_plan_vector` — a column-at-a-time plan executor
whose joins run as packed-key ``argsort``/``searchsorted`` probes instead of
per-tuple loops.  The vectorized path is only selected for plans over
relations of at least ``REPRO_VECTOR_THRESHOLD`` rows (default 512): below
that the NumPy per-call overhead loses to the generated loop kernels, which
share the exact same store.

Stores are built once per database through :func:`store_for` (a capped global
cache — both database classes hash by value, so sweeps re-creating equal
``S_L`` objects still share one store) and are dropped by
:func:`clear_store_cache`, which ``clear_evaluation_caches`` calls.
"""

from __future__ import annotations

import itertools
import os
from bisect import bisect_left
from typing import Iterable, Optional

from ..caches import register_cache
from ..datalog.terms import Constant, Term, Variable
from ..errors import EvaluationError
from ..obs import REGISTRY as _OBS
from .planner import AtomStep, BindStep, CompareStep, NegationStep, Plan

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None


def numpy_module():
    """The NumPy module the stores use, or ``None`` (not importable, or
    disabled via ``REPRO_NO_NUMPY``).  Read per store build, so tests can
    toggle the fallback without reloading modules."""
    if os.environ.get("REPRO_NO_NUMPY", "").strip().lower() in ("1", "true", "yes"):
        return None
    return _numpy


def vector_threshold() -> int:
    """Minimum relation size for the vectorized join path (env-tunable)."""
    try:
        return int(os.environ.get("REPRO_VECTOR_THRESHOLD", "512"))
    except ValueError:
        return 512


#: Packed join keys must stay below 2**62 to fit a signed int64 safely.
_PACK_LIMIT = 2**62


class _VectorFallback(Exception):
    """Raised when the vectorized executor cannot represent the plan (packed
    keys would overflow int64, mixed-arity relations, ...); the caller falls
    back to the generated loop kernel, which has no such limits."""


class ColumnarStore:
    """The interned, column-oriented image of one (immutable) database."""

    __slots__ = (
        "symbolic",
        "decode_values",
        "carrier_len",
        "numpy",
        "threshold",
        "_id_of",
        "_canonical",
        "_rows_all",
        "_rows",
        "_indexes",
        "_row_sets",
        "_matrices",
        "_packed",
        "_bounds",
        "_decode_ids",
        "_distincts",
        "_sizes",
    )

    def __init__(self, database):  # noqa: ANN001 - Database | SymbolicDatabase
        # Deferred import: symbolic.py imports the engine package lazily too,
        # and the store only needs the class for the isinstance split.
        from .symbolic import SymbolicDatabase

        self.symbolic = isinstance(database, SymbolicDatabase)
        if self.symbolic:
            ordering = database.ordering
            representatives = [
                ordering.representative(index) for index in range(len(ordering.blocks))
            ]
            self.decode_values: list = representatives
            self._id_of: dict = {term: index for index, term in enumerate(representatives)}
            self._canonical = database.canonical
            relations = database.canonical_relations
        else:
            carrier = database.sorted_carrier()
            self.decode_values = list(carrier)
            self._id_of = {value: index for index, value in enumerate(carrier)}
            self._canonical = None
            relations = database._by_predicate
        self.carrier_len = len(self.decode_values)
        self.numpy = numpy_module()
        self.threshold = vector_threshold()
        id_of = self._id_of
        rows_all: dict[str, tuple[tuple[int, ...], ...]] = {}
        for predicate, value_rows in relations.items():
            rows_all[predicate] = tuple(
                sorted(tuple(id_of[value] for value in row) for row in value_rows)
            )
        self._rows_all = rows_all
        self._rows: dict[tuple[str, int], tuple[tuple[int, ...], ...]] = {}
        self._indexes: dict[tuple[str, tuple[int, ...], int], dict] = {}
        self._row_sets: dict[str, frozenset] = {}
        self._matrices: dict[tuple[str, int], object] = {}
        self._packed: dict[tuple[str, int], object] = {}
        self._bounds: dict[Constant, tuple[int, int, int]] = {}
        self._decode_ids: dict[Constant, int] = {}
        self._distincts: dict[tuple[str, int], int] = {}
        self._sizes = {predicate: len(rows) for predicate, rows in rows_all.items()}

    # ------------------------------------------------------------------
    # Relation access (id space)
    # ------------------------------------------------------------------
    def size(self, predicate: str) -> int:
        return self._sizes.get(predicate, 0)

    def rows(self, predicate: str, arity: int) -> tuple[tuple[int, ...], ...]:
        """The id rows of the relation that can match an ``arity``-ary atom."""
        key = (predicate, arity)
        cached = self._rows.get(key)
        if cached is None:
            everything = self._rows_all.get(predicate, ())
            if all(len(row) == arity for row in everything):
                cached = everything
            else:
                cached = tuple(row for row in everything if len(row) == arity)
            self._rows[key] = cached
        return cached

    def index(self, predicate: str, columns: tuple[int, ...], arity: int) -> dict:
        """A hash index over id rows on the given columns, keyed by the bare
        id for a single column and by the id tuple otherwise (single-column
        probes are by far the most common; skipping the tuple allocation on
        every probe is measurable)."""
        key = (predicate, columns, arity)
        cached = self._indexes.get(key)
        if cached is None:
            buckets: dict = {}
            if len(columns) == 1:
                column = columns[0]
                for row in self.rows(predicate, arity):
                    buckets.setdefault(row[column], []).append(row)
            else:
                for row in self.rows(predicate, arity):
                    buckets.setdefault(tuple(row[c] for c in columns), []).append(row)
            cached = {projection: tuple(bucket) for projection, bucket in buckets.items()}
            self._indexes[key] = cached
        return cached

    def row_set(self, predicate: str) -> frozenset:
        """All id rows of the relation as a set — the anti-join membership
        structure for negated atoms (arity mismatches miss naturally)."""
        cached = self._row_sets.get(predicate)
        if cached is None:
            cached = frozenset(self._rows_all.get(predicate, ()))
            self._row_sets[predicate] = cached
        return cached

    def distinct(self, predicate: str, column: int) -> int:
        """Distinct ids in one column — the planner's selectivity statistic."""
        key = (predicate, column)
        cached = self._distincts.get(key)
        if cached is None:
            rows = self._rows_all.get(predicate, ())
            cached = len({row[column] for row in rows if column < len(row)})
            self._distincts[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Constant resolution (per store, per kernel invocation)
    # ------------------------------------------------------------------
    def bounds(self, constant: Constant) -> tuple[int, int, int]:
        """``(lo, hi, eq)`` for a query constant: ``lo``/``hi`` are the
        bisection ranks of the constant in the sorted carrier and ``eq`` its
        id (``-1`` when absent).  Every comparison operator against the
        constant reduces to one integer comparison against one of the three;
        ``eq`` also serves as the probe key for positive and negated atoms
        (the ``-1`` sentinel can never match an interned row)."""
        cached = self._bounds.get(constant)
        if cached is None:
            if self.symbolic:
                identifier = self._id_of[self._canonical(constant)]
                cached = (identifier, identifier + 1, identifier)
            else:
                value = constant.value
                identifier = self._id_of.get(value, -1)
                lo = bisect_left(self.decode_values, value, 0, self.carrier_len)
                hi = lo + 1 if identifier >= 0 else lo
                cached = (lo, hi, identifier)
            self._bounds[constant] = cached
        return cached

    def decode_id(self, constant: Constant) -> int:
        """An id whose :attr:`decode_values` entry is the constant's value
        (its block representative for symbolic stores).  Absent concrete
        constants — which can still reach query heads through equality
        definitions like ``x = 5`` — are appended to a decode-only extension
        region that comparisons and probes never see."""
        cached = self._decode_ids.get(constant)
        if cached is None:
            cached = self.bounds(constant)[2]
            if cached < 0:
                cached = len(self.decode_values)
                self.decode_values.append(constant.value)
            self._decode_ids[constant] = cached
        return cached

    def const_holds(self, left: Constant, op, right: Constant) -> bool:  # noqa: ANN001
        """Decide a comparison between two query constants: numerically for
        concrete stores, by block position (the ordering ``L``) for symbolic
        ones."""
        if self.symbolic:
            return op.holds(self.bounds(left)[2], self.bounds(right)[2])
        return op.holds(left.value, right.value)

    # ------------------------------------------------------------------
    # Vectorized structures (NumPy only)
    # ------------------------------------------------------------------
    def matrix(self, predicate: str, arity: int):
        """The relation's id rows as an ``(n, arity)`` int64 matrix."""
        key = (predicate, arity)
        cached = self._matrices.get(key)
        if cached is None:
            np = self.numpy
            rows = self.rows(predicate, arity)
            cached = np.asarray(rows, dtype=np.int64).reshape(len(rows), arity)
            self._matrices[key] = cached
        return cached

    def packed_rows(self, predicate: str, arity: int):
        """The relation's ``arity``-ary id rows packed into sorted int64 keys
        (for vectorized anti-join membership)."""
        key = (predicate, arity)
        cached = self._packed.get(key)
        if cached is None:
            np = self.numpy
            matrix = self.matrix(predicate, arity)
            packed = _pack(np, self.carrier_len + 2, [matrix[:, c] for c in range(arity)])
            packed = np.sort(packed)
            cached = packed
            self._packed[key] = cached
        return cached

    def vector_candidate(self, plan: Plan) -> bool:
        """Whether the vectorized executor should even be attempted for this
        plan on this store: NumPy available and at least one joined relation
        large enough that columnar arithmetic beats the loop kernel."""
        if self.numpy is None:
            return False
        largest = 0
        for step in plan.steps:
            if isinstance(step, AtomStep):
                largest = max(largest, self.size(step.atom.predicate))
        return largest >= self.threshold


# ----------------------------------------------------------------------
# The store cache
# ----------------------------------------------------------------------
_STORE_CACHE: dict = {}
_STORE_CACHE_LIMIT = 8192


def store_for(database) -> ColumnarStore:  # noqa: ANN001
    """The columnar image of a database, built once and cached.

    Both :class:`~repro.datalog.database.Database` and
    :class:`~repro.engine.symbolic.SymbolicDatabase` hash by value, so a sweep
    reconstructing an equal ``S_L`` (e.g. in a worker re-deriving its subset
    stream) lands on the same store.  The cache is capped; on overflow the
    oldest quarter is evicted (insertion order), matching the repo's shared
    Γ-cache scheme.
    """
    store = _STORE_CACHE.get(database)
    if store is None:
        _OBS.inc("engine.store.builds")
        store = ColumnarStore(database)
        if len(_STORE_CACHE) >= _STORE_CACHE_LIMIT:
            for stale in list(itertools.islice(iter(_STORE_CACHE), _STORE_CACHE_LIMIT // 4)):
                del _STORE_CACHE[stale]
        _STORE_CACHE[database] = store
    else:
        _OBS.inc("engine.store.hits")
    return store


def clear_store_cache() -> None:
    """Drop every cached store (and with them the column indexes, matrices,
    and packed keys they hold)."""
    _STORE_CACHE.clear()
    _OBS.reset("engine.store.")


register_cache("engine/columnar.py:_STORE_CACHE", "clear_evaluation_caches", clear_store_cache)


def store_cache_stats() -> dict[str, int]:
    return {
        "entries": len(_STORE_CACHE),
        "builds": _OBS.get("engine.store.builds"),
        "hits": _OBS.get("engine.store.hits"),
    }


# ----------------------------------------------------------------------
# Vectorized plan execution
# ----------------------------------------------------------------------
def _pack(np, base: int, columns: list):  # noqa: ANN001
    """Pack parallel id columns into one int64 key per row.

    Components range over ``[-1, base - 3]`` (ids plus the absent-constant
    sentinel), so each is shifted by one and packed base-``base`` — the
    sentinel packs to digit 0, which no interned id produces, keeping absent
    keys collision-free.  Raises :class:`_VectorFallback` when the packed
    range would overflow int64.
    """
    width = len(columns)
    if width == 0:
        raise _VectorFallback
    if base < 2 or base**width > _PACK_LIMIT:
        raise _VectorFallback
    packed = columns[0].astype(np.int64) + 1
    for column in columns[1:]:
        packed = packed * base + (column.astype(np.int64) + 1)
    return packed


def _constant_map(plan: Plan) -> dict[Variable, Constant]:
    """Variables the plan defines by equating them with a constant.

    Such a variable may hold a value outside the carrier, so it cannot live
    in the id space; both executors treat every later use of it as a use of
    the constant itself (comparison bounds, probe sentinel, decode id).
    """
    mapping: dict[Variable, Constant] = {}
    for step in plan.steps:
        if isinstance(step, BindStep):
            source = step.source
            if isinstance(source, Constant):
                mapping[step.variable] = source
            elif source in mapping:
                mapping[step.variable] = mapping[source]
    return mapping


def execute_plan_vector(
    plan: Plan, store: ColumnarStore, output_terms: tuple[Term, ...]
) -> Optional[list[tuple[int, ...]]]:
    """Execute a plan column-at-a-time over the store's NumPy matrices.

    Returns the same ``list`` of id rows (one per satisfying assignment, one
    entry per output term) the generated loop kernel produces — row *order*
    may differ, which is fine: every consumer treats the rows as a bag —
    or ``None`` when the plan cannot be vectorized, in which case the caller
    runs the loop kernel instead.
    """
    np = store.numpy
    if np is None:
        return None
    if not plan.resolvable:
        return []
    try:
        return _run_vector(np, plan, store, output_terms)
    except _VectorFallback:
        return None


def _run_vector(np, plan: Plan, store: ColumnarStore, output_terms):  # noqa: ANN001
    constant_of = _constant_map(plan)
    columns: dict[Variable, object] = {}
    count = 1

    def apply_mask(mask) -> None:  # noqa: ANN001
        nonlocal count
        count = int(mask.sum())
        for variable in list(columns):
            columns[variable] = columns[variable][mask]

    def probe_id(argument) -> int:  # noqa: ANN001 - Constant | const-bound Variable
        constant = argument if isinstance(argument, Constant) else constant_of[argument]
        return store.bounds(constant)[2]

    for step in plan.steps:
        if count == 0:
            return []
        if isinstance(step, AtomStep):
            atom = step.atom
            matrix = store.matrix(atom.predicate, atom.arity)
            bound = set(step.bound_columns)
            selection = None
            key_columns: list[tuple[int, object]] = []
            fresh: dict[Variable, int] = {}
            for position, argument in enumerate(atom.arguments):
                if position in bound:
                    if isinstance(argument, Constant) or argument in constant_of:
                        mask = matrix[:, position] == probe_id(argument)
                        selection = mask if selection is None else selection & mask
                    else:
                        key_columns.append((position, columns[argument]))
                else:
                    first = fresh.get(argument)
                    if first is None:
                        fresh[argument] = position
                    else:
                        mask = matrix[:, position] == matrix[:, first]
                        selection = mask if selection is None else selection & mask
            sub = matrix if selection is None else matrix[selection]
            if key_columns:
                base = store.carrier_len + 2
                relation_keys = _pack(np, base, [sub[:, p] for p, _ in key_columns])
                probe_keys = _pack(np, base, [arr for _, arr in key_columns])
                order = np.argsort(relation_keys, kind="stable")
                sorted_keys = relation_keys[order]
                left = np.searchsorted(sorted_keys, probe_keys, side="left")
                right = np.searchsorted(sorted_keys, probe_keys, side="right")
                matches = right - left
                total = int(matches.sum())
                partial_idx = np.repeat(np.arange(count), matches)
                offsets = np.arange(total) - np.repeat(
                    np.cumsum(matches) - matches, matches
                )
                row_idx = order[np.repeat(left, matches) + offsets]
            else:
                relation_rows = sub.shape[0]
                partial_idx = np.repeat(np.arange(count), relation_rows)
                row_idx = np.tile(np.arange(relation_rows), count)
                total = count * relation_rows
            for variable in list(columns):
                columns[variable] = columns[variable][partial_idx]
            for variable, position in fresh.items():
                columns[variable] = sub[row_idx, position]
            count = total
        elif isinstance(step, BindStep):
            # Constant definitions live in constant_of; variable-to-variable
            # definitions alias the source column (rebinding, never mutation).
            if step.variable not in constant_of:
                columns[step.variable] = columns[step.source]
        elif isinstance(step, CompareStep):
            comparison = step.comparison
            op = comparison.op
            left, right = comparison.left, comparison.right
            left_const = isinstance(left, Constant) or left in constant_of
            right_const = isinstance(right, Constant) or right in constant_of
            if left_const and right_const:
                first = left if isinstance(left, Constant) else constant_of[left]
                second = right if isinstance(right, Constant) else constant_of[right]
                if not store.const_holds(first, op, second):
                    return []
            elif not left_const and not right_const:
                apply_mask(_VECTOR_OPS[op](columns[left], columns[right]))
            else:
                if left_const:
                    op = op.flip()
                    variable, constant = right, left
                else:
                    variable, constant = left, right
                constant = constant if isinstance(constant, Constant) else constant_of[constant]
                lo, hi, eq = store.bounds(constant)
                apply_mask(_VECTOR_CONST_OPS[op](columns[variable], lo, hi, eq))
        else:  # NegationStep
            atom = step.atom
            packed = store.packed_rows(atom.predicate, atom.arity)
            base = store.carrier_len + 2
            parts = []
            for argument in atom.arguments:
                if isinstance(argument, Constant) or argument in constant_of:
                    parts.append(np.full(count, probe_id(argument), dtype=np.int64))
                else:
                    parts.append(columns[argument])
            if packed.size:
                query_keys = _pack(np, base, parts)
                positions = np.searchsorted(packed, query_keys)
                clipped = np.minimum(positions, packed.size - 1)
                found = (positions < packed.size) & (packed[clipped] == query_keys)
                apply_mask(~found)
    if count == 0:
        return []
    output: list = []
    for term in output_terms:
        if isinstance(term, Constant) or term in constant_of:
            constant = term if isinstance(term, Constant) else constant_of[term]
            output.append(np.full(count, store.decode_id(constant), dtype=np.int64))
        else:
            column = columns.get(term)
            if column is None:
                raise EvaluationError(f"unbound term {term} during vectorized evaluation")
            output.append(column)
    if not output:
        return [()] * count
    stacked = np.stack(output, axis=1)
    return [tuple(row) for row in stacked.tolist()]


def _vector_ops():
    from ..datalog.atoms import ComparisonOp

    return {
        ComparisonOp.LT: lambda a, b: a < b,
        ComparisonOp.LE: lambda a, b: a <= b,
        ComparisonOp.GT: lambda a, b: a > b,
        ComparisonOp.GE: lambda a, b: a >= b,
        ComparisonOp.EQ: lambda a, b: a == b,
        ComparisonOp.NE: lambda a, b: a != b,
    }


def _vector_const_ops():
    from ..datalog.atoms import ComparisonOp

    return {
        # value(x) op c, rewritten over ranks: lo/hi are the bisection bounds
        # of c in the sorted carrier, eq its id (or the -1 sentinel).
        ComparisonOp.LT: lambda a, lo, hi, eq: a < lo,
        ComparisonOp.LE: lambda a, lo, hi, eq: a < hi,
        ComparisonOp.GT: lambda a, lo, hi, eq: a >= hi,
        ComparisonOp.GE: lambda a, lo, hi, eq: a >= lo,
        ComparisonOp.EQ: lambda a, lo, hi, eq: a == eq,
        ComparisonOp.NE: lambda a, lo, hi, eq: a != eq,
    }


_VECTOR_OPS = _vector_ops()
_VECTOR_CONST_OPS = _vector_const_ops()
