"""Engine selection: ``naive`` | ``planned`` | ``compiled``.

Three engines answer every evaluation request in the system:

* ``naive`` — the original nested-loop engine, kept verbatim as the
  executable specification (the differential oracle).
* ``planned`` — the PR 1 engine: per-condition plans executed by a step
  interpreter over dict-shaped partial assignments.
* ``compiled`` (default) — the columnar engine: relations are interned into
  integer id columns (:mod:`repro.engine.columnar`) and each plan is code-
  generated once into a specialized Python function
  (:mod:`repro.engine.compile`) that is reused across the thousands of
  evaluations a sweep performs.

The active engine is a process-global mode, initialized from the
``REPRO_ENGINE`` environment variable and switchable at runtime with
:func:`set_engine` / :func:`engine_scope`.  Parallel task builders capture the
active mode into their (picklable) tasks so worker processes decide under the
same engine as the parent, regardless of how the pool was started.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from ..errors import ReproError

ENGINE_NAIVE = "naive"
ENGINE_PLANNED = "planned"
ENGINE_COMPILED = "compiled"

#: Recognized engine modes, in increasing order of sophistication.
ENGINE_MODES = (ENGINE_NAIVE, ENGINE_PLANNED, ENGINE_COMPILED)

DEFAULT_ENGINE = ENGINE_COMPILED


def _validate(mode: str) -> str:
    if mode not in ENGINE_MODES:
        raise ReproError(
            f"unknown engine mode {mode!r}; expected one of {', '.join(ENGINE_MODES)}"
        )
    return mode


def _initial_engine() -> str:
    requested = os.environ.get("REPRO_ENGINE", "").strip().lower()
    return _validate(requested) if requested else DEFAULT_ENGINE


_ACTIVE_ENGINE = _initial_engine()


def active_engine() -> str:
    """The engine mode every evaluation entry point currently dispatches to."""
    return _ACTIVE_ENGINE


def set_engine(mode: str) -> str:
    """Set the active engine mode; returns the previous mode."""
    global _ACTIVE_ENGINE
    previous = _ACTIVE_ENGINE
    _ACTIVE_ENGINE = _validate(mode)
    return previous


@contextmanager
def engine_scope(mode: Optional[str]) -> Iterator[str]:
    """Temporarily activate an engine mode (``None`` keeps the current one).

    The scope is how the mode threads through the layered entry points
    (``evaluate_many``, ``decide_pairs``, :class:`~repro.session.Workspace`)
    and how worker processes restore the parent's mode around each task.
    """
    if mode is None:
        yield _ACTIVE_ENGINE
        return
    previous = set_engine(mode)
    try:
        yield mode
    finally:
        set_engine(previous)
