"""Join planning for condition evaluation.

Both evaluation engines (the concrete engine in :mod:`repro.engine.evaluator`
and the symbolic engine in :mod:`repro.engine.symbolic`) enumerate the
satisfying assignments of a condition by extending partial assignments literal
by literal.  This module computes, once per condition, the *order* in which the
literals are processed; the engines then merely execute the resulting plan.

A plan is a sequence of four kinds of steps:

* :class:`AtomStep` — join a positive relational atom.  The step records which
  argument positions are already bound when the step runs (``bound_columns``),
  so the executor can probe a per-predicate hash index on exactly those
  columns instead of scanning the full relation.
* :class:`BindStep` — bind a variable through an equality comparison whose
  other side is already bound (safety allows variables defined only by
  equalities).
* :class:`CompareStep` — filter by a comparison whose two sides are bound.
* :class:`NegationStep` — filter by a negated atom all of whose variables are
  bound (an anti-join membership test).

The planner is greedy: at every point it first emits every binding, comparison
and negation step that has become runnable (filters are always cheaper than
joins, so they run as early as their variables allow), and only then picks the
next positive atom — the one with the most already-bound argument positions,
breaking ties towards the *estimated* smallest probe result.  This pushes
selections below the join and turns Cartesian products into index lookups
whenever the condition's join graph allows it.

The estimate uses join selectivity when the caller can supply it: with a
``distinct_count`` statistic (cheap to read off the columnar stores of
:mod:`repro.engine.columnar`), an atom probed on bound columns is costed at
``rows / max(distinct(column) for bound columns)`` — the classic uniform
equality-selectivity model — instead of its raw size, so a large relation with
a near-key bound column beats a smaller one probed on a low-cardinality
column.  Without the statistic the estimate degenerates to the raw size,
reproducing the original size-only tie-break exactly.

Plans depend on the condition and, through the tie-breaking rule, on the
relations' size/distinct *statistics* only — never on their contents — so
they are cached per ``(condition, statistics signature)`` pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Optional, Union

from ..datalog.atoms import Comparison, RelationalAtom
from ..datalog.conditions import Condition
from ..datalog.terms import Constant, Term, Variable


@dataclass(frozen=True)
class AtomStep:
    """Join a positive atom, probing an index on the bound columns."""

    atom: RelationalAtom
    #: Argument positions whose terms are bound before the step runs.  The
    #: executor probes ``index(atom.predicate, bound_columns)``; an empty tuple
    #: means a full scan of the relation (nothing bound yet).
    bound_columns: tuple[int, ...]


@dataclass(frozen=True)
class BindStep:
    """Bind ``variable`` to the value of ``source`` (an equality definition)."""

    variable: Variable
    source: Term


@dataclass(frozen=True)
class CompareStep:
    """Filter assignments by a fully bound comparison."""

    comparison: Comparison


@dataclass(frozen=True)
class NegationStep:
    """Filter assignments by a fully bound negated atom."""

    atom: RelationalAtom


Step = Union[AtomStep, BindStep, CompareStep, NegationStep]


@dataclass(frozen=True)
class Plan:
    """An ordered execution plan for one condition.

    ``resolvable`` is ``False`` when some variable can never become bound (the
    condition is unsafe); executing such a plan yields no assignments, matching
    the behaviour of the pre-planner engine.
    """

    condition: Condition
    steps: tuple[Step, ...]
    resolvable: bool = True


def plan_condition(
    condition: Condition,
    relation_size: Callable[[str], int],
    distinct_count: Optional[Callable[[str, int], int]] = None,
) -> Plan:
    """Compute (or fetch from cache) the execution plan for ``condition``.

    ``relation_size`` maps a predicate name to the number of rows it currently
    holds; ``distinct_count`` (optional) maps ``(predicate, column)`` to the
    number of distinct values in that column.  Both only influence
    tie-breaking between equally-bound atoms: with distinct counts the
    planner estimates the probe result size as ``rows / distinct`` of the
    most selective bound column, without them it falls back to the raw size.
    """
    arities: dict[str, int] = {}
    for atom in condition.positive_atoms:
        arities[atom.predicate] = max(arities.get(atom.predicate, 0), atom.arity)
    signature = tuple(
        sorted(
            (
                predicate,
                relation_size(predicate),
                tuple(distinct_count(predicate, column) for column in range(arities[predicate]))
                if distinct_count is not None
                else None,
            )
            for predicate in condition.positive_predicates()
        )
    )
    return _plan_condition_cached(condition, signature)


@lru_cache(maxsize=4096)
def _plan_condition_cached(
    condition: Condition,
    stats_signature: tuple[tuple[str, int, Optional[tuple[int, ...]]], ...],
) -> Plan:
    sizes = {predicate: size for predicate, size, _distincts in stats_signature}
    distincts = {predicate: entry for predicate, _size, entry in stats_signature}
    steps: list[Step] = []
    bound: set[Variable] = set()

    remaining_atoms = list(condition.positive_atoms)
    remaining_negated = list(condition.negated_atoms)
    # Equalities may either filter (both sides bound) or define a variable
    # (one side bound); other comparisons only filter.
    remaining_comparisons = list(condition.comparisons)

    def is_bound(term: Term) -> bool:
        return isinstance(term, Constant) or term in bound

    def emit_runnable_filters() -> None:
        """Emit every bind / compare / negation step that has become runnable,
        iterating to a fixed point (equality chains unlock one another)."""
        progress = True
        while progress:
            progress = False
            kept_comparisons = []
            for comparison in remaining_comparisons:
                left_bound = is_bound(comparison.left)
                right_bound = is_bound(comparison.right)
                if left_bound and right_bound:
                    steps.append(CompareStep(comparison))
                    progress = True
                elif comparison.is_equality and left_bound and isinstance(comparison.right, Variable):
                    steps.append(BindStep(comparison.right, comparison.left))
                    bound.add(comparison.right)
                    progress = True
                elif comparison.is_equality and right_bound and isinstance(comparison.left, Variable):
                    steps.append(BindStep(comparison.left, comparison.right))
                    bound.add(comparison.left)
                    progress = True
                else:
                    kept_comparisons.append(comparison)
            remaining_comparisons[:] = kept_comparisons
            kept_negated = []
            for atom in remaining_negated:
                if all(is_bound(argument) for argument in atom.arguments):
                    steps.append(NegationStep(atom))
                    progress = True
                else:
                    kept_negated.append(atom)
            remaining_negated[:] = kept_negated

    def estimated_rows(atom: RelationalAtom, bound_positions: list[int]) -> int:
        """The expected number of rows a probe on the bound columns returns:
        ``rows / distinct`` of the most selective bound column under the
        uniform-distribution model, or the raw size without statistics."""
        size = sizes.get(atom.predicate, 0)
        per_column = distincts.get(atom.predicate)
        if per_column is None or not bound_positions:
            return size
        selectivity = max(
            (per_column[position] for position in bound_positions if position < len(per_column)),
            default=0,
        )
        return size // max(1, selectivity)

    emit_runnable_filters()
    while remaining_atoms:
        best_index = 0
        best_key: tuple[int, int, int] | None = None
        for index, atom in enumerate(remaining_atoms):
            bound_positions = [
                position
                for position, argument in enumerate(atom.arguments)
                if is_bound(argument)
            ]
            # Maximise bound positions, then prefer the smallest estimated
            # probe result, then the smaller relation.
            key = (
                -len(bound_positions),
                estimated_rows(atom, bound_positions),
                sizes.get(atom.predicate, 0),
            )
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        atom = remaining_atoms.pop(best_index)
        bound_columns = tuple(
            position for position, argument in enumerate(atom.arguments) if is_bound(argument)
        )
        steps.append(AtomStep(atom, bound_columns))
        bound |= atom.variables()
        emit_runnable_filters()

    # Leftover literals mean some variable can never be bound (the condition
    # is unsafe); ``resolvable=False`` makes the executors yield nothing.
    resolvable = not remaining_comparisons and not remaining_negated
    return Plan(condition=condition, steps=tuple(steps), resolvable=resolvable)


def clear_plan_cache() -> None:
    """Drop all cached plans (used by benchmarks for cold-cache timings)."""
    _plan_condition_cached.cache_clear()


def plan_cache_stats() -> dict[str, int]:
    """``{"entries", "builds", "hits"}`` for the plan cache.

    Read straight off ``lru_cache.cache_info()`` — ``plan_condition`` sits on
    the warm compiled path, so unlike the kernel/store caches these counters
    are not mirrored into the metrics registry per call; the registry's
    hierarchical report samples this view instead (``clear_plan_cache`` resets
    it along with the cache, matching the other engine-scope counters).
    """
    info = _plan_condition_cached.cache_info()
    return {"entries": info.currsize, "builds": info.misses, "hits": info.hits}
