"""Join planning for condition evaluation.

Both evaluation engines (the concrete engine in :mod:`repro.engine.evaluator`
and the symbolic engine in :mod:`repro.engine.symbolic`) enumerate the
satisfying assignments of a condition by extending partial assignments literal
by literal.  This module computes, once per condition, the *order* in which the
literals are processed; the engines then merely execute the resulting plan.

A plan is a sequence of four kinds of steps:

* :class:`AtomStep` — join a positive relational atom.  The step records which
  argument positions are already bound when the step runs (``bound_columns``),
  so the executor can probe a per-predicate hash index on exactly those
  columns instead of scanning the full relation.
* :class:`BindStep` — bind a variable through an equality comparison whose
  other side is already bound (safety allows variables defined only by
  equalities).
* :class:`CompareStep` — filter by a comparison whose two sides are bound.
* :class:`NegationStep` — filter by a negated atom all of whose variables are
  bound (an anti-join membership test).

The planner is greedy: at every point it first emits every binding, comparison
and negation step that has become runnable (filters are always cheaper than
joins, so they run as early as their variables allow), and only then picks the
next positive atom — the one with the most already-bound argument positions,
breaking ties towards the smaller relation.  This pushes selections below the
join and turns Cartesian products into index lookups whenever the condition's
join graph allows it.

Plans depend on the condition and, through the tie-breaking rule, on the
*sizes* of the relations only — never on their contents — so they are cached
per ``(condition, size signature)`` pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Union

from ..datalog.atoms import Comparison, RelationalAtom
from ..datalog.conditions import Condition
from ..datalog.terms import Constant, Term, Variable


@dataclass(frozen=True)
class AtomStep:
    """Join a positive atom, probing an index on the bound columns."""

    atom: RelationalAtom
    #: Argument positions whose terms are bound before the step runs.  The
    #: executor probes ``index(atom.predicate, bound_columns)``; an empty tuple
    #: means a full scan of the relation (nothing bound yet).
    bound_columns: tuple[int, ...]


@dataclass(frozen=True)
class BindStep:
    """Bind ``variable`` to the value of ``source`` (an equality definition)."""

    variable: Variable
    source: Term


@dataclass(frozen=True)
class CompareStep:
    """Filter assignments by a fully bound comparison."""

    comparison: Comparison


@dataclass(frozen=True)
class NegationStep:
    """Filter assignments by a fully bound negated atom."""

    atom: RelationalAtom


Step = Union[AtomStep, BindStep, CompareStep, NegationStep]


@dataclass(frozen=True)
class Plan:
    """An ordered execution plan for one condition.

    ``resolvable`` is ``False`` when some variable can never become bound (the
    condition is unsafe); executing such a plan yields no assignments, matching
    the behaviour of the pre-planner engine.
    """

    condition: Condition
    steps: tuple[Step, ...]
    resolvable: bool = True


def plan_condition(condition: Condition, relation_size: Callable[[str], int]) -> Plan:
    """Compute (or fetch from cache) the execution plan for ``condition``.

    ``relation_size`` maps a predicate name to the number of rows it currently
    holds; it only influences tie-breaking between equally-bound atoms.
    """
    signature = tuple(
        sorted((predicate, relation_size(predicate)) for predicate in condition.positive_predicates())
    )
    return _plan_condition_cached(condition, signature)


@lru_cache(maxsize=4096)
def _plan_condition_cached(
    condition: Condition, size_signature: tuple[tuple[str, int], ...]
) -> Plan:
    sizes = dict(size_signature)
    steps: list[Step] = []
    bound: set[Variable] = set()

    remaining_atoms = list(condition.positive_atoms)
    remaining_negated = list(condition.negated_atoms)
    # Equalities may either filter (both sides bound) or define a variable
    # (one side bound); other comparisons only filter.
    remaining_comparisons = list(condition.comparisons)

    def is_bound(term: Term) -> bool:
        return isinstance(term, Constant) or term in bound

    def emit_runnable_filters() -> None:
        """Emit every bind / compare / negation step that has become runnable,
        iterating to a fixed point (equality chains unlock one another)."""
        progress = True
        while progress:
            progress = False
            kept_comparisons = []
            for comparison in remaining_comparisons:
                left_bound = is_bound(comparison.left)
                right_bound = is_bound(comparison.right)
                if left_bound and right_bound:
                    steps.append(CompareStep(comparison))
                    progress = True
                elif comparison.is_equality and left_bound and isinstance(comparison.right, Variable):
                    steps.append(BindStep(comparison.right, comparison.left))
                    bound.add(comparison.right)
                    progress = True
                elif comparison.is_equality and right_bound and isinstance(comparison.left, Variable):
                    steps.append(BindStep(comparison.left, comparison.right))
                    bound.add(comparison.left)
                    progress = True
                else:
                    kept_comparisons.append(comparison)
            remaining_comparisons[:] = kept_comparisons
            kept_negated = []
            for atom in remaining_negated:
                if all(is_bound(argument) for argument in atom.arguments):
                    steps.append(NegationStep(atom))
                    progress = True
                else:
                    kept_negated.append(atom)
            remaining_negated[:] = kept_negated

    emit_runnable_filters()
    while remaining_atoms:
        best_index = 0
        best_key: tuple[int, int] | None = None
        for index, atom in enumerate(remaining_atoms):
            bound_count = sum(1 for argument in atom.arguments if is_bound(argument))
            # Maximise bound positions, then prefer the smaller relation.
            key = (-bound_count, sizes.get(atom.predicate, 0))
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        atom = remaining_atoms.pop(best_index)
        bound_columns = tuple(
            position for position, argument in enumerate(atom.arguments) if is_bound(argument)
        )
        steps.append(AtomStep(atom, bound_columns))
        bound |= atom.variables()
        emit_runnable_filters()

    # Leftover literals mean some variable can never be bound (the condition
    # is unsafe); ``resolvable=False`` makes the executors yield nothing.
    resolvable = not remaining_comparisons and not remaining_negated
    return Plan(condition=condition, steps=tuple(steps), resolvable=resolvable)


def clear_plan_cache() -> None:
    """Drop all cached plans (used by benchmarks for cold-cache timings)."""
    _plan_condition_cached.cache_clear()
