"""Evaluation of queries over concrete databases.

This module implements the semantics of Sections 3.2 and 3.4 of the paper:

* the set of satisfying assignments ``Γ(q, D)`` (with *labels* recording which
  disjunct each assignment satisfies, so that an assignment satisfying several
  disjuncts is counted once per disjunct),
* non-aggregate evaluation under set semantics and under bag-set semantics
  (Chaudhuri–Vardi), and
* aggregate evaluation: grouping the satisfying assignments by the grouping
  variables, restricting each group to the aggregation variables and applying
  the aggregation function.

Assignments are enumerated by executing the plans produced by
:mod:`repro.engine.planner`: positive atoms are joined in planner order,
probing the database's per-column hash indexes on the already-bound columns,
and comparisons / negated atoms filter as soon as their variables are bound.
``Γ(q, D)`` is memoized per ``(query, database)`` pair — both are immutable —
so repeated evaluations (counterexample searches, equivalence matrices) pay
for each distinct pair once.

:func:`naive_satisfying_assignments` retains the original nested-loop engine
as an executable specification; the differential tests and the scaling
benchmark compare the planned engine against it.

Every public entry point dispatches on the active engine mode
(:mod:`repro.engine.modes`): ``naive`` routes Γ through the nested-loop
reference, ``planned`` through the plan interpreter below, and ``compiled``
(the default) through the columnar kernels of :mod:`repro.engine.compile` —
with the set / bag-set / aggregate evaluators additionally skipping
:class:`LabeledAssignment` materialization entirely and projecting inside the
kernels.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator, Mapping, Optional

from ..aggregates.functions import AggregationFunction, get_function
from ..caches import run_registered_clears
from ..datalog.atoms import RelationalAtom
from ..datalog.conditions import Condition
from ..datalog.database import Database
from ..datalog.queries import Query
from ..datalog.terms import Constant, Term, Variable
from ..domains import NumericValue
from ..errors import EvaluationError
from ..obs import REGISTRY as _OBS
from . import compile as _compile
from .modes import ENGINE_COMPILED, ENGINE_NAIVE, active_engine
from .planner import AtomStep, BindStep, CompareStep, NegationStep, Plan, plan_condition


@dataclass(frozen=True)
class LabeledAssignment:
    """A satisfying assignment together with the disjunct it satisfies.

    The paper's Γ(q, D) is a set of *labeled* assignments: the same variable
    mapping appears once for every disjunct it satisfies (Section 3.4).
    """

    mapping: tuple[tuple[Variable, NumericValue], ...]
    disjunct_index: int

    def __post_init__(self) -> None:
        # Dict-backed lookup for value_of; equality and hashing still use the
        # canonical sorted tuple, so the cache is invisible to callers.
        object.__setattr__(self, "_lookup", dict(self.mapping))

    @classmethod
    def from_dict(cls, mapping: Mapping[Variable, NumericValue], disjunct_index: int):
        ordered = tuple(sorted(mapping.items(), key=lambda item: item[0].name))
        return cls(ordered, disjunct_index)

    def as_dict(self) -> dict[Variable, NumericValue]:
        return dict(self.mapping)

    def value_of(self, term: Term) -> NumericValue:
        if isinstance(term, Constant):
            return term.value
        try:
            return self._lookup[term]  # type: ignore[attr-defined]
        except KeyError:
            raise EvaluationError(f"assignment does not bind {term}") from None

    def values_of(self, terms: Iterable[Term]) -> tuple[NumericValue, ...]:
        return tuple(self.value_of(term) for term in terms)


def satisfying_assignments(query: Query, database: Database) -> list[LabeledAssignment]:
    """Γ(q, D): all labeled satisfying assignments of the query over the
    database, computed by the active engine."""
    mode = active_engine()
    if mode == ENGINE_NAIVE:
        return naive_satisfying_assignments(query, database)
    return list(_satisfying_assignments_cached(query, database, mode))


# A deliberately smaller cache than the symbolic engine's: concrete databases
# from counterexample searches are mostly one-shot (each trial generates a
# fresh random database, hit again only when it becomes a witness), so a large
# cache would mainly retain dead (query, database, assignments) triples.  The
# engine mode is part of the key so differential runs that switch modes never
# read a result the other engine produced.
@lru_cache(maxsize=4096)
def _satisfying_assignments_cached(
    query: Query, database: Database, mode: str
) -> tuple[LabeledAssignment, ...]:
    if mode == ENGINE_COMPILED:
        return tuple(_compile.compiled_satisfying_assignments(query, database))
    results: list[LabeledAssignment] = []
    for index, disjunct in enumerate(query.disjuncts):
        plan = plan_condition(disjunct, lambda predicate: len(database.relation(predicate)))
        for mapping in execute_plan(plan, database):
            results.append(LabeledAssignment.from_dict(mapping, index))
    return tuple(results)


def clear_evaluation_caches() -> None:
    """Drop every concrete evaluation cache: the memoized Γ(q, D) results,
    the compiled kernels, the columnar stores, and the parallel worker's
    run-setup memo (used for cold-cache benchmarks and by tests that must
    observe re-compilation).

    The kernel/store/setup-memo drops run through the cache registry
    (:mod:`repro.caches`): every module-level cache registered under this
    entry resets here, which is what the ``cache-discipline`` checker of
    :mod:`repro.analysis` enforces statically.

    Reset semantics for the metrics registry (pinned by the observability
    regression tests): the counters that describe these caches reset with
    them — ``engine.kernel.*`` via ``clear_kernel_cache``, ``engine.store.*``
    via ``clear_store_cache``, ``parallel.setup.*`` via ``clear_setup_memo``,
    plus the vector-vs-loop ``engine.dispatch.*`` tallies here.  Everything
    else survives: the shared-Γ counters (``engine.gamma.*``, owned by
    ``clear_symbolic_caches``), and the ``sweep.``/``parallel.pool.``/
    ``worker.``/``session.`` scopes, which describe work performed rather
    than cache state.
    """
    _satisfying_assignments_cached.cache_clear()
    run_registered_clears("clear_evaluation_caches")
    _OBS.reset("engine.dispatch.")


# ----------------------------------------------------------------------
# Plan execution (concrete engine)
# ----------------------------------------------------------------------
def execute_plan(plan: Plan, database: Database) -> Iterator[dict[Variable, NumericValue]]:
    """Enumerate the assignments satisfying the plan's condition over ``database``."""
    if not plan.resolvable:
        return
    partials: list[dict[Variable, NumericValue]] = [{}]
    for step in plan.steps:
        if isinstance(step, AtomStep):
            partials = _join_atom(step, database, partials)
        elif isinstance(step, BindStep):
            source = step.source
            if isinstance(source, Constant):
                value = source.value
                for partial in partials:
                    partial[step.variable] = value
            else:
                for partial in partials:
                    partial[step.variable] = partial[source]
        elif isinstance(step, CompareStep):
            comparison = step.comparison
            op = comparison.op
            partials = [
                partial
                for partial in partials
                if op.holds(
                    _require_value(comparison.left, partial),
                    _require_value(comparison.right, partial),
                )
            ]
        else:  # NegationStep
            atom = step.atom
            partials = [
                partial
                for partial in partials
                if not database.contains(
                    atom.predicate,
                    tuple(_require_value(argument, partial) for argument in atom.arguments),
                )
            ]
        if not partials:
            return
    yield from partials


def _join_atom(
    step: AtomStep, database: Database, partials: list[dict[Variable, NumericValue]]
) -> list[dict[Variable, NumericValue]]:
    atom = step.atom
    extended: list[dict[Variable, NumericValue]] = []
    if step.bound_columns:
        index = database.index(atom.predicate, step.bound_columns)
        arguments = [atom.arguments[column] for column in step.bound_columns]
        for partial in partials:
            key = tuple(_require_value(argument, partial) for argument in arguments)
            for row in index.get(key, ()):
                match = _match_atom(atom, row, partial)
                if match is not None:
                    extended.append(match)
    else:
        relation = database.relation(atom.predicate)
        for partial in partials:
            for row in relation:
                match = _match_atom(atom, row, partial)
                if match is not None:
                    extended.append(match)
    return extended


def _match_atom(
    atom: RelationalAtom, row: tuple, partial: Mapping[Variable, NumericValue]
) -> Optional[dict[Variable, NumericValue]]:
    if len(row) != atom.arity:
        return None
    extended = dict(partial)
    for argument, value in zip(atom.arguments, row):
        if isinstance(argument, Constant):
            if argument.value != value:
                return None
        else:
            bound = extended.get(argument)
            if bound is None:
                extended[argument] = value
            elif bound != value:
                return None
    return extended


def _maybe_value(term: Term, assignment: Mapping[Variable, NumericValue]) -> Optional[NumericValue]:
    if isinstance(term, Constant):
        return term.value
    return assignment.get(term)


def _require_value(term: Term, assignment: Mapping[Variable, NumericValue]) -> NumericValue:
    value = _maybe_value(term, assignment)
    if value is None:
        raise EvaluationError(f"unbound term {term} during evaluation")
    return value


# ----------------------------------------------------------------------
# Naive reference engine
# ----------------------------------------------------------------------
def naive_satisfying_assignments(query: Query, database: Database) -> list[LabeledAssignment]:
    """Γ(q, D) computed by the original nested-loop engine.

    Kept as an executable specification of the semantics: it joins positive
    atoms by full relation scans (largest arity first), resolves
    equality-defined variables afterwards, and only then filters by the
    comparisons and negated atoms.  The differential property tests and
    ``benchmarks/bench_evaluator_scaling.py`` compare the planned engine
    against this reference.
    """
    results: list[LabeledAssignment] = []
    for index, disjunct in enumerate(query.disjuncts):
        for mapping in _naive_assignments_for_condition(disjunct, database):
            results.append(LabeledAssignment.from_dict(mapping, index))
    return results


def _naive_assignments_for_condition(
    condition: Condition, database: Database
) -> Iterator[dict[Variable, NumericValue]]:
    positive = sorted(condition.positive_atoms, key=lambda atom: -atom.arity)
    partial_assignments: list[dict[Variable, NumericValue]] = [{}]
    for atom in positive:
        relation = database.relation(atom.predicate)
        extended: list[dict[Variable, NumericValue]] = []
        for partial in partial_assignments:
            for row in relation:
                match = _match_atom(atom, row, partial)
                if match is not None:
                    extended.append(match)
        partial_assignments = extended
        if not partial_assignments:
            return
    # Resolve variables bound only through equality comparisons.
    for partial in partial_assignments:
        for resolved in _resolve_equalities(condition, partial):
            if _check_residual_literals(condition, resolved, database):
                yield resolved


def _resolve_equalities(
    condition: Condition, partial: dict[Variable, NumericValue]
) -> Iterator[dict[Variable, NumericValue]]:
    """Bind variables that only occur in equality comparisons (safety allows
    a variable to be defined by equating it with a bound variable or a
    constant)."""
    resolved = dict(partial)
    pending = [c for c in condition.comparisons if c.is_equality]
    progress = True
    while progress and pending:
        progress = False
        remaining = []
        for comparison in pending:
            left_value = _maybe_value(comparison.left, resolved)
            right_value = _maybe_value(comparison.right, resolved)
            if left_value is not None and right_value is None and isinstance(comparison.right, Variable):
                resolved[comparison.right] = left_value
                progress = True
            elif right_value is not None and left_value is None and isinstance(comparison.left, Variable):
                resolved[comparison.left] = right_value
                progress = True
            else:
                remaining.append(comparison)
        pending = remaining
    missing = condition.variables() - set(resolved)
    if missing:
        # Unsafe conditions are rejected at construction time, so reaching this
        # point means an equality chain could not be resolved; no assignment.
        return
    yield resolved


def _check_residual_literals(
    condition: Condition, assignment: Mapping[Variable, NumericValue], database: Database
) -> bool:
    for atom in condition.negated_atoms:
        values = tuple(_require_value(argument, assignment) for argument in atom.arguments)
        if database.contains(atom.predicate, values):
            return False
    for comparison in condition.comparisons:
        left = _require_value(comparison.left, assignment)
        right = _require_value(comparison.right, assignment)
        if not comparison.op.holds(left, right):
            return False
    return True


# ----------------------------------------------------------------------
# Non-aggregate semantics
# ----------------------------------------------------------------------
def evaluate_set(query: Query, database: Database) -> set[tuple]:
    """Set semantics: the relation q^D of Equation (1)."""
    if active_engine() == ENGINE_COMPILED:
        # Projection happens inside the kernels — Γ is never materialized.
        return _compile.compiled_evaluate_set(query, database)
    results: set[tuple] = set()
    for assignment in satisfying_assignments(query, database):
        results.add(assignment.values_of(query.head_terms))
    return results


def evaluate_bag_set(query: Query, database: Database) -> Counter:
    """Bag-set semantics: each answer tuple with its multiplicity."""
    if active_engine() == ENGINE_COMPILED:
        return _compile.compiled_evaluate_bag_set(query, database)
    results: Counter = Counter()
    for assignment in satisfying_assignments(query, database):
        results[assignment.values_of(query.head_terms)] += 1
    return results


# ----------------------------------------------------------------------
# Aggregate semantics
# ----------------------------------------------------------------------
def group_assignments(
    query: Query, database: Database
) -> dict[tuple, list[LabeledAssignment]]:
    """Γ_d̄(q, D) for every group tuple d̄ produced by the query."""
    groups: dict[tuple, list[LabeledAssignment]] = {}
    for assignment in satisfying_assignments(query, database):
        key = assignment.values_of(query.head_terms)
        groups.setdefault(key, []).append(assignment)
    return groups


def evaluate_aggregate(
    query: Query,
    database: Database,
    function: Optional[AggregationFunction] = None,
) -> dict[tuple, object]:
    """Aggregate semantics (Section 3.4): a mapping from each group tuple d̄
    to the aggregate value α(ȳ) ↓ Γ_d̄(q, D)."""
    if query.aggregate is None:
        raise EvaluationError("evaluate_aggregate requires an aggregate query")
    if function is None:
        function = get_function(query.aggregate.function)
    if active_engine() == ENGINE_COMPILED:
        return _compile.compiled_evaluate_aggregate(query, database, function)
    aggregation_variables = query.aggregation_variables()
    results: dict[tuple, object] = {}
    for key, assignments in group_assignments(query, database).items():
        bag = [assignment.values_of(aggregation_variables) for assignment in assignments]
        results[key] = function.apply(bag)
    return results


def evaluate(query: Query, database: Database):
    """Evaluate a query with the semantics appropriate to its shape.

    Aggregate queries return a ``dict`` from group tuples to aggregate values;
    non-aggregate queries return the set of answer tuples.
    """
    if query.is_aggregate:
        return evaluate_aggregate(query, database)
    return evaluate_set(query, database)


def results_equal(query: Query, other: Query, database: Database) -> bool:
    """Whether two queries return identical results over the database."""
    if query.is_aggregate != other.is_aggregate:
        raise EvaluationError("cannot compare an aggregate query with a non-aggregate query")
    return evaluate(query, database) == evaluate(other, database)
