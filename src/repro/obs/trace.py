"""Span-based decision tracing, off by default.

``with span("sweep.enumerate", pairs=12):`` wraps a stage of the decision
pipeline.  When tracing is disabled — the default — ``span()`` returns a
shared null context manager without allocating anything, so instrumented
call sites cost one function call plus a ``with`` enter/exit.  That cost is
what the <3% overhead floor in ``bench_compiled_engine.py`` measures.

Tracing is enabled by pointing ``REPRO_TRACE=<path>`` at a file (read at
import, and again by spawned workers importing fresh), or programmatically
via :func:`enable` / :func:`disable` for tests.  Each span emits two JSONL
events to the sink::

    {"event": "begin", "span": "sweep.enumerate", "id": 3, "pid": 1234,
     "t": 8.113071, "pairs": 12}
    {"event": "end",   "span": "sweep.enumerate", "id": 3, "pid": 1234,
     "t": 8.241554, "dur_s": 0.128483, "subsets": 96}

``t`` is ``time.monotonic()`` — timestamps are monotonic per process and
*not* comparable across processes.  ``(pid, id)`` identifies a span:
forked pool workers inherit the parent's open sink (append mode, one
``write()`` per event, flushed) and stamp their own pid, so a single trace
file interleaves parent and worker events without clobbering.  Attributes
passed to ``span()`` ride on the begin event; attributes added with
``Span.note()`` ride on the end event — use it for results only known when
the stage finishes (a verdict, a subset count).

:func:`validate_trace` is the schema check used by the tests and the CI
trace leg: well-formed JSON per line, only known event types, balanced
begin/end per ``(pid, id)`` with matching span names, and per-pid
monotonically non-decreasing timestamps.
"""

from __future__ import annotations

import json
import os
from time import monotonic
from types import TracebackType
from typing import IO, Iterable, Optional, Union

#: Environment variable naming the trace sink.  Set it to a writable file
#: path to record one JSONL event per span begin/end.
TRACE_ENV = "REPRO_TRACE"

_sink: Optional[IO[str]] = None
_next_id = 0


def enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _sink is not None


def enable(path: str) -> None:
    """Start recording spans to ``path`` (append mode, so a forked worker
    re-enabling onto the same file is safe)."""
    global _sink
    disable()
    _sink = open(path, "a", encoding="utf-8")


def disable() -> None:
    """Stop recording and close the sink."""
    global _sink
    if _sink is not None:
        try:
            _sink.close()
        except OSError:  # pragma: no cover - best-effort close
            pass
        _sink = None


class Span:
    """A live span: emits ``begin`` on enter and ``end`` (with ``dur_s`` and
    any :meth:`note` attributes) on exit."""

    __slots__ = ("name", "ident", "start", "_begin_attrs", "_end_attrs")

    name: str
    ident: int
    start: float

    def __init__(self, name: str, attrs: dict[str, object]) -> None:
        self.name = name
        self._begin_attrs = attrs
        self._end_attrs: Optional[dict[str, object]] = None

    def note(self, **attrs: object) -> None:
        """Attach result attributes to the forthcoming ``end`` event."""
        if self._end_attrs is None:
            self._end_attrs = attrs
        else:
            self._end_attrs.update(attrs)

    def __enter__(self) -> "Span":
        global _next_id
        _next_id += 1
        self.ident = _next_id
        self.start = monotonic()
        _emit("begin", self.name, self.ident, self.start, self._begin_attrs)
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        now = monotonic()
        end_attrs: dict[str, object] = dict(self._end_attrs) if self._end_attrs else {}
        end_attrs["dur_s"] = round(now - self.start, 9)
        if exc_type is not None:
            end_attrs["error"] = exc_type.__name__
        _emit("end", self.name, self.ident, now, end_attrs)


class _NullSpan:
    """The disabled-tracing span: a shared, do-nothing context manager."""

    __slots__ = ()

    def note(self, **attrs: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        pass


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs: object) -> Union[Span, _NullSpan]:
    """A context manager tracing one pipeline stage.

    Returns the shared null span when tracing is disabled — the call sites
    on warm paths rely on this being allocation-free.
    """
    if _sink is None:
        return _NULL_SPAN
    return Span(name, attrs)


def _emit(event: str, name: str, ident: int, t: float, attrs: dict[str, object]) -> None:
    sink = _sink
    if sink is None:  # disabled mid-span; drop the event
        return
    record = {"event": event, "span": name, "id": ident, "pid": os.getpid(),
              "t": round(t, 9)}
    record.update(attrs)
    try:
        sink.write(json.dumps(record, default=str) + "\n")
        sink.flush()
    except (OSError, ValueError):  # pragma: no cover - sink died; disable
        disable()


# ----------------------------------------------------------------------
# Trace validation (the schema check)
# ----------------------------------------------------------------------

def validate_trace(lines: Iterable[str]) -> list[str]:
    """Validate JSONL trace content; returns a list of error strings.

    Checks: every line parses as a JSON object; ``event`` is ``begin`` or
    ``end``; required keys (``span``, ``id``, ``pid``, ``t``) are present
    and well-typed; ``end`` events carry ``dur_s``; per ``(pid, id)`` the
    begin/end pair is balanced with matching span names; per pid the
    timestamps are monotonically non-decreasing.
    """
    errors: list[str] = []
    open_spans: dict[tuple[int, int], str] = {}
    last_t: dict[int, float] = {}
    count = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        count += 1
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: not valid JSON ({exc.msg})")
            continue
        if not isinstance(record, dict):
            errors.append(f"line {lineno}: event is not a JSON object")
            continue
        event = record.get("event")
        if event not in ("begin", "end"):
            errors.append(f"line {lineno}: unknown event {event!r}")
            continue
        name = record.get("span")
        ident = record.get("id")
        pid = record.get("pid")
        t = record.get("t")
        if not isinstance(name, str):
            errors.append(f"line {lineno}: missing/invalid 'span'")
            continue
        if not isinstance(ident, int) or not isinstance(pid, int):
            errors.append(f"line {lineno}: missing/invalid 'id'/'pid'")
            continue
        if not isinstance(t, (int, float)):
            errors.append(f"line {lineno}: missing/invalid 't'")
            continue
        if pid in last_t and t < last_t[pid]:
            errors.append(
                f"line {lineno}: timestamp {t} goes backwards for pid {pid}"
            )
        last_t[pid] = float(t)
        key = (pid, ident)
        if event == "begin":
            if key in open_spans:
                errors.append(f"line {lineno}: duplicate begin for {key}")
            open_spans[key] = name
        else:
            if "dur_s" not in record:
                errors.append(f"line {lineno}: end event missing 'dur_s'")
            opened = open_spans.pop(key, None)
            if opened is None:
                errors.append(f"line {lineno}: end without begin for {key}")
            elif opened != name:
                errors.append(
                    f"line {lineno}: end span {name!r} does not match "
                    f"begin span {opened!r} for {key}"
                )
    for key, name in open_spans.items():
        errors.append(f"unclosed span {name!r} for (pid, id)={key}")
    if count == 0:
        errors.append("trace is empty (no events)")
    return errors


def validate_trace_file(path: str) -> list[str]:
    """Validate the trace file at ``path``; see :func:`validate_trace`."""
    with open(path, "r", encoding="utf-8") as handle:
        return validate_trace(handle)


# Honour REPRO_TRACE at import, so any entry point (pytest, benches, user
# scripts) picks up tracing without code changes.  Spawned workers re-import
# and re-open the same file in append mode; forked workers inherit the
# parent's handle directly.
_env_path = os.environ.get(TRACE_ENV)
if _env_path:
    try:
        enable(_env_path)
    except OSError:  # unwritable path: stay disabled rather than crash
        _sink = None
    else:
        import atexit

        atexit.register(disable)
