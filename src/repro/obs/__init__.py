"""The instrumentation subsystem: metrics registry + decision tracing.

Three pieces, all process-local and dependency-free:

* :data:`REGISTRY` (:class:`MetricsRegistry`) — one dotted-name counter
  space replacing the scattered stats dicts, with snapshot/diff/merge so
  pool workers ship counter deltas back inside task outcomes and the
  parent merges them deterministically under the ``worker.`` scope.
* :func:`span` — env-gated (``REPRO_TRACE=<path>``) JSONL span tracing of
  the decision pipeline, free when disabled.
* :class:`CellExplanation` — the structured provenance record returned by
  ``Workspace.explain(q1, q2)``.

This package must import cleanly with nothing but the stdlib and must not
import any other ``repro`` layer: every layer above (engine, core,
parallel, session, rewriting, benchmarks) imports *it*.
"""

from .explain import CellExplanation, dispatch_class_of, normalization_of
from .registry import REGISTRY, MetricsRegistry
from .trace import (
    TRACE_ENV,
    Span,
    disable,
    enable,
    enabled,
    span,
    validate_trace,
    validate_trace_file,
)

__all__ = [
    "CellExplanation",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "TRACE_ENV",
    "disable",
    "dispatch_class_of",
    "enable",
    "enabled",
    "normalization_of",
    "span",
    "validate_trace",
    "validate_trace_file",
]
