"""Structured provenance for a settled equivalence cell.

`Workspace.explain(q1, q2)` returns a :class:`CellExplanation`: everything
the session knows about *how* a verdict was reached — the dispatch class
the pair was classified into, the full method string, whether count-form
normalization was applied, which sweep group (if any) carried the cell,
which engine evaluated it, whether this verdict was freshly decided or
served from the structural verdict cache, and the witness when the verdict
is NOT_EQUIVALENT.

The dispatch class is recovered from the method string the dispatcher
recorded (`core/equivalence.py` writes one distinctive method per branch),
so explanations stay truthful for verdicts decided before the session
layer existed — nothing here second-guesses the decision procedure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Tuple

#: method-string prefix -> dispatch class, in match order (first hit wins).
#: Mirrors the branch structure of ``core.equivalence.are_equivalent``.
_DISPATCH_CLASSES: Tuple[Tuple[str, str], ...] = (
    ("local-equivalence (set semantics)", "set-semantics"),
    ("local-equivalence (Theorem 6.5/6.6)", "aggregate-local"),
    ("quasilinear isomorphism", "quasilinear"),
    ("counterexample search (different aggregation functions)",
     "different-aggregates"),
    ("different aggregation functions", "different-aggregates"),
    ("counterexample search", "undecided-fragment"),
    ("bounded equivalence", "undecided-fragment"),
    ("search-space budget exceeded", "budget-exceeded"),
)


def dispatch_class_of(method: str) -> str:
    """The dispatch class implied by a dispatcher method string."""
    for prefix, klass in _DISPATCH_CLASSES:
        if method.startswith(prefix):
            return klass
    return "unknown"


def normalization_of(method: str) -> Optional[str]:
    """The normalization suffix recorded in ``method``, if any.

    The dispatcher appends ``" (after sum→count normalization)"`` or
    ``" (after sum→{c}·count normalization)"`` when the count-form
    reduction applied; this recovers that annotation.
    """
    marker = " (after "
    index = method.find(marker)
    if index < 0:
        return None
    return method[index + len(marker):].rstrip(")")


@dataclass(frozen=True)
class CellExplanation:
    """The decision trace of one settled workspace cell."""

    #: The cell, in the (sorted-name) orientation the session stores.
    pair: Tuple[str, str]
    #: ``EQUIVALENT`` / ``NOT_EQUIVALENT`` / ``UNKNOWN`` (enum value string).
    verdict: str
    #: The dispatcher's full method string, verbatim.
    method: str
    #: The dispatch branch the pair was classified into (derived from
    #: ``method``): ``set-semantics``, ``aggregate-local``, ``quasilinear``,
    #: ``different-aggregates``, ``undecided-fragment``, ``budget-exceeded``.
    dispatch_class: str
    #: The count-form normalization annotation, or ``None`` when none applied.
    normalization: Optional[str]
    #: Engine mode the decision ran under (``naive``/``planned``/``compiled``).
    engine: str
    #: ``True`` when the verdict was served from the structural verdict
    #: cache; ``False`` when this cell was freshly decided.
    cache_served: bool
    #: How the cell was decided: ``"sweep:<group>"`` when a shared
    #: single-sweep enumeration carried it, ``"pair"`` for a standalone pair
    #: task, ``"cache"`` when only ever cache-served, ``"unknown"`` for
    #: verdicts that predate provenance recording.
    decision_path: str
    #: 1-based ordinal of the ``equivalences()`` call that decided the cell
    #: (``None`` when unknown).
    decided_in_call: Optional[int]
    #: Domain the decision holds over, and the τ bound when the method
    #: reports one (``None`` otherwise).
    domain: Optional[str] = None
    bound: Optional[int] = None
    #: Free-form details string from the decision procedure.
    details: Optional[str] = None
    #: The counterexample witness for NOT_EQUIVALENT verdicts.
    witness: Optional[Any] = None
    #: Search-effort counters from the decision report (empty when the
    #: branch needed no search).
    search: Mapping[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        """A one-line human rendering of the provenance."""
        origin = "cache" if self.cache_served else self.decision_path
        parts = [
            f"{self.pair[0]} vs {self.pair[1]}: {self.verdict}",
            f"via {self.method}",
            f"[class={self.dispatch_class}, engine={self.engine}, "
            f"origin={origin}]",
        ]
        if self.normalization:
            parts.append(f"normalized ({self.normalization})")
        if self.witness is not None:
            parts.append(f"witness: {self.witness}")
        return " ".join(parts)
