"""CLI for the trace schema check.

``python -m repro.obs.validate trace.jsonl`` exits 0 when the trace is
well-formed (see :func:`repro.obs.trace.validate_trace`) and 1 with one
error per line on stderr otherwise.  CI points this at the trace produced
by the ``REPRO_TRACE`` tier-1 leg.
"""

from __future__ import annotations

import sys

from .trace import validate_trace_file


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate <trace.jsonl>",
              file=sys.stderr)
        return 2
    errors = validate_trace_file(argv[0])
    if errors:
        for error in errors:
            print(f"trace invalid: {error}", file=sys.stderr)
        return 1
    print(f"trace ok: {argv[0]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
