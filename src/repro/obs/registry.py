"""The process-local metrics registry.

One flat, dotted-name counter space replaces the scattered per-module stats
dicts the engine grew PR by PR (``_KERNEL_STATS`` in ``engine/compile``,
``_STORE_STATS`` in ``engine/columnar``, ``_SHARED_GAMMA_STATS`` in
``engine/symbolic``, the ``forks`` attribute on the persistent executor).
Counter names are hierarchical by convention — the first dotted segment is
the *scope* that owns the counter's reset semantics:

* ``engine.`` — evaluation-layer counters (kernel compiles/hits, store
  builds/hits, plan builds/hits, vector-vs-loop dispatches, shared-Γ
  hits/misses).  Reset together with the caches they describe:
  ``clear_kernel_cache`` resets ``engine.kernel.*``, ``clear_store_cache``
  resets ``engine.store.*``, ``clear_plan_cache`` resets ``engine.plan.*``,
  ``clear_symbolic_caches`` resets ``engine.gamma.*``, and
  ``clear_evaluation_caches`` resets the whole evaluation slice it drops
  (kernel + store + dispatch).
* ``sweep.`` — decision-procedure counters (subsets examined / skipped by
  symmetry, ordering classes examined, identities checked).  Never reset by
  the cache clears; they describe *work performed*, not cache state.
* ``parallel.`` — executor counters (pool forks).
* ``session.`` — workspace-layer counters (verdict-cache hits/misses).
  Like ``sweep.``, these survive every cache clear.
* ``worker.`` — the aggregated deltas merged back from pool workers: a
  worker-side increment of ``engine.kernel.compiles`` lands here as
  ``worker.engine.kernel.compiles``.  This is the slice that makes worker
  activity visible — before it existed, everything a forked worker counted
  died with the worker.

The registry is deliberately primitive: a dict of ints behind ``inc``/
``get``, because several of its callers sit on the warm compiled evaluation
path where anything heavier would show up in the benchmarks (the <3%
instrumentation-overhead floor in ``bench_compiled_engine.py`` keeps that
honest).  Snapshot/diff/merge are the worker-aggregation contract: a task
runner snapshots before the task, diffs after, ships the delta inside the
(picklable) outcome, and the parent merges every delta under ``worker.`` —
deterministically, since integer addition commutes, so merged totals never
depend on worker scheduling.
"""

from __future__ import annotations

from typing import Mapping, Optional


class MetricsRegistry:
    """A process-local registry of named integer counters."""

    __slots__ = ("_counters",)

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}

    # ------------------------------------------------------------------
    # The hot path
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Increment ``name`` by ``amount`` (creating it at zero)."""
        counters = self._counters
        counters[name] = counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        """The current value of ``name`` (0 when never incremented)."""
        return self._counters.get(name, 0)

    def total(self, name: str) -> int:
        """``name`` plus its worker-side aggregate ``worker.<name>`` — the
        merged view a session reports (parent work + everything the pool
        workers counted on its behalf)."""
        return self.get(name) + self.get(f"worker.{name}")

    # ------------------------------------------------------------------
    # Snapshot / diff / merge (the worker-aggregation contract)
    # ------------------------------------------------------------------
    def snapshot(self, prefix: Optional[str] = None) -> dict[str, int]:
        """A copy of the current counters (optionally only those under
        ``prefix``), suitable for diffing later."""
        if prefix is None:
            return dict(self._counters)
        return {
            name: value
            for name, value in self._counters.items()
            if name.startswith(prefix)
        }

    def diff(self, before: Mapping[str, int]) -> dict[str, int]:
        """The per-counter growth since ``before`` (zero-growth counters are
        omitted, so deltas pickle small)."""
        delta: dict[str, int] = {}
        for name, value in self._counters.items():
            grown = value - before.get(name, 0)
            if grown:
                delta[name] = grown
        return delta

    def merge(self, delta: Mapping[str, int], prefix: str = "") -> None:
        """Fold a delta into the registry, each name under ``prefix``.

        The parent-side merge of worker outcomes uses ``prefix="worker."`` so
        worker activity stays distinguishable from the parent's own; plain
        ``merge(delta)`` adds in place (used by tests and tooling).
        """
        counters = self._counters
        for name, value in delta.items():
            key = prefix + name
            counters[key] = counters.get(key, 0) + value

    # ------------------------------------------------------------------
    # Reset / reporting
    # ------------------------------------------------------------------
    def reset(self, prefix: Optional[str] = None) -> None:
        """Drop every counter under ``prefix`` (everything when ``None``)."""
        if prefix is None:
            self._counters.clear()
            return
        for name in [name for name in self._counters if name.startswith(prefix)]:
            del self._counters[name]

    def tree(self) -> dict[str, dict[str, int]]:
        """The hierarchical report: counters grouped by their first dotted
        segment — ``{"engine": {"kernel.compiles": 5, ...}, "worker": ...}``.
        Scopes and names iterate sorted, so renderings are stable."""
        grouped: dict[str, dict[str, int]] = {}
        for name in sorted(self._counters):
            scope, _, rest = name.partition(".")
            grouped.setdefault(scope, {})[rest or scope] = self._counters[name]
        return grouped


#: The process-wide registry.  Forked pool workers inherit a copy-on-write
#: image of it; their runners diff against a pre-task snapshot, so inherited
#: parent values never leak into a worker delta.
REGISTRY = MetricsRegistry()
