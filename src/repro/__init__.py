"""repro — equivalence of disjunctive aggregate queries with negation.

A faithful, executable reproduction of

    Sara Cohen, Werner Nutt, Yehoshua Sagiv.
    "Equivalences Among Aggregate Queries with Negation." PODS 2001.

The package provides a Datalog-style query language with negation, constants
and comparisons (:mod:`repro.datalog`), the monoidal aggregation-function
framework of the paper (:mod:`repro.aggregates`), evaluation over concrete and
symbolic databases (:mod:`repro.engine`), order-constraint reasoning
(:mod:`repro.orderings`), and the decision procedures for bounded, local and
unrestricted equivalence, including the polynomial-time quasilinear case
(:mod:`repro.core`).

Quick start::

    from repro import parse_query, are_equivalent

    q1 = parse_query("q(x, sum(y)) :- p(x, y), y > 0")
    q2 = parse_query("q(x, sum(y)) :- p(x, y), y > 0, not r(x)")
    print(are_equivalent(q1, q2))

For anything session-shaped — a growing catalog, repeated rewrites — use
the stateful :class:`repro.Workspace` (:mod:`repro.session`), which keeps
the shared BASE, verdict caches, and worker pool alive across calls and
decides only the delta cells of each ``equivalences()`` re-query::

    from repro import Workspace

    with Workspace(workers=4) as ws:
        ws.add("q(x, sum(y)) :- p(x, y)", name="a")
        ws.add("q(x, sum(z)) :- p(x, z)", name="b")
        print(ws.equivalences())
"""

from .aggregates import (
    PAPER_FUNCTIONS,
    AggregationFunction,
    build_table1,
    format_table1,
    get_function,
)
from .core import (
    EquivalenceResult,
    Verdict,
    are_equivalent,
    are_isomorphic,
    bag_set_equivalent,
    bounded_equivalence,
    build_table2,
    find_counterexample,
    format_table2,
    local_equivalence,
    quasilinear_equivalent,
    reduce_query,
    set_equivalent,
)
from .datalog import (
    Comparison,
    ComparisonOp,
    Condition,
    Constant,
    Database,
    Query,
    QueryBuilder,
    RelationalAtom,
    Variable,
    parse_database,
    parse_query,
)
from .domains import Domain
from .engine import evaluate, evaluate_aggregate, evaluate_bag_set, evaluate_set
from .errors import (
    DomainError,
    EvaluationError,
    MalformedQueryError,
    QuerySyntaxError,
    ReproError,
    RewritingError,
    SearchSpaceBudgetError,
    UndecidableError,
    UnsafeQueryError,
    UnsupportedAggregateError,
)
from . import obs
from .obs import CellExplanation
from .orderings import CompleteOrdering, ComparisonSystem, enumerate_complete_orderings
from .rewriting import (
    RewritingEngine,
    RewritingReport,
    View,
    ViewCatalog,
    rewrite,
    unfold_query,
)
from .session import Workspace, WorkspaceStats

__version__ = "1.0.0"

__all__ = [
    "AggregationFunction",
    "CellExplanation",
    "Comparison",
    "ComparisonOp",
    "ComparisonSystem",
    "CompleteOrdering",
    "Condition",
    "Constant",
    "Database",
    "Domain",
    "DomainError",
    "EquivalenceResult",
    "EvaluationError",
    "MalformedQueryError",
    "PAPER_FUNCTIONS",
    "Query",
    "QueryBuilder",
    "QuerySyntaxError",
    "RelationalAtom",
    "ReproError",
    "RewritingEngine",
    "RewritingError",
    "RewritingReport",
    "SearchSpaceBudgetError",
    "UndecidableError",
    "UnsafeQueryError",
    "UnsupportedAggregateError",
    "Variable",
    "Verdict",
    "View",
    "ViewCatalog",
    "Workspace",
    "WorkspaceStats",
    "are_equivalent",
    "are_isomorphic",
    "bag_set_equivalent",
    "bounded_equivalence",
    "build_table1",
    "build_table2",
    "enumerate_complete_orderings",
    "evaluate",
    "evaluate_aggregate",
    "evaluate_bag_set",
    "evaluate_set",
    "find_counterexample",
    "format_table1",
    "format_table2",
    "get_function",
    "local_equivalence",
    "obs",
    "parse_database",
    "parse_query",
    "quasilinear_equivalent",
    "reduce_query",
    "rewrite",
    "set_equivalent",
    "unfold_query",
    "__version__",
]
