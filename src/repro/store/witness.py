"""Witness revalidation: when a stored NOT_EQUIVALENT may be served.

A stored EQUIVALENT (or UNKNOWN) is a theorem about the two queries — the
decision procedures are sound over every database, so the verdict transfers
to any caller, any BASE, any engine.  A stored NOT_EQUIVALENT with a
concrete witness database is different in kind: it is an *empirical* claim
("on this database the answers differ") whose serialized form could have
gone stale — written by older code, mangled on disk, or simply no longer a
disagreement for the caller's literal queries.  So before such a verdict is
served, the witness is deserialized and **both caller queries are
re-evaluated on it under the caller's current engine**; only a reproduced
disagreement is served (with the freshly computed answers, counted as
``store.witness.revalidated``).  Anything else — agreement, undecodable
payload, evaluation error — counts as ``store.witness.stale`` and misses,
which deletes the row and falls through to a fresh decision (witness
re-derivation on demand).

NOT_EQUIVALENT verdicts *without* a concrete database (shape mismatches,
symbolic-only counterexamples) are structural facts like EQUIVALENT and are
served as-is.

Re-evaluating with the caller's own queries also makes orientation and
renaming worries vanish for witnesses: the answers are computed fresh, so
the served counterexample's left/right always match the caller's
(first, second) order no matter how the pair was stored.
"""

from __future__ import annotations

from typing import Optional

from ..core.bounded import Counterexample
from ..core.equivalence import EquivalenceResult, Verdict
from ..datalog.queries import Query
from ..domains import Domain
from ..engine.evaluator import evaluate
from ..engine.modes import engine_scope
from ..obs import REGISTRY as _OBS
from .disk import StoredRecord, StoreCodecError, decode_database, decode_report, decode_value


def realize_result(
    record: StoredRecord,
    first: Query,
    second: Query,
    *,
    flipped: bool,
    engine: Optional[str] = None,
) -> Optional[EquivalenceResult]:
    """Reconstruct an :class:`EquivalenceResult` from a stored record, in
    the caller's (first, second) orientation, or ``None`` when the record
    must not be served (stale witness / undecodable payload).

    ``flipped`` says the stored orientation reverses the caller's, so
    stored left/right results swap on the way out (moot for concrete
    witnesses, which are re-evaluated instead of trusted).
    """
    try:
        verdict = Verdict(record.verdict)
        domain = Domain(record.domain)
    except ValueError:
        _OBS.inc("store.witness.stale")
        return None
    try:
        counterexample = _realize_counterexample(record, first, second, flipped, engine)
    except StoreCodecError:
        _OBS.inc("store.witness.stale")
        return None
    if verdict is Verdict.NOT_EQUIVALENT and record.payload.get("counterexample") is not None:
        if counterexample is None:
            # The stored disagreement did not reproduce under the current
            # engine: the row is stale and the caller must re-decide.
            _OBS.inc("store.witness.stale")
            return None
        _OBS.inc("store.witness.revalidated")
    report = decode_report(record, counterexample)
    return EquivalenceResult(
        verdict=verdict,
        method=record.method,
        domain=domain,
        details=record.details,
        counterexample=counterexample,
        report=report,
    )


def _realize_counterexample(
    record: StoredRecord,
    first: Query,
    second: Query,
    flipped: bool,
    engine: Optional[str],
) -> Optional[Counterexample]:
    encoded = record.payload.get("counterexample")
    if encoded is None:
        return None
    if not isinstance(encoded, dict):
        raise StoreCodecError("malformed counterexample payload")
    encoded_database = encoded.get("database")
    if encoded_database is None:
        # Witness-less counterexample (e.g. incomparable shapes): a
        # structural fact — swap stored left/right into caller order.
        left = decode_value(encoded.get("left"))
        right = decode_value(encoded.get("right"))
        if flipped:
            left, right = right, left
        return Counterexample(database=None, left_result=left, right_result=right)
    if not isinstance(encoded_database, list):
        raise StoreCodecError("malformed witness database")
    # Canonically-equal queries are semantically equivalent (the invariant
    # the canonical keying is built on), so once this record's witness has
    # reproduced its disagreement under an engine, later serves of the same
    # in-memory record — typically renamed duplicates of the pair — reuse
    # the reproduced answers instead of re-evaluating.  A row rewrite
    # replaces the record object and re-triggers validation.
    memo_key = engine or ""
    memo = record.revalidation.get(memo_key)
    if memo is not None:
        database, left, right = memo
        if flipped:
            left, right = right, left
        return Counterexample(database=database, left_result=left, right_result=right)
    database = decode_database(encoded_database)
    try:
        with engine_scope(engine):
            left = evaluate(first, database)
            right = evaluate(second, database)
    except Exception as error:  # noqa: BLE001 - any failure means "stale"
        raise StoreCodecError(f"witness re-evaluation failed: {error}") from error
    if left == right:
        return None
    record.revalidation[memo_key] = (
        (database, right, left) if flipped else (database, left, right)
    )
    return Counterexample(database=database, left_result=left, right_result=right)
