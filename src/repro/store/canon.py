"""Canonical, rename-insensitive pair keys for the verdict store.

Equivalence verdicts are properties of the *semantics* of a query pair, but
the session's structural verdict cache keys on the literal ASTs: the same
pair with renamed variables, reordered literals, or reordered disjuncts —
the most common duplicate in a machine-generated workload — misses.  This
module maps each query to a canonical byte form such that two queries get
the same form exactly when one can be turned into the other by a chain of
*equivalence-preserving* syntactic transforms:

* **reduction** (:func:`repro.core.reduction.reduction_for_keying`) — the
  Section 7 machinery substitutes entailed equalities away, so ``y = 1``
  and ``y = z, z = 1`` bodies converge;
* **alpha-renaming** — variables are renamed into a deterministic canonical
  order found by color refinement over the query's term/literal incidence
  structure, with a bounded minimal-serialization search breaking the
  remaining symmetric ties;
* **literal/disjunct reordering** — literals are serialized sorted within
  each disjunct (and deduplicated: a conjunction is a set of literals) and
  disjuncts are serialized sorted (*not* deduplicated — a duplicated
  disjunct changes multiplicities under bag semantics);
* **comparison orientation** — ``x > y`` flips to ``y < x``; symmetric
  operators (``=``, ``!=``) order their operands.

Every transform above preserves the query's semantics, so *equal canonical
hashes imply equivalent queries* — a key collision between semantically
different queries would require a SHA-256 collision.  The converse does not
hold (two equivalent queries may hash differently); a differing hash is
only ever a cache miss, never an unsound verdict.

The pair key of ``(q1, q2)`` is the sorted hash pair plus an orientation
flag recording whether the caller's order matched the sorted order, so a
symmetric lookup can map a stored witness's left/right results back to the
caller's orientation.

Canonical forms are memoized per ``(query, domain)`` in a module-level LRU
registered with the cache registry under ``clear_service_caches`` — the
store serves many tenants, so its caches reset with the service layer's.
"""

from __future__ import annotations

import hashlib
import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping, Optional

from ..caches import register_cache
from ..core.reduction import reduction_for_keying
from ..datalog.atoms import Comparison, ComparisonOp, RelationalAtom
from ..datalog.conditions import Condition
from ..datalog.queries import Query
from ..datalog.terms import Constant, Term, Variable
from ..domains import Domain
from ..obs import REGISTRY as _OBS

#: Version prefix baked into every canonical form (and therefore every
#: hash): bump when the serialization scheme changes so stale disk rows
#: can never be misread as current ones.
CANON_VERSION = "k1"

#: Cap on the canonical-form memo.  Entries are small (query -> hex digest)
#: but the store is process-wide, so the memo is bounded like every other
#: long-lived cache; eviction is least-recently-used.
_CANON_LRU_LIMIT = 8192

#: Permutation budget for the symmetric-tie search: the product of the tied
#: variable groups' factorials must stay under this before the search runs.
#: Queries in this system carry a handful of variables, so the budget is
#: effectively never hit; beyond it the order falls back to variable names
#: (deterministic, so at worst a renamed duplicate misses the cache).
_PERMUTATION_BUDGET = 720

#: The canonical-form memo: ``(query, domain) -> hex digest``, LRU order.
_CANON_LRU: "OrderedDict[tuple[Query, Domain], str]" = OrderedDict()

register_cache("store/canon.py:_CANON_LRU", "clear_service_caches", _CANON_LRU.clear)


@dataclass(frozen=True)
class PairKey:
    """The store key of one unordered query pair.

    ``key`` is the sorted canonical hash pair joined with ``:``;
    ``flipped`` records that the *caller's* ``(first, second)`` order is the
    reverse of the stored order, so witness left/right results must swap on
    the way out.
    """

    key: str
    flipped: bool


def canonical_form(query: Query, domain: Domain = Domain.RATIONALS) -> str:
    """The canonical serialization of ``query`` over ``domain``.

    Deterministic, name-insensitive, and order-insensitive per the module
    docstring.  Primarily exposed for tests and debugging; cache keys use
    :func:`canonical_hash`.
    """
    reduced = reduction_for_keying(query, domain)
    naming = _canonical_naming(reduced)
    return _serialize(reduced, naming, domain)


def canonical_hash(query: Query, domain: Domain = Domain.RATIONALS) -> str:
    """The content address of the query's canonical form (SHA-256 hex),
    memoized per ``(query, domain)`` in the module LRU."""
    memo_key = (query, domain)
    cached = _CANON_LRU.get(memo_key)
    if cached is not None:
        _CANON_LRU.move_to_end(memo_key)
        _OBS.inc("store.canon.hits")
        return cached
    _OBS.inc("store.canon.misses")
    digest = hashlib.sha256(canonical_form(query, domain).encode("utf-8")).hexdigest()
    if len(_CANON_LRU) >= _CANON_LRU_LIMIT:
        _CANON_LRU.popitem(last=False)
    _CANON_LRU[memo_key] = digest
    return digest


def pair_key(first: Query, second: Query, domain: Domain = Domain.RATIONALS) -> PairKey:
    """The symmetric store key of ``(first, second)`` with its orientation.

    The key is identical regardless of argument order; ``flipped`` is True
    exactly when the sorted storage order reverses the caller's order.
    """
    first_hash = canonical_hash(first, domain)
    second_hash = canonical_hash(second, domain)
    if first_hash <= second_hash:
        return PairKey(f"{first_hash}:{second_hash}", False)
    return PairKey(f"{second_hash}:{first_hash}", True)


# ----------------------------------------------------------------------
# Canonical variable naming: color refinement + bounded tie-breaking
# ----------------------------------------------------------------------
def _canonical_naming(query: Query) -> dict[Variable, str]:
    variables = sorted(query.variables())
    if not variables:
        return {}
    colors: dict[Variable, int] = {variable: 0 for variable in variables}
    # Iterative refinement: a variable's color becomes the rank of its
    # occurrence signature (head positions, aggregation positions, and the
    # multiset of colored literal skeletons it occurs in).  The signature is
    # computed from colors only — never from names — so isomorphic queries
    # refine identically.  |variables| rounds suffice: each strictly refining
    # round splits at least one color class.
    for _ in range(len(variables)):
        signatures = {
            variable: _occurrence_signature(query, variable, colors)
            for variable in variables
        }
        ranked = {
            signature: rank
            for rank, signature in enumerate(sorted(set(signatures.values())))
        }
        refined = {variable: ranked[signatures[variable]] for variable in variables}
        if refined == colors:
            break
        colors = refined
    groups: dict[int, list[Variable]] = {}
    for variable in variables:
        groups.setdefault(colors[variable], []).append(variable)
    ordered_groups = [groups[color] for color in sorted(groups)]
    if all(len(group) == 1 for group in ordered_groups):
        ordering = [group[0] for group in ordered_groups]
        return {variable: f"v{rank}" for rank, variable in enumerate(ordering)}
    return _break_ties(query, ordered_groups)


def _break_ties(query: Query, groups: list[list[Variable]]) -> dict[Variable, str]:
    """Choose, among the orderings consistent with the refined partition,
    the one whose serialization is lexicographically smallest.

    The groups hold symmetric (or refinement-indistinguishable) variables;
    trying their permutations and keeping the minimal serialization makes
    the result independent of the input variable names.  Past the budget the
    search degrades to name order — deterministic, merely rename-sensitive.
    """
    budget = 1
    for group in groups:
        for size in range(2, len(group) + 1):
            budget *= size
        if budget > _PERMUTATION_BUDGET:
            _OBS.inc("store.canon.tie_bailouts")
            ordering = [variable for group in groups for variable in group]
            return {variable: f"v{rank}" for rank, variable in enumerate(ordering)}
    best_text: Optional[str] = None
    best_naming: dict[Variable, str] = {}
    for candidate in itertools.product(*(itertools.permutations(g) for g in groups)):
        ordering = [variable for group in candidate for variable in group]
        naming = {variable: f"v{rank}" for rank, variable in enumerate(ordering)}
        text = _serialize_body(query, naming)
        if best_text is None or text < best_text:
            best_text = text
            best_naming = naming
    return best_naming


def _occurrence_signature(
    query: Query, variable: Variable, colors: Mapping[Variable, int]
) -> str:
    head = tuple(
        index for index, term in enumerate(query.head_terms) if term == variable
    )
    aggregation = tuple(
        index
        for index, argument in enumerate(query.aggregation_variables())
        if argument == variable
    )
    occurrences: list[str] = []
    for disjunct in query.disjuncts:
        disjunct_skeleton = _disjunct_skeleton(disjunct, colors)
        for literal in disjunct.literals:
            positions = _positions_of(literal, variable)
            if positions:
                occurrences.append(
                    f"{disjunct_skeleton}@{_literal_skeleton(literal, colors)}@{positions}"
                )
    return f"h{head}|a{aggregation}|" + ";".join(sorted(occurrences))


def _positions_of(literal: object, variable: Variable) -> tuple[int, ...]:
    if isinstance(literal, RelationalAtom):
        return tuple(
            index
            for index, argument in enumerate(literal.arguments)
            if argument == variable
        )
    if isinstance(literal, Comparison):
        oriented = _orient(literal)
        return tuple(
            index
            for index, operand in enumerate((oriented.left, oriented.right))
            if operand == variable
        )
    return ()


def _orient(comparison: Comparison) -> Comparison:
    """Flip ``>`` / ``>=`` so every comparison reads left-to-right small."""
    if comparison.op in (ComparisonOp.GT, ComparisonOp.GE):
        return comparison.flip()
    return comparison


def _term_color_token(term: Term, colors: Mapping[Variable, int]) -> str:
    if isinstance(term, Constant):
        return f"c:{term.value}"
    return f"v:{colors.get(term, 0):06d}"


def _literal_skeleton(literal: object, colors: Mapping[Variable, int]) -> str:
    if isinstance(literal, Comparison):
        oriented = _orient(literal)
        left = _term_color_token(oriented.left, colors)
        right = _term_color_token(oriented.right, colors)
        if oriented.op in (ComparisonOp.EQ, ComparisonOp.NE) and right < left:
            left, right = right, left
        return f"C|{oriented.op.value}|{left}|{right}"
    if isinstance(literal, RelationalAtom):
        sign = "!" if literal.negated else ""
        arguments = ",".join(
            _term_color_token(argument, colors) for argument in literal.arguments
        )
        return f"R|{sign}{literal.predicate}|{arguments}"
    return f"?|{literal!r}"


def _disjunct_skeleton(disjunct: Condition, colors: Mapping[Variable, int]) -> str:
    return "&".join(sorted(_literal_skeleton(literal, colors) for literal in disjunct.literals))


# ----------------------------------------------------------------------
# Serialization under a fixed naming
# ----------------------------------------------------------------------
def _term_token(term: Term, naming: Mapping[Variable, str]) -> str:
    if isinstance(term, Constant):
        return f"c:{term.value}"
    return naming[term]


def _literal_text(literal: object, naming: Mapping[Variable, str]) -> str:
    if isinstance(literal, Comparison):
        oriented = _orient(literal)
        left = _term_token(oriented.left, naming)
        right = _term_token(oriented.right, naming)
        if oriented.op in (ComparisonOp.EQ, ComparisonOp.NE) and right < left:
            left, right = right, left
        return f"{left}{oriented.op.value}{right}"
    if isinstance(literal, RelationalAtom):
        sign = "!" if literal.negated else ""
        arguments = ",".join(
            _term_token(argument, naming) for argument in literal.arguments
        )
        return f"{sign}{literal.predicate}({arguments})"
    return repr(literal)


def _disjunct_text(disjunct: Condition, naming: Mapping[Variable, str]) -> str:
    # A conjunction is a *set* of literals: duplicates are dropped (they
    # change no satisfying assignment, hence no Γ multiplicity).  Duplicate
    # *disjuncts* are preserved by _serialize_body — under bag semantics a
    # repeated disjunct doubles its contribution.
    return "&".join(sorted({_literal_text(literal, naming) for literal in disjunct.literals}))


def _serialize_body(query: Query, naming: Mapping[Variable, str]) -> str:
    head = ",".join(_term_token(term, naming) for term in query.head_terms)
    if query.aggregate is not None:
        arguments = ",".join(naming[a] for a in query.aggregate.arguments)
        aggregate = f"{query.aggregate.function}({arguments})"
    else:
        aggregate = "-"
    disjuncts = sorted(_disjunct_text(disjunct, naming) for disjunct in query.disjuncts)
    return f"h:{head}|a:{aggregate}|" + "|".join(f"d:{text}" for text in disjuncts)


def _serialize(query: Query, naming: Mapping[Variable, str], domain: Domain) -> str:
    return f"{CANON_VERSION}|{domain.value}|{_serialize_body(query, naming)}"


def canon_cache_stats() -> dict[str, int]:
    """Size and hit/miss counters of the canonical-form memo."""
    return {
        "entries": len(_CANON_LRU),
        "hits": _OBS.get("store.canon.hits"),
        "misses": _OBS.get("store.canon.misses"),
    }
