"""Persistent, rename-insensitive verdict store.

The paper's decision procedures are expensive exactly once per *semantic*
query pair.  This package makes settled verdicts durable and shared:

* :mod:`repro.store.canon` — canonical pair keys: queries are reduced
  (Section 7), alpha-renamed into a deterministic order, and
  content-addressed, so renamed/reordered duplicates of a pair map to the
  same key.  Equal keys imply equivalent queries (every canonicalization
  step preserves semantics).
* :mod:`repro.store.disk` — :class:`VerdictStore`: an in-process record
  LRU over an optional stdlib-``sqlite3`` file (WAL), env-gated by
  ``REPRO_STORE_PATH`` / bounded by ``REPRO_STORE_MAX_MB``.
* :mod:`repro.store.witness` — stored NOT_EQUIVALENT verdicts with a
  concrete witness are only served after the witness re-reproduces the
  disagreement under the caller's current engine.

:class:`~repro.session.Workspace` consults the store as a second tier
behind its structural verdict cache; the PR 9 service shares one
process-wide store across all tenants (:func:`shared_store`).
"""

from .canon import PairKey, canon_cache_stats, canonical_form, canonical_hash, pair_key
from .disk import (
    SCHEMA_VERSION,
    StoredRecord,
    StoreCodecError,
    VerdictStore,
    base_fingerprint,
    default_store,
    reset_shared_store,
    shared_store,
)
from .witness import realize_result

__all__ = [
    "PairKey",
    "SCHEMA_VERSION",
    "StoreCodecError",
    "StoredRecord",
    "VerdictStore",
    "base_fingerprint",
    "canon_cache_stats",
    "canonical_form",
    "canonical_hash",
    "default_store",
    "pair_key",
    "realize_result",
    "reset_shared_store",
    "shared_store",
]
