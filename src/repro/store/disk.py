"""Durable verdict storage: stdlib ``sqlite3`` behind an in-process LRU.

A :class:`VerdictStore` holds settled equivalence verdicts keyed by the
canonical pair key of :mod:`repro.store.canon`.  Records survive process
restarts when the store is given a path (WAL journal — one writer, many
concurrent readers), and an in-process record LRU serves hot pairs without
touching the file at all.  With no path the store is purely in-memory,
which still buys cross-*tenant* sharing inside one service process.

Rows carry everything needed to reconstruct an
:class:`~repro.core.equivalence.EquivalenceResult`, including the
counterexample database of a NOT_EQUIVALENT verdict.  Witness payloads are
serialized with a small tagged-JSON codec (exact ``Fraction`` values and
the container types evaluation results actually use); a payload the codec
cannot decode — e.g. written by a future schema — is treated as a miss,
never an error.

A NOT_EQUIVALENT record whose witness database is present is **never served
verbatim**: :mod:`repro.store.witness` re-evaluates both caller queries on
the stored database first and the record is dropped when they no longer
disagree.  EQUIVALENT and UNKNOWN verdicts transfer as-is — the decision
procedures are sound theorems about the queries, not about any particular
BASE.

The process-wide store is reached through :func:`shared_store` (always
available; in-memory unless ``REPRO_STORE_PATH`` is set) and
:func:`default_store` (the `Workspace` default: the shared store only when
``REPRO_STORE_PATH`` opts in, otherwise ``None`` — today's behavior).
``REPRO_STORE_MAX_MB`` bounds the database file; overflow evicts the
least-recently-*used* rows.  The singleton is registered with the cache
registry under ``clear_service_caches`` so service teardown and test
isolation reset it like every other process-wide cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Optional

from ..caches import register_cache
from ..core.bounded import Counterexample, EquivalenceReport, SharedBaseContext
from ..core.equivalence import EquivalenceResult
from ..datalog.database import Database
from ..datalog.queries import Query
from ..domains import Domain
from ..obs import REGISTRY as _OBS
from .canon import pair_key

#: Bump when the row layout or the payload codec changes: rows written under
#: another version are ignored (a miss), never misread.
SCHEMA_VERSION = 1

#: Capacity of the per-store record LRU sitting in front of the disk layer.
_RECORD_LRU_CAPACITY = 4096

#: How many writes between file-size checks when ``max_mb`` is set.
_SIZE_CHECK_INTERVAL = 64

#: How many deferred recency touches accumulate before they are flushed to
#: disk in one transaction (reads must stay cheap; recency is advisory).
_TOUCH_FLUSH_INTERVAL = 128

_TABLE_DDL = """
CREATE TABLE IF NOT EXISTS verdicts (
    pair_key         TEXT PRIMARY KEY,
    schema_version   INTEGER NOT NULL,
    verdict          TEXT NOT NULL,
    method           TEXT NOT NULL,
    details          TEXT NOT NULL,
    domain           TEXT NOT NULL,
    engine           TEXT NOT NULL,
    base_fingerprint TEXT NOT NULL,
    payload          TEXT NOT NULL,
    created_s        REAL NOT NULL,
    last_used_s      REAL NOT NULL
)
"""


class StoreCodecError(ValueError):
    """A stored payload could not be decoded (foreign schema or corruption)."""


# ----------------------------------------------------------------------
# Tagged-JSON value codec
# ----------------------------------------------------------------------
def encode_value(value: object) -> object:
    """Encode one evaluation-result value into JSON-safe form.

    Scalars JSON represents faithfully (``None``, ``bool``, ``int``,
    ``str``) pass through; everything else becomes a ``{"t": ...}`` tagged
    object.  Exactness is preserved: a ``Fraction`` round-trips as a
    numerator/denominator pair, never a float.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, Fraction):
        return {"t": "frac", "n": value.numerator, "d": value.denominator}
    if isinstance(value, tuple):
        return {"t": "tup", "v": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return {"t": "list", "v": [encode_value(item) for item in value]}
    if isinstance(value, Counter):
        return {
            "t": "counter",
            "v": [[encode_value(key), count] for key, count in value.items()],
        }
    if isinstance(value, (set, frozenset)):
        tag = "set" if isinstance(value, set) else "fset"
        return {"t": tag, "v": [encode_value(item) for item in value]}
    if isinstance(value, dict):
        return {
            "t": "dict",
            "v": [[encode_value(key), encode_value(item)] for key, item in value.items()],
        }
    raise StoreCodecError(f"unencodable value of type {type(value).__name__}")


def decode_value(encoded: object) -> object:
    """Invert :func:`encode_value`; raises :class:`StoreCodecError` on an
    unknown tag."""
    if encoded is None or isinstance(encoded, (bool, int, str)):
        return encoded
    if isinstance(encoded, dict):
        tag = encoded.get("t")
        if tag == "frac":
            return Fraction(int(encoded["n"]), int(encoded["d"]))
        if tag == "tup":
            return tuple(decode_value(item) for item in encoded["v"])
        if tag == "list":
            return [decode_value(item) for item in encoded["v"]]
        if tag == "counter":
            counter: Counter[object] = Counter()
            for key, count in encoded["v"]:
                counter[decode_value(key)] = int(count)
            return counter
        if tag == "set":
            return {decode_value(item) for item in encoded["v"]}
        if tag == "fset":
            return frozenset(decode_value(item) for item in encoded["v"])
        if tag == "dict":
            return {decode_value(key): decode_value(item) for key, item in encoded["v"]}
        raise StoreCodecError(f"unknown payload tag {tag!r}")
    raise StoreCodecError(f"undecodable payload node of type {type(encoded).__name__}")


def encode_database(database: Database) -> list[list[object]]:
    """A database as a sorted fact list — deterministic, so identical
    witnesses write identical payload bytes."""
    rows = [
        [fact.predicate, [encode_value(value) for value in fact.values]]
        for fact in database.facts
    ]
    rows.sort(key=lambda row: json.dumps(row, sort_keys=True))
    return rows


def decode_database(rows: list[list[object]]) -> Database:
    facts: list[tuple[str, tuple[object, ...]]] = []
    for predicate, values in rows:
        if not isinstance(predicate, str) or not isinstance(values, list):
            raise StoreCodecError("malformed database row")
        facts.append((predicate, tuple(decode_value(value) for value in values)))
    return Database(facts)


def base_fingerprint(context: Optional[SharedBaseContext]) -> str:
    """A content hash of the BASE recipe a verdict was decided under.

    Stored as provenance (and surfaced by the stale-witness tests); serving
    does not compare fingerprints — EQUIVALENT transfers soundly across BASE
    changes and NOT_EQUIVALENT is guarded by witness re-evaluation instead.
    """
    if context is None:
        return ""
    text = f"{sorted(str(constant.value) for constant in context.constants)}|{context.bound}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclass
class StoredRecord:
    """One verdict row, decoded from (or about to be encoded into) the DB.

    ``payload`` holds the tagged-JSON counterexample and report; left/right
    results inside it follow the *stored* pair orientation (the sorted hash
    order), not the caller's.
    """

    pair_key: str
    verdict: str
    method: str
    details: str
    domain: str
    engine: str
    base_fingerprint: str
    payload: dict[str, Any] = field(default_factory=dict)
    #: Per-engine witness-revalidation memo, filled by
    #: :func:`repro.store.witness.realize_result`: ``engine -> (database,
    #: left, right)`` in *stored* orientation, recorded after the witness
    #: reproduced its disagreement once in this process.  Never persisted —
    #: a row rewrite builds a fresh record and re-triggers validation.
    revalidation: dict[str, tuple[Any, Any, Any]] = field(
        default_factory=dict, repr=False, compare=False
    )


def encode_result(result: EquivalenceResult, *, flipped: bool) -> dict[str, Any]:
    """The payload of a result, orientation-normalized to stored order.

    ``flipped`` says the caller's (first, second) is the reverse of the
    stored order, so witness left/right results swap on the way in (and
    will swap again on the way out for a flipped reader).
    """
    payload: dict[str, Any] = {}
    counterexample = result.counterexample
    if counterexample is not None:
        left, right = counterexample.left_result, counterexample.right_result
        if flipped:
            left, right = right, left
        payload["counterexample"] = {
            "database": (
                encode_database(counterexample.database)
                if counterexample.database is not None
                else None
            ),
            "left": encode_value(left),
            "right": encode_value(right),
        }
    report = result.report
    if report is not None:
        payload["report"] = {
            "equivalent": report.equivalent,
            "bound": report.bound,
            "subsets_examined": report.subsets_examined,
            "orderings_examined": report.orderings_examined,
            "identities_checked": report.identities_checked,
            "subsets_skipped_by_symmetry": report.subsets_skipped_by_symmetry,
            "workers_used": report.workers_used,
            "notes": list(report.notes),
        }
    return payload


def decode_report(
    record: StoredRecord, counterexample: Optional[Counterexample]
) -> Optional[EquivalenceReport]:
    encoded = record.payload.get("report")
    if encoded is None:
        return None
    return EquivalenceReport(
        equivalent=bool(encoded["equivalent"]),
        bound=int(encoded["bound"]),
        domain=Domain(record.domain),
        counterexample=counterexample,
        subsets_examined=int(encoded["subsets_examined"]),
        orderings_examined=int(encoded["orderings_examined"]),
        identities_checked=int(encoded["identities_checked"]),
        subsets_skipped_by_symmetry=int(encoded["subsets_skipped_by_symmetry"]),
        workers_used=int(encoded["workers_used"]),
        notes=[str(note) for note in encoded["notes"]],
    )


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class VerdictStore:
    """Settled verdicts keyed by canonical pair key: record LRU over sqlite.

    Thread-safe (one lock around the LRU and the single connection —
    sqlite's WAL mode handles reader concurrency at the file level for
    *other* processes sharing the path).  ``path=None`` keeps everything in
    the LRU: same API, no persistence.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        max_mb: Optional[int] = None,
        lru_capacity: int = _RECORD_LRU_CAPACITY,
    ) -> None:
        self._lock = threading.Lock()
        self._records: "OrderedDict[str, StoredRecord]" = OrderedDict()
        self._lru_capacity = lru_capacity
        self._max_mb = max_mb
        self._path = path
        self._closed = False
        self._writes_since_size_check = 0
        self._pending_touches: dict[str, float] = {}
        self._preloaded = False
        self._connection: Optional[sqlite3.Connection] = None
        if path is not None:
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            connection = sqlite3.connect(path, check_same_thread=False)
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.execute(_TABLE_DDL)
            connection.commit()
            self._connection = connection

    # ------------------------------------------------------------------
    @property
    def path(self) -> Optional[str]:
        return self._path

    @property
    def persistent(self) -> bool:
        return self._connection is not None

    def __len__(self) -> int:
        with self._lock:
            if self._connection is not None:
                row = self._connection.execute("SELECT COUNT(*) FROM verdicts").fetchone()
                return int(row[0])
            return len(self._records)

    # ------------------------------------------------------------------
    # Raw record access
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> Optional[StoredRecord]:
        """The stored record of a pair key, or ``None``.  Serves from the
        record LRU when possible; a disk read refreshes the row's recency."""
        with self._lock:
            if self._closed:
                return None
            cached = self._records.get(key)
            if cached is not None:
                self._records.move_to_end(key)
                _OBS.inc("store.disk.hits")
                return cached
            if self._connection is None:
                return None
            if not self._preloaded:
                # First disk read after open: when the whole table fits in
                # the record LRU, one sequential scan replaces hundreds of
                # point SELECTs (the restart-heavy access pattern).
                self._preloaded = True
                self._preload()
                cached = self._records.get(key)
                if cached is not None:
                    self._records.move_to_end(key)
                    self._pending_touches[key] = time.time()
                    _OBS.inc("store.disk.hits")
                    return cached
            row = self._connection.execute(
                "SELECT schema_version, verdict, method, details, domain, engine,"
                " base_fingerprint, payload FROM verdicts WHERE pair_key = ?",
                (key,),
            ).fetchone()
            if row is None or int(row[0]) != SCHEMA_VERSION:
                return None
            try:
                payload = json.loads(row[7])
            except (TypeError, ValueError):
                return None
            record = StoredRecord(
                pair_key=key,
                verdict=str(row[1]),
                method=str(row[2]),
                details=str(row[3]),
                domain=str(row[4]),
                engine=str(row[5]),
                base_fingerprint=str(row[6]),
                payload=payload if isinstance(payload, dict) else {},
            )
            # Recency refresh is advisory (it only steers max_mb eviction),
            # so touches batch up and flush in one transaction rather than
            # paying a commit per read.
            self._pending_touches[key] = time.time()
            if len(self._pending_touches) >= _TOUCH_FLUSH_INTERVAL:
                self._flush_touches()
            self._remember(record)
            _OBS.inc("store.disk.hits")
            return record

    def write(self, record: StoredRecord) -> None:
        """Insert or replace a record (LRU and, when persistent, disk)."""
        with self._lock:
            if self._closed:
                return
            self._remember(record)
            _OBS.inc("store.disk.writes")
            if self._connection is None:
                return
            now = time.time()
            self._connection.execute(
                "INSERT OR REPLACE INTO verdicts (pair_key, schema_version, verdict,"
                " method, details, domain, engine, base_fingerprint, payload,"
                " created_s, last_used_s) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    record.pair_key,
                    SCHEMA_VERSION,
                    record.verdict,
                    record.method,
                    record.details,
                    record.domain,
                    record.engine,
                    record.base_fingerprint,
                    json.dumps(record.payload, sort_keys=True),
                    now,
                    now,
                ),
            )
            self._connection.commit()
            self._writes_since_size_check += 1
            if self._max_mb is not None and self._writes_since_size_check >= _SIZE_CHECK_INTERVAL:
                self._writes_since_size_check = 0
                self._enforce_size_limit()

    def delete(self, key: str) -> None:
        with self._lock:
            if self._closed:
                return
            self._records.pop(key, None)
            self._pending_touches.pop(key, None)
            if self._connection is not None:
                self._connection.execute("DELETE FROM verdicts WHERE pair_key = ?", (key,))
                self._connection.commit()

    def _preload(self) -> None:
        """Load every current-schema row into the record LRU in one scan
        (caller holds the lock).  Skipped when the table outgrows the LRU —
        point lookups stay correct either way."""
        assert self._connection is not None
        count = int(self._connection.execute("SELECT COUNT(*) FROM verdicts").fetchone()[0])
        if count == 0 or count > self._lru_capacity - len(self._records):
            return
        rows = self._connection.execute(
            "SELECT pair_key, schema_version, verdict, method, details, domain,"
            " engine, base_fingerprint, payload FROM verdicts"
        ).fetchall()
        for row in rows:
            if int(row[1]) != SCHEMA_VERSION or row[0] in self._records:
                continue
            try:
                payload = json.loads(row[8])
            except (TypeError, ValueError):
                continue
            self._remember(
                StoredRecord(
                    pair_key=str(row[0]),
                    verdict=str(row[2]),
                    method=str(row[3]),
                    details=str(row[4]),
                    domain=str(row[5]),
                    engine=str(row[6]),
                    base_fingerprint=str(row[7]),
                    payload=payload if isinstance(payload, dict) else {},
                )
            )

    def _flush_touches(self) -> None:
        """Write the accumulated recency touches in one transaction (caller
        holds the lock)."""
        if self._connection is not None and self._pending_touches:
            self._connection.executemany(
                "UPDATE verdicts SET last_used_s = ? WHERE pair_key = ?",
                [(when, key) for key, when in self._pending_touches.items()],
            )
            self._connection.commit()
        self._pending_touches.clear()

    def _remember(self, record: StoredRecord) -> None:
        self._records[record.pair_key] = record
        self._records.move_to_end(record.pair_key)
        while len(self._records) > self._lru_capacity:
            self._records.popitem(last=False)

    def _enforce_size_limit(self) -> None:
        """Evict least-recently-used rows until the file fits ``max_mb``."""
        assert self._connection is not None and self._max_mb is not None
        self._flush_touches()
        limit_bytes = self._max_mb * 1024 * 1024
        while True:
            page_count = int(self._connection.execute("PRAGMA page_count").fetchone()[0])
            page_size = int(self._connection.execute("PRAGMA page_size").fetchone()[0])
            if page_count * page_size <= limit_bytes:
                return
            victims = self._connection.execute(
                "SELECT pair_key FROM verdicts ORDER BY last_used_s ASC LIMIT 32"
            ).fetchall()
            if not victims:
                return
            for (victim,) in victims:
                self._connection.execute("DELETE FROM verdicts WHERE pair_key = ?", (victim,))
                self._records.pop(victim, None)
                _OBS.inc("store.disk.evicted")
            self._connection.commit()
            self._connection.execute("PRAGMA incremental_vacuum")
            self._connection.commit()

    # ------------------------------------------------------------------
    # Query-level API (what Workspace talks to)
    # ------------------------------------------------------------------
    def serve(
        self,
        first: Query,
        second: Query,
        domain: Domain = Domain.RATIONALS,
        engine: Optional[str] = None,
    ) -> Optional[EquivalenceResult]:
        """A previously settled verdict for the pair, or ``None``.

        NOT_EQUIVALENT verdicts with a concrete witness are revalidated by
        re-evaluating both *caller* queries on the stored database under the
        caller's engine; a stale witness deletes the row and misses.
        """
        if self._closed:
            return None
        key = pair_key(first, second, domain)
        record = self.lookup(key.key)
        if record is None or record.domain != domain.value:
            return None
        from .witness import realize_result

        result = realize_result(record, first, second, flipped=key.flipped, engine=engine)
        if result is None:
            self.delete(key.key)
            return None
        return result

    def record(
        self,
        first: Query,
        second: Query,
        domain: Domain,
        result: EquivalenceResult,
        *,
        engine: Optional[str] = None,
        context: Optional[SharedBaseContext] = None,
    ) -> None:
        """Persist a freshly settled verdict for the pair."""
        if self._closed:
            return
        key = pair_key(first, second, domain)
        try:
            payload = encode_result(result, flipped=key.flipped)
        except StoreCodecError:
            # An unencodable witness value (should not happen for the
            # numeric results this system produces) loses persistence for
            # this one pair, never correctness.
            _OBS.inc("store.disk.unencodable")
            return
        self.write(
            StoredRecord(
                pair_key=key.key,
                verdict=result.verdict.value,
                method=result.method,
                details=result.details,
                domain=domain.value,
                engine=engine or "",
                base_fingerprint=base_fingerprint(context),
                payload=payload,
            )
        )

    # ------------------------------------------------------------------
    def clear_memory(self) -> None:
        """Drop the record LRU (disk rows stay)."""
        with self._lock:
            self._records.clear()

    def close(self) -> None:
        """Close the store: subsequent operations are silent misses/no-ops."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._records.clear()
            if self._connection is not None:
                self._flush_touches()
                self._connection.commit()
                self._connection.close()
                self._connection = None


# ----------------------------------------------------------------------
# The process-wide store
# ----------------------------------------------------------------------
#: The process-wide singleton slot: ``{"store": VerdictStore, "key": (path,
#: max_mb)}`` once :func:`shared_store` has run, empty before and after
#: resets.  A dict (rather than two globals) so the cache registry can own
#: it like every other module-level cache.
_SHARED_STORE: dict[str, object] = {}


def _environment_key() -> tuple[Optional[str], Optional[int]]:
    path = os.environ.get("REPRO_STORE_PATH") or None
    raw_limit = os.environ.get("REPRO_STORE_MAX_MB")
    try:
        max_mb = int(raw_limit) if raw_limit else None
    except ValueError:
        max_mb = None
    return path, max_mb


def shared_store() -> VerdictStore:
    """The process-wide store every tenant of the PR 9 service shares.

    In-memory unless ``REPRO_STORE_PATH`` names a database file.  The
    environment is re-read on every call, so a test (or an operator
    reloading config) that changes the path gets a fresh store instead of a
    stale one.
    """
    key = _environment_key()
    store = _SHARED_STORE.get("store")
    if not isinstance(store, VerdictStore) or _SHARED_STORE.get("key") != key:
        if isinstance(store, VerdictStore):
            store.close()
        store = VerdictStore(key[0], max_mb=key[1])
        _SHARED_STORE["store"] = store
        _SHARED_STORE["key"] = key
    return store


def default_store() -> Optional[VerdictStore]:
    """What a bare ``Workspace()`` uses: the shared store when
    ``REPRO_STORE_PATH`` opts in, otherwise ``None`` (today's in-memory-only
    behavior — one-shot callers see no change)."""
    if os.environ.get("REPRO_STORE_PATH"):
        return shared_store()
    return None


def reset_shared_store() -> None:
    """Close and drop the process-wide store (cache-registry clearer)."""
    store = _SHARED_STORE.pop("store", None)
    _SHARED_STORE.pop("key", None)
    if isinstance(store, VerdictStore):
        store.close()


register_cache("store/disk.py:_SHARED_STORE", "clear_service_caches", reset_shared_store)
