"""Aggregation functions.

This module implements the aggregation functions studied in the paper —
``count``, ``cntd`` (count distinct), ``parity``, ``sum``, ``prod``, ``avg``,
``max`` and ``top2`` — together with the natural companions the paper mentions
in passing (``min``, ``bot2`` and the generalized ``topK``/``botK``).

Each function carries

* an ``apply`` method evaluating it on a concrete bag of values,
* its structural traits (monoidal / idempotent / group, shiftable,
  singleton-determining, decomposable, order-decidable), matching Table 1 of
  the paper, and
* a ``decide_ordered_identity`` method deciding the validity of an *ordered
  identity* ``L → α(B) = α(B')`` (Section 4.2), which is the inner step of
  the bounded-equivalence procedure.

For shiftable functions the decider follows Theorem 4.4: a single satisfying
assignment of the complete ordering suffices.  For ``sum``, ``avg`` and
``prod`` the deciders implement the specialized procedures from the proofs of
Propositions 4.5 and 4.7.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections import Counter
from fractions import Fraction
from typing import Iterable, Optional, Sequence

from ..datalog.terms import Constant, Term
from ..domains import Domain, NumericValue
from ..errors import UnsupportedAggregateError
from ..orderings.complete_orderings import CompleteOrdering
from .monoids import (
    AbelianMonoid,
    BOT2_MONOID,
    INTEGER_ADDITION,
    MAX_MONOID,
    MIN_MONOID,
    NONZERO_MULTIPLICATION,
    PARITY_MONOID,
    RATIONAL_ADDITION,
    TOP2_MONOID,
    TopKMonoid,
)

#: A bag element, as produced by query evaluation: a tuple of numeric values.
ValueTuple = tuple[NumericValue, ...]
#: A bag element in symbolic form: a tuple of terms.
TermTuple = tuple[Term, ...]


class AggregationFunction(ABC):
    """Base class for aggregation functions."""

    #: Canonical name (lower case), e.g. ``"sum"``.
    name: str = "aggregate"
    #: Arity of the tuples the function aggregates: 0 (count, parity), 1
    #: (sum, max, ...), or ``None`` for "any arity" (cntd).
    input_arity: Optional[int] = 1
    #: The monoid the function is based on, when it is monoidal.
    monoid: Optional[AbelianMonoid] = None
    #: Whether the function is shiftable (Section 4.1).
    is_shiftable: bool = False
    #: Whether the function is singleton-determining (Section 7).
    is_singleton_determining: bool = True
    #: Whether the function is decomposable only over the nonzero rationals
    #: (the special situation of ``prod``, Theorem 6.6).
    decomposable_over_nonzero_only: bool = False
    #: Whether the function's value depends only on the *set* underlying the
    #: bag (``max``, ``min``, ``topK``/``botK``, ``cntd``).  Duplicate
    #: tolerance is what licenses threading the function through view
    #: unfoldings that multiply assignments without changing their projection
    #: (see :mod:`repro.rewriting.unfold`); duplicate-sensitive functions
    #: must be rejected there.  Cross-validated empirically by
    #: :func:`repro.aggregates.properties.duplicate_insensitivity_counterexample`.
    is_duplicate_insensitive: bool = False

    # ------------------------------------------------------------------
    # Structural traits
    # ------------------------------------------------------------------
    @property
    def is_monoidal(self) -> bool:
        return self.monoid is not None

    @property
    def is_idempotent_monoidal(self) -> bool:
        return self.monoid is not None and self.monoid.is_idempotent

    @property
    def is_group_monoidal(self) -> bool:
        return self.monoid is not None and self.monoid.is_group

    @property
    def is_decomposable(self) -> bool:
        """Whether the decomposition principles of Section 5 apply."""
        if self.decomposable_over_nonzero_only:
            return False
        return self.is_idempotent_monoidal or self.is_group_monoidal

    def is_order_decidable_over(self, domain: Domain) -> bool:
        """Whether ordered identities for the function can be decided over the
        domain.  All functions shipped with the library are order-decidable
        over both Z and Q (Propositions 4.2, 4.5, 4.7)."""
        return True

    # ------------------------------------------------------------------
    # Concrete evaluation
    # ------------------------------------------------------------------
    @abstractmethod
    def apply(self, bag: Iterable) -> object:
        """Evaluate the function on a bag of values.

        Bag elements may be numeric scalars (for unary functions) or tuples of
        numeric values; nullary functions only look at the number of elements.
        """

    def normalize_element(self, element) -> ValueTuple:
        """Coerce a bag element into a value tuple of the expected arity."""
        if isinstance(element, tuple):
            values = element
        else:
            values = (element,)
        if self.input_arity is not None and len(values) != self.input_arity:
            if self.input_arity == 0:
                return ()
            raise UnsupportedAggregateError(
                f"{self.name} aggregates {self.input_arity}-tuples, got {element!r}"
            )
        return tuple(values)

    def normalize_bag(self, bag: Iterable) -> list[ValueTuple]:
        return [self.normalize_element(element) for element in bag]

    def scalars(self, bag: Iterable) -> list[NumericValue]:
        """The bag as a list of scalars (for unary functions)."""
        return [element[0] for element in self.normalize_bag(bag)]

    # ------------------------------------------------------------------
    # Ordered identities (Section 4.2)
    # ------------------------------------------------------------------
    def decide_ordered_identity(
        self,
        ordering: CompleteOrdering,
        left_bag: Sequence[TermTuple],
        right_bag: Sequence[TermTuple],
    ) -> bool:
        """Decide the validity of ``L → α(left_bag) = α(right_bag)``.

        The default implementation applies Theorem 4.4: for a shiftable
        function a single satisfying assignment of ``L`` decides the identity.
        Non-shiftable functions override this method.
        """
        if not self.is_shiftable:
            raise UnsupportedAggregateError(
                f"{self.name} has no generic ordered-identity decider; "
                "a specialized decider must be provided"
            )
        assignment = ordering.instantiate()
        left_values = [_instantiate_element(element, assignment) for element in left_bag]
        right_values = [_instantiate_element(element, assignment) for element in right_bag]
        return self.apply(left_values) == self.apply(right_values)

    def __repr__(self) -> str:
        return f"<aggregation function {self.name}>"

    def __str__(self) -> str:
        return self.name


def _instantiate_element(element: TermTuple, assignment) -> ValueTuple:
    return tuple(
        term.value if isinstance(term, Constant) else assignment[term] for term in element
    )


def _canonical_element(element: TermTuple, ordering: CompleteOrdering) -> TermTuple:
    return tuple(ordering.canonical_term(term) for term in element)


# ----------------------------------------------------------------------
# Group aggregation functions
# ----------------------------------------------------------------------
class Count(AggregationFunction):
    """``count`` — the number of elements of the bag (a nullary function
    based on the group (Z, +, 0) with ``f(()) = 1``)."""

    name = "count"
    input_arity = 0
    monoid = INTEGER_ADDITION
    is_shiftable = True
    is_singleton_determining = True

    def apply(self, bag: Iterable) -> int:
        return sum(1 for _ in bag)

    def decide_ordered_identity(self, ordering, left_bag, right_bag) -> bool:
        # Cardinality comparison; equivalent to (but cheaper than) the generic
        # shiftable decider.
        return len(left_bag) == len(right_bag)


class Parity(AggregationFunction):
    """``parity`` — 0 or 1 depending on whether the bag has an even or odd
    number of elements (based on the group Z2)."""

    name = "parity"
    input_arity = 0
    monoid = PARITY_MONOID
    is_shiftable = True
    is_singleton_determining = True

    def apply(self, bag: Iterable) -> int:
        return sum(1 for _ in bag) % 2

    def decide_ordered_identity(self, ordering, left_bag, right_bag) -> bool:
        return len(left_bag) % 2 == len(right_bag) % 2


class Sum(AggregationFunction):
    """``sum`` — the sum of the elements (based on the group (Q, +, 0))."""

    name = "sum"
    input_arity = 1
    monoid = RATIONAL_ADDITION
    is_shiftable = False
    is_singleton_determining = True

    def apply(self, bag: Iterable) -> NumericValue:
        total = Fraction(0)
        for value in self.scalars(bag):
            total += Fraction(value)
        return int(total) if total.denominator == 1 else total

    def decide_ordered_identity(self, ordering, left_bag, right_bag) -> bool:
        """Proposition 4.5: compare the symbolic linear forms of the two bags.

        After quotienting by the ordering (and by integer pinning over Z), the
        identity is valid iff every free block occurs with the same
        multiplicity on both sides and the constant parts coincide.
        """
        return _sum_signature(left_bag, ordering) == _sum_signature(right_bag, ordering)


class Prod(AggregationFunction):
    """``prod`` — the product of the elements.

    Over Q± the function is based on the multiplicative group (Q±, ·, 1); over
    the full rationals or integers it is not a monoid aggregation function
    (0 absorbs), which is why equivalence needs the special treatment of
    Theorem 6.6.
    """

    name = "prod"
    input_arity = 1
    monoid = NONZERO_MULTIPLICATION
    is_shiftable = False
    is_singleton_determining = True
    decomposable_over_nonzero_only = True

    def apply(self, bag: Iterable) -> NumericValue:
        total = Fraction(1)
        for value in self.scalars(bag):
            total *= Fraction(value)
        return int(total) if total.denominator == 1 else total

    def decide_ordered_identity(self, ordering, left_bag, right_bag) -> bool:
        """Proposition 4.7: check the identity under every conservative
        extension of the ordering with the constant 0."""
        zero = Constant(0)
        extensions = list(ordering.conservative_extensions(zero))
        if not extensions:
            # The ordering itself is unsatisfiable once 0 is taken into
            # account; the identity is vacuously valid.
            return True
        for extension in extensions:
            if not _prod_identity_under(extension, left_bag, right_bag):
                return False
        return True


class Average(AggregationFunction):
    """``avg`` — the average of the elements.

    Not a monoid aggregation function, but order-decidable (Proposition 4.5):
    ``avg(B) = avg(B')`` iff ``sum(|B'| ⊗ B) = sum(|B| ⊗ B')``.
    """

    name = "avg"
    input_arity = 1
    monoid = None
    is_shiftable = False
    is_singleton_determining = True

    def apply(self, bag: Iterable) -> Optional[NumericValue]:
        values = self.scalars(bag)
        if not values:
            return None
        total = Fraction(0)
        for value in values:
            total += Fraction(value)
        average = total / len(values)
        return int(average) if average.denominator == 1 else average

    def decide_ordered_identity(self, ordering, left_bag, right_bag) -> bool:
        if not left_bag or not right_bag:
            return not left_bag and not right_bag
        scaled_left = list(left_bag) * len(right_bag)
        scaled_right = list(right_bag) * len(left_bag)
        return _sum_signature(scaled_left, ordering) == _sum_signature(scaled_right, ordering)


# ----------------------------------------------------------------------
# Idempotent aggregation functions
# ----------------------------------------------------------------------
class Max(AggregationFunction):
    """``max`` — the greatest element (based on the idempotent monoid Q⊥)."""

    name = "max"
    input_arity = 1
    monoid = MAX_MONOID
    is_shiftable = True
    is_singleton_determining = True
    is_duplicate_insensitive = True

    def apply(self, bag: Iterable) -> Optional[NumericValue]:
        values = self.scalars(bag)
        if not values:
            return None
        return max(values, key=Fraction)


class Min(AggregationFunction):
    """``min`` — the least element (the dual of ``max``; the paper notes the
    results for ``max`` carry over directly)."""

    name = "min"
    input_arity = 1
    monoid = MIN_MONOID
    is_shiftable = True
    is_singleton_determining = True
    is_duplicate_insensitive = True

    def apply(self, bag: Iterable) -> Optional[NumericValue]:
        values = self.scalars(bag)
        if not values:
            return None
        return min(values, key=Fraction)


class TopK(AggregationFunction):
    """``topK``/``botK`` — the K greatest (least) *distinct* elements, based
    on the idempotent monoid T_K (Example 2.1).  ``top2`` is the paper's
    headline instance.

    The result is a tuple of at most K distinct values in decreasing
    (increasing) order; missing positions — the paper's ⊥ — are simply absent.
    """

    input_arity = 1
    is_shiftable = True
    is_singleton_determining = True
    is_duplicate_insensitive = True  # "K greatest *distinct* elements"

    def __init__(self, k: int, largest: bool = True):
        self.k = k
        self.largest = largest
        self.name = f"{'top' if largest else 'bot'}{k}"
        self.monoid = TopKMonoid(k, largest=largest)

    def apply(self, bag: Iterable) -> tuple:
        values = set(self.scalars(bag))
        ordered = sorted(values, key=Fraction, reverse=self.largest)
        return tuple(ordered[: self.k])


# ----------------------------------------------------------------------
# Count distinct
# ----------------------------------------------------------------------
class CountDistinct(AggregationFunction):
    """``cntd`` — the number of distinct elements.

    Shiftable (hence order-decidable), but neither monoidal nor
    singleton-determining; unbounded equivalence for ``cntd``-queries is left
    open by the paper.
    """

    name = "cntd"
    input_arity = None
    monoid = None
    is_shiftable = True
    is_singleton_determining = False
    is_duplicate_insensitive = True

    def apply(self, bag: Iterable) -> int:
        return len({self.normalize_element(element) for element in bag})


# ----------------------------------------------------------------------
# Symbolic helpers for the sum / prod deciders
# ----------------------------------------------------------------------
def _sum_signature(bag: Sequence[TermTuple], ordering: CompleteOrdering):
    """The linear form of a symbolic bag: (constant part, multiplicity of each
    free block representative)."""
    constant_part = Fraction(0)
    multiplicities: Counter = Counter()
    for element in bag:
        if len(element) != 1:
            raise UnsupportedAggregateError("sum/avg aggregate single values, not tuples")
        term = ordering.canonical_term(element[0])
        if isinstance(term, Constant):
            constant_part += Fraction(term.value)
        else:
            multiplicities[term] += 1
    return constant_part, multiplicities


def _prod_identity_under(
    ordering: CompleteOrdering, left_bag: Sequence[TermTuple], right_bag: Sequence[TermTuple]
) -> bool:
    """The validity test of Proposition 4.7 under a single (already extended
    and reduced) complete ordering."""
    left_constant, left_exponents = _prod_signature(left_bag, ordering)
    right_constant, right_exponents = _prod_signature(right_bag, ordering)
    if left_constant == 0 and right_constant == 0:
        return True
    return left_constant == right_constant and left_exponents == right_exponents


def _prod_signature(bag: Sequence[TermTuple], ordering: CompleteOrdering):
    constant_part = Fraction(1)
    exponents: Counter = Counter()
    for element in bag:
        if len(element) != 1:
            raise UnsupportedAggregateError("prod aggregates single values, not tuples")
        term = ordering.canonical_term(element[0])
        if isinstance(term, Constant):
            constant_part *= Fraction(term.value)
        else:
            exponents[term] += 1
    return constant_part, exponents


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
COUNT = Count()
PARITY = Parity()
SUM = Sum()
PROD = Prod()
AVG = Average()
MAX = Max()
MIN = Min()
TOP2 = TopK(2, largest=True)
BOT2 = TopK(2, largest=False)
CNTD = CountDistinct()

#: The eight functions of Table 1, in the paper's order.
PAPER_FUNCTIONS: tuple[AggregationFunction, ...] = (
    COUNT,
    MAX,
    SUM,
    PROD,
    TOP2,
    AVG,
    CNTD,
    PARITY,
)

_REGISTRY: dict[str, AggregationFunction] = {
    "count": COUNT,
    "parity": PARITY,
    "sum": SUM,
    "prod": PROD,
    "product": PROD,
    "avg": AVG,
    "average": AVG,
    "max": MAX,
    "min": MIN,
    "top2": TOP2,
    "bot2": BOT2,
    "cntd": CNTD,
    "countd": CNTD,
    "count_distinct": CNTD,
}

for _k in (3, 4, 5):
    _REGISTRY[f"top{_k}"] = TopK(_k, largest=True)
    _REGISTRY[f"bot{_k}"] = TopK(_k, largest=False)


def get_function(name: str) -> AggregationFunction:
    """Look up an aggregation function by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise UnsupportedAggregateError(
            f"unknown aggregation function {name!r}; known functions: {known}"
        ) from exc


def registered_function_names() -> list[str]:
    """All names (including aliases) accepted by :func:`get_function`."""
    return sorted(_REGISTRY)
