"""Abstract properties of aggregation functions, and empirical checkers.

Table 1 of the paper classifies the aggregation functions along four abstract
properties:

* **shiftable** (Section 4.1): the result of the function depends only on the
  relative order of the bag elements, not on their concrete values;
* **order-decidable** (Section 4.2): validity of ordered identities
  ``L → α(B) = α(B')`` is decidable;
* **decomposable** (Section 5): the function is an idempotent monoid or group
  aggregation function, so the decomposition principles apply;
* **singleton-determining** (Section 7): on singleton bags the function is
  injective.

This module regenerates the table from the declared traits of the implemented
functions and provides *empirical checkers* that search for counterexamples to
each property on randomized inputs.  The checkers serve two purposes: they
cross-validate the declared traits in the test suite, and they demonstrate the
*failure* of a property for the functions the paper says lack it (e.g. they
find shiftability counterexamples for ``sum`` and ``prod``, mirroring the
example after Proposition 4.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Optional, Sequence

from ..datalog.terms import Constant, Term, Variable
from ..domains import Domain, NumericValue
from ..orderings.complete_orderings import CompleteOrdering, enumerate_complete_orderings
from .functions import PAPER_FUNCTIONS, AggregationFunction


# ----------------------------------------------------------------------
# Shiftability
# ----------------------------------------------------------------------
@dataclass
class ShiftabilityCounterexample:
    """Witness that a function is not shiftable."""

    left_bag: list
    right_bag: list
    shifting_function: dict
    before_equal: bool
    after_equal: bool

    def __str__(self) -> str:
        return (
            f"B={self.left_bag}, B'={self.right_bag}, φ={self.shifting_function}: "
            f"equality before={self.before_equal}, after={self.after_equal}"
        )


def shiftability_counterexample(
    function: AggregationFunction,
    rng: random.Random,
    trials: int = 200,
    max_size: int = 4,
) -> Optional[ShiftabilityCounterexample]:
    """Search for bags and a shifting function violating shiftability.

    Returns ``None`` when no counterexample is found in ``trials`` attempts
    (which is evidence of, not proof of, shiftability).
    """
    arity = function.input_arity if function.input_arity is not None else 1
    for _ in range(trials):
        support = sorted(rng.sample(range(-6, 12), k=rng.randint(2, 5)))
        left = _random_bag(rng, support, arity, max_size)
        right = _random_bag(rng, support, arity, max_size)
        shift = _random_shifting_function(rng, support)
        shifted_left = [_apply_shift(element, shift) for element in left]
        shifted_right = [_apply_shift(element, shift) for element in right]
        before = function.apply(left) == function.apply(right)
        after = function.apply(shifted_left) == function.apply(shifted_right)
        if before != after:
            return ShiftabilityCounterexample(left, right, shift, before, after)
    return None


def _random_bag(rng: random.Random, support: Sequence[int], arity: int, max_size: int) -> list:
    size = rng.randint(0, max_size)
    bag = []
    for _ in range(size):
        bag.append(tuple(rng.choice(support) for _ in range(max(arity, 0))))
    return bag


def _random_shifting_function(rng: random.Random, support: Sequence[int]) -> dict:
    """A random strictly monotonic function defined on ``support``."""
    image = []
    current = rng.randint(-10, 0)
    for _ in support:
        current += rng.randint(1, 5)
        image.append(current)
    return dict(zip(support, image))


def _apply_shift(element: tuple, shift: dict) -> tuple:
    return tuple(shift[value] for value in element)


# ----------------------------------------------------------------------
# Duplicate insensitivity
# ----------------------------------------------------------------------
@dataclass
class DuplicateInsensitivityCounterexample:
    """Witness that a function distinguishes duplicates: a bag on which it
    disagrees with its own value on the bag's underlying set."""

    bag: list
    deduplicated: list
    bag_value: object
    set_value: object

    def __str__(self) -> str:
        return (
            f"B={self.bag} -> {self.bag_value!r}, "
            f"set(B)={self.deduplicated} -> {self.set_value!r}"
        )


def duplicate_insensitivity_counterexample(
    function: AggregationFunction,
    rng: random.Random,
    trials: int = 200,
    max_size: int = 4,
) -> Optional[DuplicateInsensitivityCounterexample]:
    """Search for a bag whose value under the function changes when its
    duplicates are dropped.

    ``None`` is evidence of (not proof of) duplicate insensitivity — the
    trait the rewriting unfolder relies on to thread ``max``/``min``/
    ``topK``/``cntd`` through duplicating views
    (:attr:`~repro.aggregates.functions.AggregationFunction.is_duplicate_insensitive`);
    for the duplicate-sensitive functions the checker finds witnesses
    quickly (``sum([1, 1]) ≠ sum([1])``).
    """
    arity = function.input_arity if function.input_arity is not None else 1
    for _ in range(trials):
        support = rng.sample(range(-6, 12), k=rng.randint(1, 5))
        bag = _random_bag(rng, support, arity, max_size)
        if not bag:
            continue
        # Force at least one duplicate — deduplication must change something.
        bag = bag + [rng.choice(bag) for _ in range(rng.randint(1, 3))]
        deduplicated = list(dict.fromkeys(bag))
        bag_value = function.apply(bag)
        set_value = function.apply(deduplicated)
        if bag_value != set_value:
            return DuplicateInsensitivityCounterexample(
                bag, deduplicated, bag_value, set_value
            )
    return None


# ----------------------------------------------------------------------
# Singleton determination
# ----------------------------------------------------------------------
def singleton_determining_counterexample(
    function: AggregationFunction, values: Iterable[NumericValue] = range(-3, 4)
) -> Optional[tuple]:
    """Two distinct singleton bags on which the function agrees, if any."""
    arity = function.input_arity
    if arity == 0:
        # Nullary functions are vacuously singleton-determining: their domain
        # has a single element (the empty tuple).
        return None
    candidates = list(values)
    elements: list[tuple]
    if arity is None or arity == 1:
        elements = [(value,) for value in candidates]
    else:
        elements = [tuple([value] * arity) for value in candidates]
    for index, first in enumerate(elements):
        for second in elements[index + 1 :]:
            if function.apply([first]) == function.apply([second]):
                return (first, second)
    return None


# ----------------------------------------------------------------------
# Decomposition principles (Propositions 5.1 and 5.2)
# ----------------------------------------------------------------------
def idempotent_decomposition_counterexample(
    function: AggregationFunction, rng: random.Random, trials: int = 100
) -> Optional[tuple]:
    """Search for a violation of the idempotent decomposition principle:
    ``α(∪ A_i) = Σ_i α(A_i)`` in the underlying monoid."""
    if not function.is_idempotent_monoidal:
        return None
    monoid = function.monoid
    assert monoid is not None
    for _ in range(trials):
        family = _random_set_family(rng, function)
        union: set = set()
        for members in family:
            union |= members
        direct = function.apply(sorted(union))
        combined = monoid.combine(function.apply(sorted(members)) for members in family)
        if direct != combined:
            return (family, direct, combined)
    return None


def group_decomposition_counterexample(
    function: AggregationFunction, rng: random.Random, trials: int = 100
) -> Optional[tuple]:
    """Search for a violation of the inclusion–exclusion decomposition
    principle for group aggregation functions (Proposition 5.2)."""
    if not function.is_group_monoidal:
        return None
    monoid = function.monoid
    assert monoid is not None
    for _ in range(trials):
        family = _random_set_family(rng, function)
        union: set = set()
        for members in family:
            union |= members
        direct = function.apply(sorted(union))
        total = monoid.neutral()
        sign = 1
        for size in range(1, len(family) + 1):
            layer = monoid.neutral()
            for subset in _combinations(family, size):
                intersection = set(subset[0])
                for members in subset[1:]:
                    intersection &= members
                layer = monoid.operation(layer, function.apply(sorted(intersection)))
            total = monoid.operation(total, layer) if sign > 0 else monoid.subtract(total, layer)
            sign = -sign
        if direct != total:
            return (family, direct, total)
    return None


def _random_set_family(rng: random.Random, function: AggregationFunction) -> list[set]:
    arity = function.input_arity if function.input_arity is not None else 1
    def draw_value() -> int:
        value = rng.randint(-5, 9)
        if function.decomposable_over_nonzero_only:
            # prod is a group aggregation function over Q± only; keep the
            # random universe inside that carrier (Table 1's "over Q±" cell).
            while value == 0:
                value = rng.randint(-5, 9)
        return value

    universe = [tuple(draw_value() for _ in range(max(arity, 1))) for _ in range(6)]
    if arity == 0:
        # Nullary functions aggregate copies of the empty tuple; sets of
        # assignments are modelled as sets of distinct opaque markers.
        universe = [(index,) for index in range(6)]
    family = []
    for _ in range(rng.randint(1, 4)):
        family.append({element for element in universe if rng.random() < 0.5})
    return family


def _combinations(family: Sequence[set], size: int):
    import itertools

    return itertools.combinations(family, size)


# ----------------------------------------------------------------------
# Order decidability (cross-check of the ordered-identity deciders)
# ----------------------------------------------------------------------
@dataclass
class OrderedIdentityInconsistency:
    """Witness that a decider disagrees with concrete evaluation."""

    ordering: CompleteOrdering
    left_bag: list
    right_bag: list
    decided_valid: bool
    assignment: dict
    left_value: object
    right_value: object

    def __str__(self) -> str:
        return (
            f"L={self.ordering}, B={self.left_bag}, B'={self.right_bag}: decider says "
            f"valid={self.decided_valid} but under {self.assignment} values are "
            f"{self.left_value} vs {self.right_value}"
        )


def ordered_identity_inconsistency(
    function: AggregationFunction,
    domain: Domain,
    rng: random.Random,
    trials: int = 60,
    realizations: int = 8,
) -> Optional[OrderedIdentityInconsistency]:
    """Cross-check ``decide_ordered_identity`` against concrete evaluation.

    * If the decider declares the identity **valid**, every sampled satisfying
      assignment must make the two aggregates equal.
    * If it declares the identity **invalid**, the check only records an
      inconsistency when *no* sampled assignment distinguishes the bags *and*
      the exhaustive fallback below finds none either — a heuristic, but a
      strong one for the small instances generated here.
    """
    for _ in range(trials):
        terms = _random_term_set(rng, domain)
        orderings = [
            ordering
            for ordering in enumerate_complete_orderings(terms, domain)
            if ordering.is_satisfiable()
        ]
        if not orderings:
            continue
        ordering = rng.choice(orderings)
        arity = function.input_arity if function.input_arity is not None else 1
        left = _random_term_bag(rng, terms, arity)
        right = _random_term_bag(rng, terms, arity)
        decided = function.decide_ordered_identity(ordering, left, right)
        assignments = [ordering.instantiate()]
        for _ in range(realizations):
            assignments.append(random_realization(ordering, rng))
        found_difference = None
        for assignment in assignments:
            left_value = function.apply([_instantiate(element, assignment) for element in left])
            right_value = function.apply([_instantiate(element, assignment) for element in right])
            if left_value != right_value:
                found_difference = (assignment, left_value, right_value)
                break
        if decided and found_difference is not None:
            assignment, left_value, right_value = found_difference
            return OrderedIdentityInconsistency(
                ordering, list(left), list(right), decided, assignment, left_value, right_value
            )
        if not decided and found_difference is None and function.is_shiftable:
            # For shiftable functions a single assignment decides the identity
            # (Theorem 4.4), so "invalid but indistinguishable" is a real
            # inconsistency.
            assignment = assignments[0]
            left_value = function.apply([_instantiate(element, assignment) for element in left])
            right_value = function.apply([_instantiate(element, assignment) for element in right])
            return OrderedIdentityInconsistency(
                ordering, list(left), list(right), decided, assignment, left_value, right_value
            )
    return None


def _random_term_set(rng: random.Random, domain: Domain) -> list[Term]:
    variables = [Variable(name) for name in ("u", "v", "w")[: rng.randint(1, 3)]]
    constants = []
    if rng.random() < 0.7:
        constants.append(Constant(rng.randint(-2, 2)))
    if rng.random() < 0.3:
        value = rng.randint(3, 5)
        constants.append(Constant(value))
    return variables + constants


def _random_term_bag(rng: random.Random, terms: Sequence[Term], arity: int) -> list[tuple]:
    bag = []
    for _ in range(rng.randint(0, 4)):
        bag.append(tuple(rng.choice(terms) for _ in range(max(arity, 0))))
    return bag


def _instantiate(element: tuple, assignment: dict) -> tuple:
    return tuple(
        term.value if isinstance(term, Constant) else assignment[term] for term in element
    )


def random_realization(ordering: CompleteOrdering, rng: random.Random) -> dict[Term, NumericValue]:
    """A randomly chosen concrete assignment realizing a complete ordering.

    Constants (and blocks pinned by the discrete domain) keep their forced
    values; free blocks receive random values consistent with the block order.
    """
    blocks = ordering.blocks
    count = len(blocks)
    pinned = ordering.pinned_blocks()
    values: list[Optional[Fraction]] = [None] * count
    for index in range(count):
        if index in pinned:
            values[index] = Fraction(pinned[index])
            continue
        next_pinned = next((j for j in range(index + 1, count) if j in pinned), None)
        previous = values[index - 1] if index > 0 else None
        if ordering.domain.is_discrete:
            if next_pinned is None:
                low = previous + 1 if previous is not None else Fraction(rng.randint(-8, 0))
                values[index] = low + rng.randint(0, 4)
            else:
                high = Fraction(pinned[next_pinned]) - (next_pinned - index)
                low = previous + 1 if previous is not None else high - rng.randint(0, 4)
                values[index] = Fraction(rng.randint(int(low), int(high)))
        else:
            if next_pinned is None:
                low = previous if previous is not None else Fraction(rng.randint(-8, 0))
                values[index] = low + Fraction(rng.randint(1, 8), rng.randint(1, 3))
            else:
                high = Fraction(pinned[next_pinned])
                low = previous if previous is not None else high - rng.randint(1, 8)
                remaining = next_pinned - index
                fraction = Fraction(rng.randint(1, 9), 10 * remaining)
                values[index] = low + (high - low) * fraction
    assignment: dict[Term, NumericValue] = {}
    for index, block in enumerate(blocks):
        concrete = values[index]
        assert concrete is not None
        numeric: NumericValue = int(concrete) if concrete.denominator == 1 else concrete
        for term in block:
            assignment[term] = term.value if isinstance(term, Constant) else numeric
    return assignment


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
@dataclass
class PropertyRow:
    """One row of Table 1."""

    function: str
    shiftable: bool
    order_decidable: bool
    decomposable: bool
    decomposable_note: str
    singleton_determining: bool

    def cells(self) -> tuple[str, str, str, str]:
        def mark(flag: bool, note: str = "") -> str:
            if note:
                return note
            return "yes" if flag else "no"

        return (
            mark(self.shiftable),
            mark(self.order_decidable),
            mark(self.decomposable, self.decomposable_note),
            mark(self.singleton_determining),
        )


#: The paper's Table 1, transcribed for comparison in tests and benchmarks.
PAPER_TABLE1: dict[str, tuple[bool, bool, str, bool]] = {
    "count": (True, True, "yes", True),
    "max": (True, True, "yes", True),
    "sum": (False, True, "yes", True),
    "prod": (False, True, "over Q±", True),
    "top2": (True, True, "yes", True),
    "avg": (False, True, "no", True),
    "cntd": (True, True, "no", False),
    "parity": (True, True, "yes", True),
}


def build_table1(functions: Sequence[AggregationFunction] = PAPER_FUNCTIONS) -> list[PropertyRow]:
    """Regenerate Table 1 from the declared traits of the implementation."""
    rows = []
    for function in functions:
        note = ""
        if function.decomposable_over_nonzero_only:
            note = "over Q±"
        rows.append(
            PropertyRow(
                function=function.name,
                shiftable=function.is_shiftable,
                order_decidable=function.is_order_decidable_over(Domain.RATIONALS)
                and function.is_order_decidable_over(Domain.INTEGERS),
                decomposable=function.is_decomposable,
                decomposable_note=note,
                singleton_determining=function.is_singleton_determining,
            )
        )
    return rows


def table1_matches_paper(rows: Iterable[PropertyRow]) -> bool:
    """Whether the regenerated Table 1 agrees with the paper cell by cell."""
    for row in rows:
        expected = PAPER_TABLE1.get(row.function)
        if expected is None:
            continue
        shiftable, order_decidable, decomposable_cell, singleton = expected
        if row.shiftable != shiftable or row.order_decidable != order_decidable:
            return False
        if row.singleton_determining != singleton:
            return False
        if decomposable_cell == "yes" and not row.decomposable:
            return False
        if decomposable_cell == "no" and (row.decomposable or row.decomposable_note):
            return False
        if decomposable_cell == "over Q±" and row.decomposable_note != "over Q±":
            return False
    return True


def format_table1(rows: Sequence[PropertyRow]) -> str:
    """Render Table 1 in the same layout as the paper."""
    header = (
        f"{'':10s} {'Shiftable':>10s} {'Order-Dec.':>11s} {'Decomposable':>13s} "
        f"{'Singleton-Det.':>15s}"
    )
    lines = [header]
    for row in rows:
        cells = row.cells()
        lines.append(
            f"{row.function:10s} {cells[0]:>10s} {cells[1]:>11s} {cells[2]:>13s} {cells[3]:>15s}"
        )
    return "\n".join(lines)
