"""Abelian monoids underlying the monoidal aggregation functions.

Section 2 of the paper defines aggregation functions of the form
``α_f^+(B) = Σ_{a∈B} f(a)`` where the sum is taken in an abelian monoid
``(M, +, 0)``.  Two subclasses matter for the decidability results:

* **idempotent** monoids (``a + a = a``), e.g. the max monoid on Q⊥ and the
  top-2 monoid T2, and
* **groups** (every element has an inverse), e.g. (Z, +, 0), (Q, +, 0),
  (Z2, +, 0) and (Q±, ·, 1).

Each monoid here exposes the operation, the neutral element, the structural
flags and (for groups) inverses, together with small law-checking helpers used
by the property-based tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction
from typing import Iterable, Optional, Sequence

from ..domains import NumericValue
from ..errors import DomainError


class AbelianMonoid(ABC):
    """An abelian monoid ``(M, +, 0)``."""

    #: Human-readable name of the monoid.
    name: str = "monoid"
    #: Whether ``a + a = a`` for every element.
    is_idempotent: bool = False
    #: Whether every element has an inverse.
    is_group: bool = False

    @abstractmethod
    def operation(self, left, right):
        """The binary operation of the monoid."""

    @abstractmethod
    def neutral(self):
        """The neutral element of the monoid."""

    def inverse(self, element):
        """The inverse of ``element`` (only defined for groups)."""
        raise DomainError(f"{self.name} is not a group; inverses are undefined")

    def contains(self, element) -> bool:
        """Whether ``element`` belongs to the monoid's carrier set."""
        return True

    def combine(self, elements: Iterable):
        """Fold the operation over a (multi)set of elements."""
        result = self.neutral()
        for element in elements:
            result = self.operation(result, element)
        return result

    def subtract(self, left, right):
        """``left + (-right)`` for group monoids."""
        return self.operation(left, self.inverse(right))

    # ------------------------------------------------------------------
    # Law checking (used by tests)
    # ------------------------------------------------------------------
    def check_laws(self, samples: Sequence) -> Optional[str]:
        """Return a description of the first violated monoid law, if any."""
        neutral = self.neutral()
        for a in samples:
            if self.operation(a, neutral) != a or self.operation(neutral, a) != a:
                return f"neutral element law fails for {a!r}"
        for a in samples:
            for b in samples:
                if self.operation(a, b) != self.operation(b, a):
                    return f"commutativity fails for {a!r}, {b!r}"
        for a in samples:
            for b in samples:
                for c in samples:
                    left = self.operation(self.operation(a, b), c)
                    right = self.operation(a, self.operation(b, c))
                    if left != right:
                        return f"associativity fails for {a!r}, {b!r}, {c!r}"
        if self.is_idempotent:
            for a in samples:
                if self.operation(a, a) != a:
                    return f"idempotency fails for {a!r}"
        if self.is_group:
            for a in samples:
                if self.operation(a, self.inverse(a)) != neutral:
                    return f"inverse law fails for {a!r}"
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class IntegerAdditionMonoid(AbelianMonoid):
    """(Z, +, 0) — the group underlying ``count`` and ``sum`` over Z."""

    name = "(Z, +, 0)"
    is_group = True

    def operation(self, left, right):
        return left + right

    def neutral(self):
        return 0

    def inverse(self, element):
        return -element

    def contains(self, element) -> bool:
        return isinstance(element, int) and not isinstance(element, bool)


class RationalAdditionMonoid(AbelianMonoid):
    """(Q, +, 0) — the group underlying ``sum`` over Q."""

    name = "(Q, +, 0)"
    is_group = True

    def operation(self, left, right):
        return _normalize(Fraction(left) + Fraction(right))

    def neutral(self):
        return 0

    def inverse(self, element):
        return _normalize(-Fraction(element))

    def contains(self, element) -> bool:
        return isinstance(element, (int, Fraction)) and not isinstance(element, bool)


class ParityMonoid(AbelianMonoid):
    """Z2 = {0, 1} with 1 + 1 = 0 — the group underlying ``parity``."""

    name = "(Z2, +, 0)"
    is_group = True

    def operation(self, left, right):
        return (left + right) % 2

    def neutral(self):
        return 0

    def inverse(self, element):
        return element % 2

    def contains(self, element) -> bool:
        return element in (0, 1)


class NonzeroRationalMultiplicationMonoid(AbelianMonoid):
    """(Q±, ·, 1) — the group underlying ``prod`` over the nonzero rationals."""

    name = "(Q±, ·, 1)"
    is_group = True

    def operation(self, left, right):
        return _normalize(Fraction(left) * Fraction(right))

    def neutral(self):
        return 1

    def inverse(self, element):
        if element == 0:
            raise DomainError("0 has no multiplicative inverse in Q±")
        return _normalize(1 / Fraction(element))

    def contains(self, element) -> bool:
        if isinstance(element, bool):
            return False
        return isinstance(element, (int, Fraction)) and element != 0


class MaxMonoid(AbelianMonoid):
    """Q⊥ with the binary maximum — the idempotent monoid underlying ``max``.

    The neutral element ⊥ ("less than every number") is represented by
    ``None``.
    """

    name = "(Q⊥, max, ⊥)"
    is_idempotent = True

    def operation(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return left if Fraction(left) >= Fraction(right) else right

    def neutral(self):
        return None


class MinMonoid(AbelianMonoid):
    """The dual of :class:`MaxMonoid`, underlying ``min``."""

    name = "(Q⊤, min, ⊤)"
    is_idempotent = True

    def operation(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return left if Fraction(left) <= Fraction(right) else right

    def neutral(self):
        return None


class TopKMonoid(AbelianMonoid):
    """The monoid T_K of the K greatest *distinct* elements (Example 2.1).

    Elements are tuples of distinct values in strictly decreasing order, of
    length at most K; the neutral element is the empty tuple (the paper's
    ``(⊥, …, ⊥)``).  The operation merges two tuples and keeps the K greatest
    distinct values.
    """

    is_idempotent = True

    def __init__(self, k: int, largest: bool = True):
        if k < 1:
            raise DomainError("TopKMonoid requires k >= 1")
        self.k = k
        self.largest = largest
        direction = "top" if largest else "bot"
        self.name = f"(T{k}, ⊕, ∅) [{direction}]"

    def operation(self, left, right):
        merged = set(left) | set(right)
        ordered = sorted(merged, key=Fraction, reverse=self.largest)
        return tuple(ordered[: self.k])

    def neutral(self):
        return ()

    def contains(self, element) -> bool:
        if not isinstance(element, tuple) or len(element) > self.k:
            return False
        keys = [Fraction(value) for value in element]
        expected = sorted(keys, reverse=self.largest)
        return keys == expected and len(set(keys)) == len(keys)


def _normalize(value: Fraction) -> NumericValue:
    return int(value) if value.denominator == 1 else value


#: Shared singleton instances (the monoids are stateless).
INTEGER_ADDITION = IntegerAdditionMonoid()
RATIONAL_ADDITION = RationalAdditionMonoid()
PARITY_MONOID = ParityMonoid()
NONZERO_MULTIPLICATION = NonzeroRationalMultiplicationMonoid()
MAX_MONOID = MaxMonoid()
MIN_MONOID = MinMonoid()
TOP2_MONOID = TopKMonoid(2, largest=True)
BOT2_MONOID = TopKMonoid(2, largest=False)
