"""The incremental :class:`Workspace`: persistent caches, a persistent pool,
and delta equivalence matrices.

A workspace is a stateful session over a growing query catalog and view
catalog.  Where the one-shot entry points pay their fixed costs per call, a
workspace pays them once and amortizes them over the session:

* **One front door.**  :meth:`Workspace.add` ingests Datalog strings, SQL
  SELECT statements, or :class:`~repro.datalog.queries.Query` ASTs;
  :meth:`Workspace.register_view` ingests Datalog-defined
  :class:`~repro.rewriting.views.View` objects, ``CREATE VIEW`` SQL, or
  ``(name, definition)`` pairs.  One :class:`~repro.sql.translate.SqlTranslator`
  holds the session's schema, so SQL and Datalog definitions share a single
  view catalog and registered views are readable from later SELECTs.

* **Delta equivalence matrices.**  :meth:`Workspace.equivalences` returns
  the full matrix of the current catalog but decides only the cells no
  earlier call settled (new-query × catalog).  Delta cells are decided
  through :func:`repro.workloads.batch.decide_pairs` under the workspace's
  *persistent* :class:`~repro.core.bounded.SharedBaseContext` — grown
  monotonically as queries arrive, so once the catalog's vocabulary
  plateaus, the sweep-group BASE recipes (and every Γ / signature /
  group-index cache entry keyed under them) from earlier calls are hit
  verbatim.  A structural verdict cache keyed by the query pair itself
  (queries hash by their cached structural hash) short-circuits cells whose
  exact ASTs were already decided under different names.

* **A persistent pool.**  With ``workers=N`` the workspace owns a
  :class:`~repro.parallel.executor.PersistentProcessExecutor`: the pool
  forks once — lazily, after the first sweep's serial warm prefix, so the
  children inherit the warm shared caches copy-on-write — and every later
  ``equivalences()`` / ``rewrite()`` call reuses the same workers, whose
  per-process setup memos keep accumulating.  ``close()`` (or the context
  manager) tears the pool down.

* **Cached rewriting.**  :meth:`Workspace.rewrite` runs the PR 4 engine
  against the session's view catalog through the session executor, caching
  verification outcomes per (query, limit); registering a view invalidates
  the rewriting caches (verdicts may change), while adding queries does not.

Reuse caveat: a cell decided in an earlier call is returned as decided then.
Verdicts and methods are stable — equivalence is a property of the pair —
but a *witness database* is whichever counterexample the enumeration of that
call met first, which can differ from what a from-scratch matrix over the
grown catalog would report (the BASE recipe may have grown since).  Every
returned witness remains a genuine distinguishing database.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping, Optional, Sequence, Union

from ..core.bounded import SharedBaseContext
from ..core.equivalence import EquivalenceResult
from ..datalog.database import Database
from ..datalog.parser import parse_query
from ..datalog.queries import Query
from ..domains import Domain
from ..engine.modes import ENGINE_MODES, active_engine, engine_scope
from ..engine.planner import plan_cache_stats
from ..errors import ReproError, RewritingError
from ..obs import REGISTRY as _OBS
from ..obs import CellExplanation, dispatch_class_of, normalization_of
from ..obs import span as _span
from ..parallel.executor import (
    Executor,
    PersistentProcessExecutor,
    default_workers,
    in_worker,
)
from ..rewriting.candidates import RejectedCandidate
from ..rewriting.engine import (
    RewritingEngine,
    RewritingReport,
    VerifiedRewriting,
    assemble_report,
)
from ..rewriting.views import View, ViewCatalog
from ..sql.translate import Schema, SqlTranslator
from ..store.disk import VerdictStore, default_store, shared_store

#: Cap on the structural verdict cache; on overflow the least-recently-used
#: quarter is evicted (hits refresh recency), bounding a very long session
#: while keeping its hot pairs resident.
_VERDICT_CACHE_LIMIT = 65536

#: Cap on the rewrite-verification cache.  Entries are heavy (full
#: VerifiedRewriting lists with equivalence reports), so the cap is much
#: lower than the verdict cache's; eviction is oldest-quarter, same scheme.
_REWRITE_CACHE_LIMIT = 256

#: Anything :meth:`Workspace.add` accepts.
QueryLike = Union[Query, str]


@dataclass(frozen=True)
class WorkspaceStats:
    """Counters describing how much work a workspace has reused.

    Beyond the session-layer reuse counters, ``counters`` carries the
    process-wide metrics registry (:data:`repro.obs.REGISTRY`) grouped by
    scope — ``engine`` (kernel/store/Γ/dispatch), ``sweep`` (enumeration
    effort), ``parallel`` (pool lifecycle) and ``worker`` (deltas shipped
    back from pool workers and merged by the parent) — and ``plan_cache``
    the planner's LRU statistics.  :meth:`report` renders the whole thing
    as an indented hierarchy.
    """

    queries: int
    views: int
    decided_cells: int
    verdict_cache_hits: int
    store_hits: int
    rewrite_cache_hits: int
    pool_forks: int
    workers: int
    counters: Mapping[str, Mapping[str, int]] = field(default_factory=dict)
    plan_cache: Mapping[str, int] = field(default_factory=dict)

    def report(self) -> str:
        """The hierarchical text rendering of every layer's counters."""
        lines = ["workspace:"]
        for label in (
            "queries", "views", "decided_cells", "verdict_cache_hits",
            "store_hits", "rewrite_cache_hits", "pool_forks", "workers",
        ):
            lines.append(f"  {label}: {getattr(self, label)}")
        if self.plan_cache:
            lines.append("plan_cache:")
            for key, value in sorted(self.plan_cache.items()):
                lines.append(f"  {key}: {value}")
        for scope, values in self.counters.items():
            lines.append(f"{scope}:")
            for key, value in values.items():
                lines.append(f"  {key}: {value}")
        return "\n".join(lines)


class Workspace:
    """A long-lived session over a growing catalog of queries and views.

    ``workers=N`` gives the session a persistent process pool (``None``
    consults ``REPRO_WORKERS``; 1 means serial); ``schema`` declares base
    tables for the SQL front door (``{table: [column, ...]}``); the decision
    parameters (``domain``, ``max_subsets``, ``counterexample_trials``,
    ``unknown_bound``, ``seed``, ``normalize``, ``shared_base``, ``sweep``)
    mirror :func:`repro.workloads.batch.equivalence_matrix` and apply to
    every decision the session makes.  ``engine`` pins the evaluation engine
    (``"naive"`` | ``"planned"`` | ``"compiled"``) for every decision and
    rewriting verification of the session; ``None`` follows the process-wide
    mode (``REPRO_ENGINE``, default ``compiled``).  ``store`` selects the
    second verdict tier behind the structural cache: a
    :class:`~repro.store.VerdictStore` to use one explicitly, ``True`` for
    the process-wide shared store, ``False`` for none, and ``None`` (the
    default) for the shared store exactly when ``REPRO_STORE_PATH`` opts the
    process in — so a bare ``Workspace()`` without the env var behaves as it
    always did.  Use as a context manager (or call :meth:`close`) to release
    the pool.
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        schema: Optional[Schema] = None,
        domain: Domain = Domain.RATIONALS,
        max_subsets: int = 2_000_000,
        counterexample_trials: int = 400,
        unknown_bound: Optional[int] = None,
        seed: Optional[int] = None,
        normalize: bool = True,
        shared_base: bool = True,
        sweep: bool = True,
        rewrite_limit: int = 32,
        engine: Optional[str] = None,
        store: Union[VerdictStore, bool, None] = None,
    ) -> None:
        if engine is not None and engine not in ENGINE_MODES:
            raise ReproError(
                f"unknown engine mode {engine!r}; expected one of {', '.join(ENGINE_MODES)}"
            )
        self._engine_mode = engine
        self._domain = domain
        self._max_subsets = max_subsets
        self._counterexample_trials = counterexample_trials
        self._unknown_bound = unknown_bound
        self._seed = seed
        self._normalize = normalize
        self._shared_base = shared_base
        self._sweep = sweep
        self._rewrite_limit = rewrite_limit
        if executor is not None:
            self._executor: Optional[Executor] = executor
            self._owns_executor = False
            self._workers = workers if workers is not None else getattr(executor, "workers", 1)
        else:
            count = (
                1
                if in_worker()
                else (default_workers() if workers is None else max(1, int(workers)))
            )
            self._executor = PersistentProcessExecutor(count) if count > 1 else None
            self._owns_executor = self._executor is not None
            self._workers = count
        self._translator = SqlTranslator(schema or {})
        self._views: dict[str, View] = {}
        self._queries: dict[str, Query] = {}
        self._results: dict[tuple[str, str], EquivalenceResult] = {}
        self._verdict_cache: "OrderedDict[tuple[Query, Query], EquivalenceResult]" = OrderedDict()
        if isinstance(store, VerdictStore):
            self._store: Optional[VerdictStore] = store
        elif store is None:
            self._store = default_store()
        else:
            self._store = shared_store() if store else None
        self._context: Optional[SharedBaseContext] = None
        self._engine: Optional[RewritingEngine] = None
        self._rewrite_cache: dict[
            tuple[Query, int],
            tuple[list[VerifiedRewriting], list[RejectedCandidate]],
        ] = {}
        self._decided_cells = 0
        self._verdict_cache_hits = 0
        self._store_hits = 0
        self._rewrite_cache_hits = 0
        # Per-cell decision provenance feeding explain(): how each settled
        # cell was decided (sweep group / pair task / verdict cache), under
        # which engine, and in which equivalences() call.
        self._provenance: dict[tuple[str, str], dict[str, object]] = {}
        self._equivalence_calls = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """End the session: terminate the owned worker pool and drop the
        per-session caches (the structural verdict cache, the rewrite
        verification cache, the rewriting engine, the grown shared context).
        Idempotent; a closed workspace refuses further *work* but keeps its
        settled cells and provenance, so :meth:`explain` stays available.

        This is the one teardown path: the context manager, the interpreter's
        best-effort ``__del__``, and service-layer tenant eviction
        (:class:`repro.service.tenants.TenantRegistry`) all funnel here."""
        self._closed = True
        self._verdict_cache.clear()
        self._rewrite_cache.clear()
        self._engine = None
        self._context = None
        if self._owns_executor and self._executor is not None:
            self._executor.close()  # type: ignore[union-attr]

    def __enter__(self) -> "Workspace":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort cleanup; close() is the API
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    @property
    def closed(self) -> bool:
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise ReproError("this workspace has been closed")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queries(self) -> dict[str, Query]:
        """The current catalog (a copy; mutate through add/discard)."""
        return dict(self._queries)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._queries))

    @property
    def views(self) -> ViewCatalog:
        """The session's registered views, as a catalog."""
        return ViewCatalog(self._views.values())

    @property
    def executor(self) -> Optional[Executor]:
        """The session executor (``None`` when the session runs serially)."""
        return self._executor

    @property
    def store(self) -> Optional[VerdictStore]:
        """The verdict-store tier behind the structural cache (``None``
        means the session runs with today's in-memory caches only)."""
        return self._store

    def __len__(self) -> int:
        return len(self._queries)

    def __contains__(self, name: str) -> bool:
        return name in self._queries

    def __getitem__(self, name: str) -> Query:
        try:
            return self._queries[name]
        except KeyError:
            raise ReproError(f"workspace has no query named {name!r}") from None

    def stats(self) -> WorkspaceStats:
        """Reuse counters: decided vs cache-served cells, pool forks, plus
        the hierarchical registry report (engine / sweep / parallel scopes
        and the ``worker.*`` deltas merged back from pool workers)."""
        return WorkspaceStats(
            queries=len(self._queries),
            views=len(self._views),
            decided_cells=self._decided_cells,
            verdict_cache_hits=self._verdict_cache_hits,
            store_hits=self._store_hits,
            rewrite_cache_hits=self._rewrite_cache_hits,
            pool_forks=getattr(self._executor, "forks", 0) if self._executor else 0,
            workers=self._workers,
            counters=_OBS.tree(),
            plan_cache=plan_cache_stats(),
        )

    # ------------------------------------------------------------------
    # Ingestion: the unified front door
    # ------------------------------------------------------------------
    def add(self, query: QueryLike, *, name: Optional[str] = None) -> str:
        """Add a query to the catalog and return its catalog name.

        ``query`` may be a :class:`Query`, a Datalog string
        (``"q(x, sum(y)) :- p(x, y)"``), or a SQL SELECT statement (which
        requires the session ``schema``).  ``name`` fixes the catalog name
        (an explicit duplicate raises); without one, the query's own head
        name is used and de-duplicated (``q``, ``q_2``, ...).  Adding never
        invalidates anything: settled cells stay settled, and the next
        :meth:`equivalences` call decides only the new cells.
        """
        self._require_open()
        parsed = self._coerce_query(query, name)
        if name is not None:
            if name in self._queries:
                raise ReproError(f"workspace already has a query named {name!r}")
            label = name
        else:
            label = parsed.name or "q"
            suffix = 2
            while label in self._queries:
                label = f"{parsed.name}_{suffix}"
                suffix += 1
        self._queries[label] = parsed
        return label

    def discard(self, name: str) -> Query:
        """Remove a query and its settled cells from the catalog.

        The widened shared context is kept (it stays sound — it only ever
        enlarges the set of small databases examined), so re-adding queries
        later keeps hitting the warmed caches.
        """
        self._require_open()
        if name not in self._queries:
            raise ReproError(f"workspace has no query named {name!r}")
        removed = self._queries.pop(name)
        for pair in [pair for pair in self._results if name in pair]:
            del self._results[pair]
            self._provenance.pop(pair, None)
        return removed

    def register_view(
        self,
        view: Union[View, str],
        definition: Optional[QueryLike] = None,
        *,
        columns: Optional[Sequence[str]] = None,
    ) -> View:
        """Register a materialized view with the session.

        Accepts a :class:`View`, a ``CREATE VIEW ... AS SELECT ...`` SQL
        statement, or a ``(name, definition)`` pair where ``definition`` is a
        Datalog string or :class:`Query`.  The view always joins the
        rewriting catalog; it additionally joins the SQL schema (readable
        from later SELECTs) when its name is SQL-addressable — the SQL
        parser lowercases table references, so a mixed-case Datalog view
        stays rewriting-only rather than being rejected.  Registering
        invalidates the session's rewriting caches, since new views change
        which rewritings exist.
        """
        self._require_open()
        if isinstance(view, View):
            if definition is not None:
                raise ReproError("pass either a View or a (name, definition) pair, not both")
            registered = self._adopt_datalog_view(view, columns)
        elif isinstance(view, str) and definition is not None:
            body = definition if isinstance(definition, Query) else parse_query(definition)
            registered = self._adopt_datalog_view(View(view, body), columns)
        elif isinstance(view, str):
            registered = self._translator.register_view(view)
            self._views[registered.name] = registered
        else:
            raise ReproError(
                f"register_view expects a View, CREATE VIEW SQL, or a "
                f"(name, definition) pair, got {view!r}"
            )
        try:
            self.views  # validates name/predicate clashes across the catalog
        except RewritingError:
            self._views.pop(registered.name, None)
            self._translator.remove_view(registered.name)
            raise
        # Invalidate only once the registration is known-good: a rejected
        # view leaves the catalog — and therefore the cached verification
        # work — untouched.
        self._engine = None
        self._rewrite_cache.clear()
        return registered

    def _adopt_datalog_view(self, view: View, columns: Optional[Sequence[str]]) -> View:
        if view.name in self._views:
            raise RewritingError(f"duplicate view name {view.name!r}")
        if view.name == view.name.lower():
            # SQL-addressable: join the translator's schema too (and respect
            # its collision rules).
            self._translator.adopt_view(view, columns)
        self._views[view.name] = view
        return view

    def _coerce_query(self, query: QueryLike, name: Optional[str]) -> Query:
        if isinstance(query, Query):
            return query
        if isinstance(query, str):
            text = query.strip()
            if _looks_like_sql(text):
                return self._translator.translate(text, name=name or "q")
            return parse_query(text)
        raise ReproError(
            f"add() expects a Query, a Datalog string, or a SQL SELECT, got {query!r}"
        )

    # ------------------------------------------------------------------
    # The delta equivalence matrix
    # ------------------------------------------------------------------
    def equivalences(self) -> dict[tuple[str, str], EquivalenceResult]:
        """The equivalence matrix of the current catalog.

        Returns ``{(name_a, name_b): result}`` for every unordered pair with
        ``name_a < name_b`` — exactly what
        :func:`repro.workloads.equivalence_matrix` returns for the same
        catalog — but only the *delta* cells (pairs no earlier call settled)
        are decided; everything else is served from the session.  Delta cells
        go through the structural verdict cache first, then to
        :func:`~repro.workloads.batch.decide_pairs` under the persistent
        shared context and session executor.
        """
        self._require_open()
        self._equivalence_calls += 1
        call = self._equivalence_calls
        engine_used = self._engine_mode or active_engine()
        names = sorted(self._queries)
        pairs = [
            (name_a, name_b)
            for position, name_a in enumerate(names)
            for name_b in names[position + 1 :]
        ]
        undecided: list[tuple[str, str]] = []
        for pair in pairs:
            if pair in self._results:
                continue
            cache_key = (self._queries[pair[0]], self._queries[pair[1]])
            cached = self._verdict_cache.get(cache_key)
            if cached is not None:
                # A structurally identical pair was already decided (under
                # other names).  Verdict/method/details transfer verbatim;
                # hand out a copy so per-cell consumers never alias.  The
                # hit refreshes the entry's recency so hot pairs survive
                # the LRU eviction of :meth:`_cache_verdict`.
                self._verdict_cache.move_to_end(cache_key)
                self._results[pair] = replace(cached)
                self._verdict_cache_hits += 1
                _OBS.inc("session.verdict_cache.hits")
                self._provenance[pair] = {
                    "path": "cache",
                    "engine": engine_used,
                    "cache_served": True,
                    "call": call,
                }
                continue
            served = (
                self._store.serve(cache_key[0], cache_key[1], self._domain, self._engine_mode)
                if self._store is not None
                else None
            )
            if served is not None:
                # Second tier: another workspace (tenant, or an earlier
                # process when the store is disk-backed) settled a
                # canonically identical pair — possibly under renamed
                # variables or reordered literals.  NOT_EQUIVALENT verdicts
                # arrive here only after their witness re-reproduced the
                # disagreement (repro.store.witness).
                self._results[pair] = served
                self._cache_verdict(pair, served)
                self._store_hits += 1
                _OBS.inc("session.store.hits")
                self._provenance[pair] = {
                    "path": "store",
                    "engine": engine_used,
                    "cache_served": True,
                    "call": call,
                }
            else:
                undecided.append(pair)
        if undecided:
            from ..workloads.batch import decide_pairs

            _OBS.inc("session.verdict_cache.misses", len(undecided))
            decision_paths: dict[tuple[str, str], str] = {}
            with _span("session.equivalences", cells=len(undecided), call=call):
                decided = decide_pairs(
                    self._queries,
                    undecided,
                    domain=self._domain,
                    counterexample_trials=self._counterexample_trials,
                    max_subsets=self._max_subsets,
                    unknown_bound=self._unknown_bound,
                    workers=self._workers,
                    executor=self._executor,
                    seed=self._seed,
                    normalize=self._normalize,
                    shared_base=self._shared_base,
                    sweep=self._sweep,
                    context=self._current_context(),
                    engine=self._engine_mode,
                    provenance=decision_paths,
                )
            for pair, result in decided.items():
                self._results[pair] = result
                self._cache_verdict(pair, result)
                self._decided_cells += 1
                self._provenance[pair] = {
                    "path": decision_paths.get(pair, "unknown"),
                    "engine": engine_used,
                    "cache_served": False,
                    "call": call,
                }
                if self._store is not None:
                    # Write-back: every freshly settled cell (UNKNOWN too —
                    # re-deriving an UNKNOWN is as expensive as any other
                    # verdict) becomes servable to other sessions.
                    self._store.record(
                        self._queries[pair[0]],
                        self._queries[pair[1]],
                        self._domain,
                        result,
                        engine=self._engine_mode,
                        context=self._context,
                    )
        return {pair: self._results[pair] for pair in sorted(pairs)}

    def explain(self, first: str, second: str) -> CellExplanation:
        """The full decision provenance of one settled cell.

        ``first`` and ``second`` name catalog queries whose cell an earlier
        :meth:`equivalences` call settled (order-insensitive).  The returned
        :class:`~repro.obs.CellExplanation` combines the stored verdict
        (method string, dispatch class, normalization annotation, search
        counters, witness) with the session's provenance record for the cell
        (sweep group vs pair task vs verdict cache, engine mode, deciding
        call ordinal).  Unsettled cells raise — explanations never trigger
        new decisions.  Works on a closed workspace — explaining is pure
        introspection over already-settled state.
        """
        return explain_cell(self._queries, self._results, self._provenance, first, second)

    # ------------------------------------------------------------------
    # Frozen state export (the service snapshot path)
    # ------------------------------------------------------------------
    def settled_cells(self) -> dict[tuple[str, str], EquivalenceResult]:
        """A shallow copy of every settled cell (results are immutable, so
        the copy is cheap and safe to read without the workspace lock a
        caller may be serializing mutations with)."""
        return dict(self._results)

    def cell_provenance(self) -> dict[tuple[str, str], dict[str, object]]:
        """A copy of the per-cell decision provenance feeding
        :func:`explain_cell` (one level deep: the per-cell records are
        copied too, since :meth:`equivalences` mutates them in place)."""
        return {pair: dict(record) for pair, record in self._provenance.items()}

    def _cache_verdict(self, pair: tuple[str, str], result: EquivalenceResult) -> None:
        key = (self._queries[pair[0]], self._queries[pair[1]])
        if key not in self._verdict_cache and len(self._verdict_cache) >= _VERDICT_CACHE_LIMIT:
            # Evict the least-recently-*used* quarter: lookups refresh
            # recency (move_to_end), so a pair that keeps getting served
            # stays resident no matter how early it was inserted.
            for _ in range(_VERDICT_CACHE_LIMIT // 4):
                self._verdict_cache.popitem(last=False)
        self._verdict_cache[key] = result
        self._verdict_cache.move_to_end(key)

    def _current_context(self) -> Optional[SharedBaseContext]:
        """The session's shared BASE recipe, grown monotonically.

        Widening is always sound (an EQUIVALENT verdict at a larger bound
        still implies τ-equivalence, and any counterexample is concrete), and
        monotonicity is what makes the session's cache keys stable: once the
        catalog's constants and maximal pair bound stop growing, every later
        delta decision re-derives exactly the BASE recipes — hence the warmed
        Γ / signature / group-index cache entries — of the earlier calls.
        """
        if not self._shared_base:
            return None
        fresh = SharedBaseContext.from_catalog(self._queries.values())
        if fresh is None:
            return self._context
        if self._context is not None:
            fresh = SharedBaseContext(
                tuple(sorted(set(fresh.constants) | set(self._context.constants), key=str)),
                max(fresh.bound, self._context.bound),
            )
        self._context = fresh
        return fresh

    # ------------------------------------------------------------------
    # Rewriting
    # ------------------------------------------------------------------
    def rewrite(
        self,
        query: QueryLike,
        *,
        database: Optional[Database] = None,
        limit: Optional[int] = None,
    ) -> RewritingReport:
        """Synthesize, verify, and rank rewritings of ``query`` over the
        session's view catalog (see :func:`repro.rewriting.rewrite`).

        Verification runs through the session executor — the persistent pool
        is reused, never re-forked — and its outcomes are cached per
        (query, limit): repeated calls (or calls differing only in the
        ranking ``database``) skip straight to report assembly.
        """
        self._require_open()
        parsed = self._coerce_query(query, None)
        cap = self._rewrite_limit if limit is None else limit
        engine = self._rewriting_engine()
        key = (parsed, cap)
        cached = self._rewrite_cache.get(key)
        if cached is None:
            candidates, rejected = engine.candidates(parsed, limit=cap)
            # The scope makes the verification task builders capture the
            # session's engine, so pool workers verify under it too.
            with engine_scope(self._engine_mode):
                verified = engine.verify(
                    parsed,
                    candidates,
                    workers=self._workers,
                    executor=self._executor,
                    seed=self._seed,
                )
            cached = (verified, rejected)
            if len(self._rewrite_cache) >= _REWRITE_CACHE_LIMIT:
                for stale in list(self._rewrite_cache)[: _REWRITE_CACHE_LIMIT // 4]:
                    del self._rewrite_cache[stale]
            self._rewrite_cache[key] = cached
        else:
            self._rewrite_cache_hits += 1
        verified, rejected = cached
        # Each report gets its own VerifiedRewriting wrappers: assemble_report
        # fills estimated_cost in place, and a later call with a different
        # ranking database must not rewrite the costs inside reports already
        # handed out.
        return assemble_report(
            parsed, [replace(outcome) for outcome in verified], rejected,
            engine.views, database,
        )

    def _rewriting_engine(self) -> RewritingEngine:
        if self._engine is None:
            self._engine = RewritingEngine(
                self.views,
                domain=self._domain,
                max_subsets=self._max_subsets,
                counterexample_trials=self._counterexample_trials,
                unknown_bound=self._unknown_bound,
                normalize=self._normalize,
                shared_base=self._shared_base,
                sweep=self._sweep,
            )
        return self._engine


def explain_cell(
    queries: Mapping[str, Query],
    results: Mapping[tuple[str, str], EquivalenceResult],
    provenance: Mapping[tuple[str, str], Mapping[str, object]],
    first: str,
    second: str,
) -> CellExplanation:
    """The decision provenance of one settled cell, from frozen state.

    The shared implementation behind :meth:`Workspace.explain` and the
    service's lock-free snapshot reads
    (:meth:`repro.service.snapshots.TenantSnapshot.explain`): it works over
    plain mappings, so a copied snapshot of a workspace's settled state
    explains cells exactly as the live workspace would."""
    if first == second:
        raise ReproError("explain() needs two distinct catalog queries")
    for name in (first, second):
        if name not in queries:
            raise ReproError(f"workspace has no query named {name!r}")
    pair = (first, second) if first < second else (second, first)
    result = results.get(pair)
    if result is None:
        raise ReproError(
            f"cell {pair!r} is not settled; call equivalences() first"
        )
    record = provenance.get(pair, {})
    bound = None
    search: dict[str, int] = {}
    if result.report is not None:
        bound = result.report.bound
        search = {
            "subsets_examined": result.report.subsets_examined,
            "orderings_examined": result.report.orderings_examined,
            "identities_checked": result.report.identities_checked,
            "subsets_skipped_by_symmetry": result.report.subsets_skipped_by_symmetry,
        }
    return CellExplanation(
        pair=pair,
        verdict=result.verdict.value,
        method=result.method,
        dispatch_class=dispatch_class_of(result.method),
        normalization=normalization_of(result.method),
        engine=str(record.get("engine", "unknown")),
        cache_served=bool(record.get("cache_served", False)),
        decision_path=str(record.get("path", "unknown")),
        decided_in_call=_maybe_int(record.get("call")),
        domain=result.domain.value,
        bound=bound,
        details=result.details or None,
        witness=result.counterexample,
        search=search,
    )


def _maybe_int(value: object) -> Optional[int]:
    return value if isinstance(value, int) else None


def _looks_like_sql(text: str) -> bool:
    head = text.lstrip().split(None, 1)
    return bool(head) and head[0].upper() == "SELECT"
