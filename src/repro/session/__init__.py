"""The session-first public API: a long-lived, incremental :class:`Workspace`.

Every one-shot entry point of the library (``are_equivalent``,
``equivalence_matrix``, ``rewrite``, ``sweep_equivalence``) rebuilds the
shared BASE, re-warms the Γ / signature caches, re-forks its process pool,
and re-decides cells earlier calls already settled — waste the paper's
decision procedures do not require, since a verdict depends only on the
query pair.  The workspace makes the *session* the API unit instead: queries
and views are ingested through one front door (Datalog, SQL, or AST), the
shared BASE context, verdict caches, and worker pool persist across calls,
and :meth:`Workspace.equivalences` decides only the delta cells each time
the catalog grows.

The module-level functions remain as thin shims over an ephemeral workspace,
so existing callers keep working unchanged.
"""

from ..obs import CellExplanation
from .workspace import Workspace, WorkspaceStats, explain_cell

__all__ = ["CellExplanation", "Workspace", "WorkspaceStats", "explain_cell"]
