"""Satisfiability and entailment for conjunctions of comparisons.

The paper interprets comparisons either over a *dense* order (the rational
numbers) or a *discrete* order (the integers); a conjunction such as
``0 < y ∧ y < z ∧ z < 2`` is satisfiable over Q but not over Z (Section 3.2).
This module provides :class:`ComparisonSystem`, a small decision procedure for
such conjunctions that supports

* satisfiability over Z and over Q,
* entailment of a comparison (``L |=_I t ρ t'``, Section 4.2),
* detection of entailed equalities and of variables pinned to a constant
  (used for query *reduction*, Sections 4.2 and 7),
* construction of concrete satisfying assignments.

The implementation is the classical difference-constraint graph.  Every term is
a node; a comparison ``s - t ≤ c`` becomes an edge of weight ``c``.  Over the
integers a strict comparison ``s < t`` is the difference constraint
``s - t ≤ -1``; over the rationals strictness is tracked with an infinitesimal
component, i.e. weights are pairs ``(c, k)`` representing ``c + k·ε`` ordered
lexicographically.  Constants are tied to a distinguished origin node.
Disequalities are handled by case splitting (each ``≠`` becomes ``<`` or
``>``), which is exponential only in the number of ``≠`` literals — small in
practice for the queries the paper considers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Iterator, Optional, Sequence

from ..datalog.atoms import Comparison, ComparisonOp
from ..datalog.terms import Constant, Term, Variable
from ..domains import Domain, NumericValue
from ..errors import UnsatisfiableOrderingError

#: Sentinel node representing the value 0, to which constants are anchored.
_ORIGIN = object()

#: Weight type: (rational part, infinitesimal part).  The bound expressed is
#: ``value + eps·ε`` for an arbitrarily small positive ε.
_Weight = tuple[Fraction, int]

_ZERO: _Weight = (Fraction(0), 0)


def _weight_add(a: _Weight, b: _Weight) -> _Weight:
    return (a[0] + b[0], a[1] + b[1])


def _weight_less(a: _Weight, b: _Weight) -> bool:
    return a < b


@dataclass(frozen=True)
class _Scenario:
    """One case of the disequality split: a list of (left, op, right) edges."""

    comparisons: tuple[Comparison, ...]


class ComparisonSystem:
    """A conjunction of comparisons interpreted over a fixed domain."""

    def __init__(self, comparisons: Iterable[Comparison] = (), domain: Domain = Domain.RATIONALS):
        self.domain = domain
        self._comparisons: list[Comparison] = list(comparisons)
        self._cache: dict = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, comparison: Comparison) -> None:
        self._comparisons.append(comparison)
        self._cache.clear()

    def extend(self, comparisons: Iterable[Comparison]) -> None:
        self._comparisons.extend(comparisons)
        self._cache.clear()

    def with_extra(self, comparisons: Iterable[Comparison]) -> "ComparisonSystem":
        return ComparisonSystem(self._comparisons + list(comparisons), self.domain)

    @property
    def comparisons(self) -> tuple[Comparison, ...]:
        return tuple(self._comparisons)

    def terms(self) -> set[Term]:
        result: set[Term] = set()
        for comparison in self._comparisons:
            result.add(comparison.left)
            result.add(comparison.right)
        return result

    def variables(self) -> set[Variable]:
        return {term for term in self.terms() if isinstance(term, Variable)}

    # ------------------------------------------------------------------
    # Satisfiability
    # ------------------------------------------------------------------
    def is_satisfiable(self) -> bool:
        """Whether some assignment of domain values to variables satisfies all
        comparisons."""
        if "sat" not in self._cache:
            self._cache["sat"] = self._find_feasible_scenario() is not None
        return self._cache["sat"]

    def _find_feasible_scenario(self) -> Optional[tuple[_Scenario, dict]]:
        for scenario in _split_disequalities(self._comparisons):
            matrix = _solve_scenario(scenario, self.domain)
            if matrix is not None:
                return scenario, matrix
        return None

    # ------------------------------------------------------------------
    # Entailment
    # ------------------------------------------------------------------
    def entails(self, comparison: Comparison) -> bool:
        """Whether every satisfying assignment also satisfies ``comparison``.

        An unsatisfiable system entails everything (vacuous truth); callers
        that care should check :meth:`is_satisfiable` separately.
        """
        key = ("entails", comparison)
        if key not in self._cache:
            negated_system = self.with_extra([comparison.negate()])
            self._cache[key] = not negated_system.is_satisfiable()
        return self._cache[key]

    def entailed_relation(self, left: Term, right: Term) -> Optional[ComparisonOp]:
        """The strongest of ``<``, ``=``, ``>`` entailed between two terms, or
        ``None`` when the system does not determine their relative order."""
        if self.entails(Comparison(left, ComparisonOp.EQ, right)):
            return ComparisonOp.EQ
        if self.entails(Comparison(left, ComparisonOp.LT, right)):
            return ComparisonOp.LT
        if self.entails(Comparison(left, ComparisonOp.GT, right)):
            return ComparisonOp.GT
        return None

    def is_complete_ordering_of(self, terms: Iterable[Term]) -> bool:
        """Whether the system is a *complete ordering* of ``terms``: for every
        pair exactly one of ``<``, ``=``, ``>`` is entailed (Section 4.2).

        Complete orderings are satisfiable by definition.
        """
        if not self.is_satisfiable():
            return False
        term_list = list(dict.fromkeys(terms))
        for first, second in itertools.combinations(term_list, 2):
            if self.entailed_relation(first, second) is None:
                return False
        return True

    # ------------------------------------------------------------------
    # Reduction helpers
    # ------------------------------------------------------------------
    def entailed_equalities(self) -> list[tuple[Term, Term]]:
        """Pairs of syntactically distinct terms forced to be equal."""
        result = []
        terms = sorted(self.terms(), key=_term_sort_key)
        for first, second in itertools.combinations(terms, 2):
            if self.entails(Comparison(first, ComparisonOp.EQ, second)):
                result.append((first, second))
        return result

    def pinned_constants(self) -> dict[Variable, NumericValue]:
        """Variables forced to a single domain value.

        Over the integers this captures cases such as ``3 < x ∧ x < 5`` which
        force ``x = 4``; over the rationals only explicit equalities with
        constants pin a variable.
        """
        feasible = self._find_feasible_scenario()
        if feasible is None:
            return {}
        _, matrix = feasible
        pinned: dict[Variable, NumericValue] = {}
        for variable in self.variables():
            if variable not in matrix["nodes"]:
                continue
            upper = matrix["dist"].get((variable, _ORIGIN))
            lower = matrix["dist"].get((_ORIGIN, variable))
            if upper is None or lower is None:
                continue
            if upper[1] != 0 or lower[1] != 0:
                continue
            if upper[0] == -lower[0]:
                candidate = upper[0]
                if self.domain.is_discrete and candidate.denominator != 1:
                    continue
                value: NumericValue = (
                    int(candidate) if candidate.denominator == 1 else candidate
                )
                # Confirm across all disequality scenarios.
                if self.entails(Comparison(variable, ComparisonOp.EQ, Constant(value))):
                    pinned[variable] = value
        return pinned

    # ------------------------------------------------------------------
    # Model construction
    # ------------------------------------------------------------------
    def satisfying_assignment(self) -> dict[Term, NumericValue]:
        """A concrete assignment of domain values satisfying every comparison.

        Raises :class:`UnsatisfiableOrderingError` when none exists.  Constants
        are always mapped to themselves.
        """
        feasible = self._find_feasible_scenario()
        if feasible is None:
            raise UnsatisfiableOrderingError(
                f"no satisfying assignment over {self.domain.value} for: "
                + ", ".join(str(c) for c in self._comparisons)
            )
        scenario, matrix = feasible
        assignment = _extract_assignment(scenario, matrix, self.domain)
        # Verify (defensive: the ε-selection loop should always succeed).
        for comparison in self._comparisons:
            if not _holds_under(comparison, assignment):
                raise UnsatisfiableOrderingError(
                    f"internal error: constructed assignment violates {comparison}"
                )
        return assignment

    def __str__(self) -> str:
        return " , ".join(str(c) for c in self._comparisons) or "true"

    def __repr__(self) -> str:
        return f"ComparisonSystem({str(self)!r}, domain={self.domain.value})"


# ----------------------------------------------------------------------
# Internal machinery
# ----------------------------------------------------------------------
def _term_sort_key(term: Term):
    if isinstance(term, Constant):
        return (0, Fraction(term.value), "")
    return (1, Fraction(0), term.name)


def _split_disequalities(comparisons: Sequence[Comparison]) -> Iterator[_Scenario]:
    """Yield scenarios where each ``≠`` is replaced by ``<`` or ``>``."""
    base: list[Comparison] = []
    disequalities: list[Comparison] = []
    for comparison in comparisons:
        if comparison.op is ComparisonOp.NE:
            disequalities.append(comparison)
        else:
            base.append(comparison)
    if not disequalities:
        yield _Scenario(tuple(base))
        return
    for choices in itertools.product((ComparisonOp.LT, ComparisonOp.GT), repeat=len(disequalities)):
        resolved = list(base)
        for comparison, op in zip(disequalities, choices):
            resolved.append(Comparison(comparison.left, op, comparison.right))
        yield _Scenario(tuple(resolved))


def _edges_for(comparison: Comparison, domain: Domain) -> list[tuple[Term, Term, _Weight]]:
    """Difference-constraint edges (u, v, w) meaning x_u - x_v ≤ w."""
    left, op, right = comparison.left, comparison.op, comparison.right
    strict: _Weight = (Fraction(-1), 0) if domain.is_discrete else (Fraction(0), -1)
    nonstrict: _Weight = _ZERO
    if op is ComparisonOp.EQ:
        return [(left, right, nonstrict), (right, left, nonstrict)]
    if op is ComparisonOp.LE:
        return [(left, right, nonstrict)]
    if op is ComparisonOp.GE:
        return [(right, left, nonstrict)]
    if op is ComparisonOp.LT:
        return [(left, right, strict)]
    if op is ComparisonOp.GT:
        return [(right, left, strict)]
    raise ValueError(f"disequalities must be split before building edges: {comparison}")


def _solve_scenario(scenario: _Scenario, domain: Domain) -> Optional[dict]:
    """Run Floyd–Warshall on the scenario's difference constraints.

    Returns ``None`` when infeasible, otherwise a dict with the node list and
    the (sparse) all-pairs tightest-bound matrix.
    """
    nodes: set = {_ORIGIN}
    edges: dict[tuple, _Weight] = {}

    def add_edge(u, v, w: _Weight) -> None:
        if u == v:
            if _weight_less(w, _ZERO):
                edges[(u, v)] = w
            return
        key = (u, v)
        current = edges.get(key)
        if current is None or _weight_less(w, current):
            edges[key] = w

    for comparison in scenario.comparisons:
        for u, v, w in _edges_for(comparison, domain):
            nodes.add(u)
            nodes.add(v)
            add_edge(u, v, w)
    # Anchor constants to the origin.
    for node in list(nodes):
        if isinstance(node, Constant):
            value = Fraction(node.value)
            add_edge(node, _ORIGIN, (value, 0))
            add_edge(_ORIGIN, node, (-value, 0))

    node_list = list(nodes)
    dist: dict[tuple, _Weight] = dict(edges)
    for node in node_list:
        key = (node, node)
        if key not in dist:
            dist[key] = _ZERO
        elif _weight_less(dist[key], _ZERO):
            return None
    for k in node_list:
        for i in node_list:
            ik = dist.get((i, k))
            if ik is None:
                continue
            for j in node_list:
                kj = dist.get((k, j))
                if kj is None:
                    continue
                candidate = _weight_add(ik, kj)
                current = dist.get((i, j))
                if current is None or _weight_less(candidate, current):
                    dist[(i, j)] = candidate
    for node in node_list:
        if _weight_less(dist[(node, node)], _ZERO):
            return None
    return {"nodes": set(node_list), "dist": dist}


def _extract_assignment(scenario: _Scenario, matrix: dict, domain: Domain) -> dict[Term, NumericValue]:
    """Build a concrete satisfying assignment from the solved scenario."""
    nodes = sorted(matrix["nodes"], key=lambda n: ("" if n is _ORIGIN else str(n)))
    dist = matrix["dist"]
    # Potential of each node relative to a virtual source bounding everything
    # from above by 0: x_u = min(0, min_v (w(u,v) + x_v)) computed by value
    # iteration (Bellman-Ford on the reversed constraint graph).
    potential: dict = {node: _ZERO for node in nodes}
    edges = [(u, v, w) for (u, v), w in dist.items() if u != v]
    for _ in range(len(nodes) + 1):
        changed = False
        for u, v, w in edges:
            candidate = _weight_add(w, potential[v])
            if _weight_less(candidate, potential[u]):
                potential[u] = candidate
                changed = True
        if not changed:
            break
    origin_potential = potential[_ORIGIN]
    shifted = {
        node: (value[0] - origin_potential[0], value[1] - origin_potential[1])
        for node, value in potential.items()
    }

    candidate_epsilons = [Fraction(1, 2**k) for k in range(0, 40)]
    for epsilon in candidate_epsilons:
        assignment: dict[Term, NumericValue] = {}
        ok = True
        for node, (value, eps_count) in shifted.items():
            if node is _ORIGIN:
                continue
            concrete = value + eps_count * epsilon
            if isinstance(node, Constant):
                assignment[node] = node.value
                continue
            if domain.is_discrete:
                if concrete.denominator != 1:
                    ok = False
                    break
                assignment[node] = int(concrete)
            else:
                assignment[node] = int(concrete) if concrete.denominator == 1 else concrete
        if not ok:
            continue
        if all(_holds_under(comparison, assignment) for comparison in scenario.comparisons):
            return assignment
    raise UnsatisfiableOrderingError("failed to extract a concrete satisfying assignment")


def _holds_under(comparison: Comparison, assignment: dict[Term, NumericValue]) -> bool:
    left = _value_of(comparison.left, assignment)
    right = _value_of(comparison.right, assignment)
    return comparison.op.holds(Fraction(left), Fraction(right))


def _value_of(term: Term, assignment: dict[Term, NumericValue]) -> NumericValue:
    if isinstance(term, Constant):
        return term.value
    return assignment[term]
