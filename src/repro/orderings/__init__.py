"""Order constraints and complete orderings (Sections 3.2 and 4.2)."""

from .complete_orderings import (
    CompleteOrdering,
    count_complete_orderings,
    enumerate_complete_orderings,
)
from .constraints import ComparisonSystem

__all__ = [
    "ComparisonSystem",
    "CompleteOrdering",
    "count_complete_orderings",
    "enumerate_complete_orderings",
]
