"""Complete orderings of term sets.

A *complete ordering* ``L`` of a set of terms ``T`` determines, for every pair
of terms, exactly one of ``<``, ``=``, ``>`` (Section 4.2).  We represent a
complete ordering as an **ordered partition** of ``T``: a sequence of blocks in
strictly increasing order, where terms inside a block are equal.  A block may
contain at most one constant, and blocks containing constants must respect the
numeric order of those constants.

Complete orderings are the backbone of the bounded-equivalence procedure
(Theorem 4.8): the procedure enumerates all complete orderings of the relevant
term set and, for each, decides an *ordered identity* ``L → α(B) = α(B')``.
This module provides

* the :class:`CompleteOrdering` value object with comparison, satisfiability
  (dense vs. discrete domains), instantiation and pinning utilities,
* enumeration of all complete orderings of a term set over a domain,
* *conservative extensions* with a new constant (used by the ``prod`` decider,
  Proposition 4.7),
* *reduction* information: which blocks are forced to a unique value over the
  integers (e.g. ``3 < x < 5`` forces ``x = 4``), mirroring the paper's notion
  of a term set being *reduced* with respect to ``L`` and a domain.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from ..datalog.atoms import Comparison, ComparisonOp
from ..datalog.terms import Constant, Term, Variable
from ..domains import Domain, NumericValue
from ..errors import UnsatisfiableOrderingError


@dataclass(frozen=True)
class CompleteOrdering:
    """An ordered partition of a term set, interpreted over a domain."""

    blocks: tuple[frozenset, ...]
    domain: Domain = Domain.RATIONALS

    def __post_init__(self) -> None:
        object.__setattr__(self, "blocks", tuple(frozenset(block) for block in self.blocks))
        previous_value: Optional[Fraction] = None
        for block in self.blocks:
            if not block:
                raise UnsatisfiableOrderingError("complete orderings may not contain empty blocks")
            constants = [term for term in block if isinstance(term, Constant)]
            if len(constants) > 1:
                raise UnsatisfiableOrderingError(
                    f"a block may contain at most one constant: {sorted(map(str, block))}"
                )
            if constants:
                value = Fraction(constants[0].value)
                if previous_value is not None and value <= previous_value:
                    raise UnsatisfiableOrderingError(
                        "constants must appear in strictly increasing order"
                    )
                previous_value = value

    def __hash__(self) -> int:
        # Orderings key the representative-map and Γ caches consulted on
        # every symbolic evaluation; cache the structural hash.
        cached = self.__dict__.get("_cached_hash")
        if cached is None:
            cached = hash((self.blocks, self.domain))
            object.__setattr__(self, "_cached_hash", cached)
        return cached

    def __getstate__(self):
        # The cached structural hash must not cross process boundaries:
        # string hashing is salted per interpreter, so a pickled hash would
        # be wrong in a spawn-started worker.  Recompute lazily on first use.
        state = dict(self.__dict__)
        state.pop("_cached_hash", None)
        return state

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @property
    def term_count(self) -> int:
        return sum(len(block) for block in self.blocks)

    def terms(self) -> set[Term]:
        result: set[Term] = set()
        for block in self.blocks:
            result |= block
        return result

    def block_index(self, term: Term) -> int:
        for index, block in enumerate(self.blocks):
            if term in block:
                return index
        raise KeyError(f"term {term} does not occur in this ordering")

    def __contains__(self, term: Term) -> bool:
        return any(term in block for block in self.blocks)

    def constant_of(self, index: int) -> Optional[Constant]:
        for term in self.blocks[index]:
            if isinstance(term, Constant):
                return term
        return None

    def representative(self, index: int) -> Term:
        """A canonical member of the block: its constant if it has one,
        otherwise the lexicographically smallest variable."""
        constant = self.constant_of(index)
        if constant is not None:
            return constant
        variables = sorted(
            (term for term in self.blocks[index] if isinstance(term, Variable)),
            key=lambda v: v.name,
        )
        return variables[0]

    # ------------------------------------------------------------------
    # Order relation
    # ------------------------------------------------------------------
    def compare(self, left: Term, right: Term) -> int:
        """-1, 0 or 1 according to the order the ordering imposes."""
        left_index = self.block_index(left)
        right_index = self.block_index(right)
        if left_index < right_index:
            return -1
        if left_index > right_index:
            return 1
        return 0

    def satisfies(self, comparison: Comparison) -> bool:
        """Whether the ordering makes the comparison true.

        Because the ordering is complete, "satisfies" and "entails" coincide
        for comparisons between terms of the ordering.
        """
        relation = self.compare(comparison.left, comparison.right)
        op = comparison.op
        if op is ComparisonOp.LT:
            return relation < 0
        if op is ComparisonOp.LE:
            return relation <= 0
        if op is ComparisonOp.GT:
            return relation > 0
        if op is ComparisonOp.GE:
            return relation >= 0
        if op is ComparisonOp.NE:
            return relation != 0
        return relation == 0

    entails = satisfies

    def to_comparisons(self) -> list[Comparison]:
        """A conjunction of comparisons axiomatizing the ordering: equalities
        inside blocks and strict inequalities between consecutive blocks."""
        comparisons: list[Comparison] = []
        for index, block in enumerate(self.blocks):
            members = sorted(block, key=str)
            representative = self.representative(index)
            for member in members:
                if member != representative:
                    comparisons.append(Comparison(member, ComparisonOp.EQ, representative))
        for index in range(len(self.blocks) - 1):
            comparisons.append(
                Comparison(
                    self.representative(index), ComparisonOp.LT, self.representative(index + 1)
                )
            )
        return comparisons

    # ------------------------------------------------------------------
    # Satisfiability and pinning (discrete-domain reasoning)
    # ------------------------------------------------------------------
    def _constant_positions(self) -> list[tuple[int, Fraction]]:
        positions = []
        for index in range(len(self.blocks)):
            constant = self.constant_of(index)
            if constant is not None:
                positions.append((index, Fraction(constant.value)))
        return positions

    def is_satisfiable(self) -> bool:
        """Whether some assignment of domain values realizes the ordering.

        Over a dense domain every ordering with correctly placed constants is
        satisfiable.  Over the integers the number of blocks strictly between
        two constants must not exceed the number of integers strictly between
        their values.
        """
        if self.domain.is_dense:
            return True
        positions = self._constant_positions()
        for (low_index, low_value), (high_index, high_value) in zip(positions, positions[1:]):
            if high_value.denominator != 1 or low_value.denominator != 1:
                return False
            if (high_index - low_index) > (high_value - low_value):
                return False
        return all(Fraction(value).denominator == 1 for _, value in positions)

    def forced_value(self, index: int) -> Optional[NumericValue]:
        """The unique value the block must take, when the domain forces one.

        Blocks containing a constant are forced to that constant.  Over the
        integers a block squeezed between two constants whose distance equals
        the number of blocks between them is forced as well.
        """
        constant = self.constant_of(index)
        if constant is not None:
            return constant.value
        if self.domain.is_dense:
            return None
        positions = self._constant_positions()
        below = [(i, v) for i, v in positions if i < index]
        above = [(i, v) for i, v in positions if i > index]
        if not below or not above:
            return None
        low_index, low_value = below[-1]
        high_index, high_value = above[0]
        if (high_index - low_index) == (high_value - low_value):
            return int(low_value + (index - low_index))
        return None

    def pinned_blocks(self) -> dict[int, NumericValue]:
        """All blocks with a forced value (including constant blocks)."""
        result: dict[int, NumericValue] = {}
        for index in range(len(self.blocks)):
            value = self.forced_value(index)
            if value is not None:
                result[index] = value
        return result

    def free_block_indices(self) -> list[int]:
        """Blocks that can take at least two distinct values."""
        return [index for index in range(len(self.blocks)) if self.forced_value(index) is None]

    def canonical_term(self, term: Term) -> Term:
        """Quotient map used by the ordered-identity deciders: the block's
        forced value as a constant when one exists, otherwise the block's
        representative variable.  Constants that do not occur in the ordering
        are returned unchanged (they denote themselves)."""
        if isinstance(term, Constant) and term not in self:
            return term
        index = self.block_index(term)
        forced = self.forced_value(index)
        if forced is not None:
            return Constant(forced)
        return self.representative(index)

    # ------------------------------------------------------------------
    # Instantiation
    # ------------------------------------------------------------------
    def instantiate(self) -> dict[Term, NumericValue]:
        """A concrete satisfying assignment mapping every term to a domain
        value consistent with the ordering (distinct blocks get distinct
        values, constants map to themselves)."""
        if not self.is_satisfiable():
            raise UnsatisfiableOrderingError(f"ordering is unsatisfiable over {self.domain.value}")
        block_values = self._block_values()
        assignment: dict[Term, NumericValue] = {}
        for index, block in enumerate(self.blocks):
            for term in block:
                if isinstance(term, Constant):
                    assignment[term] = term.value
                else:
                    assignment[term] = block_values[index]
        return assignment

    def _block_values(self) -> list[NumericValue]:
        count = len(self.blocks)
        positions = self._constant_positions()
        values: list[Optional[Fraction]] = [None] * count
        for index, value in positions:
            values[index] = value
        if not positions:
            concrete = [Fraction(i) for i in range(count)]
        else:
            concrete = list(values)
            first_index, first_value = positions[0]
            for index in range(first_index - 1, -1, -1):
                concrete[index] = first_value - (first_index - index)
            last_index, last_value = positions[-1]
            for index in range(last_index + 1, count):
                concrete[index] = last_value + (index - last_index)
            for (low_index, low_value), (high_index, high_value) in zip(positions, positions[1:]):
                gap = high_index - low_index
                for offset in range(1, gap):
                    index = low_index + offset
                    if self.domain.is_dense:
                        concrete[index] = low_value + (high_value - low_value) * Fraction(offset, gap)
                    else:
                        concrete[index] = low_value + offset
        result: list[NumericValue] = []
        for value in concrete:
            fraction = Fraction(value)
            if fraction.denominator == 1:
                result.append(int(fraction))
            else:
                result.append(fraction)
        return result

    # ------------------------------------------------------------------
    # Extensions and projections
    # ------------------------------------------------------------------
    def conservative_extensions(self, constant: Constant) -> Iterator["CompleteOrdering"]:
        """All complete orderings of ``terms ∪ {constant}`` that agree with
        this ordering on the original terms (Proposition 4.7)."""
        if any(constant in block for block in self.blocks):
            yield self
            return
        value = Fraction(constant.value)
        count = len(self.blocks)
        # Option (a): merge the constant into an existing constant-free block.
        for index in range(count):
            if self.constant_of(index) is not None:
                continue
            blocks = list(self.blocks)
            blocks[index] = blocks[index] | {constant}
            candidate = self._try_build(blocks)
            if candidate is not None:
                yield candidate
        # Option (b): insert the constant as a new singleton block.
        for position in range(count + 1):
            blocks = list(self.blocks)
            blocks.insert(position, frozenset({constant}))
            candidate = self._try_build(blocks)
            if candidate is not None:
                yield candidate

    def _try_build(self, blocks: Sequence[frozenset]) -> Optional["CompleteOrdering"]:
        try:
            candidate = CompleteOrdering(tuple(blocks), self.domain)
        except UnsatisfiableOrderingError:
            return None
        if not candidate.is_satisfiable():
            return None
        return candidate

    def restricted_to(self, terms: Iterable[Term]) -> "CompleteOrdering":
        """The ordering induced on a subset of the terms."""
        wanted = set(terms)
        blocks = []
        for block in self.blocks:
            kept = block & wanted
            if kept:
                blocks.append(frozenset(kept))
        return CompleteOrdering(tuple(blocks), self.domain)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_assignment(
        cls, assignment: Mapping[Term, NumericValue], domain: Domain = Domain.RATIONALS
    ) -> "CompleteOrdering":
        """The complete ordering induced by a concrete assignment."""
        by_value: dict[Fraction, set[Term]] = {}
        for term, value in assignment.items():
            by_value.setdefault(Fraction(value), set()).add(term)
        for term in list(assignment):
            if isinstance(term, Constant) and Fraction(term.value) != Fraction(assignment[term]):
                raise UnsatisfiableOrderingError(f"constant {term} mapped to {assignment[term]}")
        blocks = [frozenset(by_value[value]) for value in sorted(by_value)]
        return cls(tuple(blocks), domain)

    def __str__(self) -> str:
        parts = []
        for block in self.blocks:
            members = " = ".join(sorted(str(term) for term in block))
            parts.append(members if len(block) == 1 else f"({members})")
        return " < ".join(parts)

    def __repr__(self) -> str:
        return f"CompleteOrdering({str(self)!r}, domain={self.domain.value})"


# ----------------------------------------------------------------------
# Enumeration
# ----------------------------------------------------------------------
def enumerate_complete_orderings(
    terms: Iterable[Term], domain: Domain = Domain.RATIONALS
) -> Iterator[CompleteOrdering]:
    """Enumerate every complete ordering of ``terms`` over ``domain``.

    Constants are placed in the order of their values; variables are inserted
    into every existing block and every gap.  Orderings that are unsatisfiable
    over a discrete domain (too many blocks squeezed between two constants)
    are skipped.
    """
    term_set = set(terms)
    constants = sorted(
        {term for term in term_set if isinstance(term, Constant)}, key=lambda c: Fraction(c.value)
    )
    variables = sorted(
        {term for term in term_set if isinstance(term, Variable)}, key=lambda v: v.name
    )
    initial: tuple[frozenset, ...] = tuple(frozenset({constant}) for constant in constants)
    for blocks in _insert_variables(initial, variables):
        ordering = CompleteOrdering(blocks, domain)
        if ordering.is_satisfiable():
            yield ordering


def _insert_variables(
    blocks: tuple[frozenset, ...], variables: Sequence[Variable]
) -> Iterator[tuple[frozenset, ...]]:
    if not variables:
        if blocks:
            yield blocks
        return
    variable, rest = variables[0], variables[1:]
    # Join an existing block.
    for index in range(len(blocks)):
        extended = blocks[:index] + (blocks[index] | {variable},) + blocks[index + 1 :]
        yield from _insert_variables(extended, rest)
    # Start a new block in any gap.
    for position in range(len(blocks) + 1):
        extended = blocks[:position] + (frozenset({variable}),) + blocks[position:]
        yield from _insert_variables(extended, rest)


def count_complete_orderings(term_count: int) -> int:
    """The number of ordered set partitions (Fubini number) of ``term_count``
    distinct variables — a rough size indicator used by benchmarks."""
    fubini = [1]
    for n in range(1, term_count + 1):
        total = 0
        for k in range(1, n + 1):
            total += _binomial(n, k) * fubini[n - k]
        fubini.append(total)
    return fubini[term_count]


def _binomial(n: int, k: int) -> int:
    result = 1
    for i in range(1, k + 1):
        result = result * (n - i + 1) // i
    return result
