"""Candidate rewritings of a query over a catalog of materialized views.

Generation is deliberately three-layered:

1. **This module** proposes candidates by matching view definitions against
   the query body (homomorphism search) and applying the aggregate pairing
   rules — cheap syntactic work that may propose near-misses.
2. :mod:`repro.rewriting.unfold` refuses any candidate whose unfolding would
   not be faithful (duplicating views under aggregates, joins on partial
   aggregates, unsupported pairings); such candidates become
   :class:`RejectedCandidate` records with the unfolder's reason.
3. The equivalence engine (:mod:`repro.core.equivalence`) is the final
   oracle: only candidates whose unfolding it proves EQUIVALENT to the query
   are ever emitted as safe (:mod:`repro.rewriting.engine`).

A candidate replaces a covered part of one disjunct by a single view atom
(partial cover, conjunctive queries), or the whole disjunctive body by one
view atom (total cover).  The aggregate pairings generated here mirror the
threading rules of the unfolder:

* ``sum``/``max``/``min`` queries over a view aggregating the same function
  of the same variable — the candidate reads the view's aggregate column;
* ``count()`` queries over a ``count()`` view — the candidate *sums* the
  view's per-group counts;
* ``cntd`` queries over any aggregate view grouped by the counted variables —
  the candidate *counts the view's rows* (one per group);
* any query over non-aggregate views — the candidate keeps its aggregate;
  the unfolder enforces duplicate-freeness when one is present.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from ..datalog.atoms import Comparison, RelationalAtom
from ..datalog.conditions import Condition
from ..datalog.queries import AggregateTerm, Query
from ..datalog.terms import Constant, Term, Variable
from ..errors import MalformedQueryError, RewritingError, UnsafeQueryError
from .unfold import THREADED_PAIRINGS, unfold_query
from .views import View, ViewCatalog


@dataclass(frozen=True)
class CandidateRewriting:
    """A candidate rewriting: the query over views plus its unfolding."""

    name: str
    query: Query
    unfolded: Query
    view_names: tuple[str, ...]
    description: str = ""

    def __str__(self) -> str:
        return f"{self.name}: {self.query}"


@dataclass(frozen=True)
class RejectedCandidate:
    """A candidate ruled out before verification, with the reason."""

    view_name: str
    reason: str
    query: Optional[Query] = None

    def __str__(self) -> str:
        return f"[{self.view_name}] {self.reason}"


#: Cap on homomorphisms explored per (view, disjunct) — candidate generation
#: is a heuristic front end, not an exhaustive rewriting enumeration.
MAX_HOMOMORPHISMS = 64


def generate_candidates(
    query: Query,
    catalog: ViewCatalog,
    *,
    limit: int = 32,
) -> tuple[list[CandidateRewriting], list[RejectedCandidate]]:
    """Propose candidate rewritings of ``query`` over the catalog's views.

    Returns ``(candidates, rejected)``: syntactically plausible candidates
    whose unfolding is faithful, and the candidates ruled out by the
    unfolder's safety conditions (with reasons).  Neither list says anything
    about *equivalence* — that is the engine's job.
    """
    candidates: list[CandidateRewriting] = []
    rejected: list[RejectedCandidate] = []
    seen: set[str] = set()
    for view in catalog:
        for candidate_query, description in _view_candidates(query, view):
            if len(candidates) >= limit:
                return candidates, rejected
            key = str(candidate_query)
            if key in seen:
                continue
            seen.add(key)
            try:
                unfolded = unfold_query(candidate_query, catalog)
            except RewritingError as error:
                rejected.append(RejectedCandidate(view.name, str(error), candidate_query))
                continue
            candidates.append(
                CandidateRewriting(
                    name=f"{query.name}__via_{view.name}_{len(candidates) + 1}",
                    query=candidate_query,
                    unfolded=unfolded,
                    view_names=(view.name,),
                    description=description,
                )
            )
    return candidates, rejected


# ----------------------------------------------------------------------
# Per-view candidate construction
# ----------------------------------------------------------------------
def _view_candidates(query: Query, view: View) -> Iterator[tuple[Query, str]]:
    if query.is_conjunctive and view.query.is_conjunctive:
        yield from _partial_cover_candidates(query, view)
    elif not view.is_aggregate and len(query.disjuncts) == len(view.query.disjuncts) > 1:
        yield from _total_cover_candidates(query, view)


def _fresh_output_variable(query: Query) -> Variable:
    taken = {variable.name for variable in query.variables()}
    for index in itertools.count():
        name = f"t{index}" if index else "t"
        if name not in taken:
            return Variable(name)


def _partial_cover_candidates(query: Query, view: View) -> Iterator[tuple[Query, str]]:
    """Candidates replacing a covered sub-body of a conjunctive query by one
    view atom (total cover is the empty-residual special case)."""
    disjunct = query.disjuncts[0]
    aggregation = query.aggregation_variables()
    output = _fresh_output_variable(query)
    for mapping, covered in itertools.islice(
        _body_homomorphisms(view.query.disjuncts[0], disjunct), MAX_HOMOMORPHISMS
    ):
        if not covered:
            continue
        if any(head_var not in mapping for head_var in view.head_variables):
            # A head variable the homomorphism leaves unbound (it occurs only
            # in the view's comparisons) would leak the view's namespace.
            continue
        residual = tuple(
            literal
            for position, literal in enumerate(disjunct.literals)
            if position not in covered
        )
        covered_vars: set[Variable] = set()
        for position in covered:
            covered_vars |= disjunct.literals[position].variables()
        exported = {
            mapping.get(head_var)
            for head_var in view.head_variables
            if isinstance(mapping.get(head_var), Variable)
        }
        pairing = _aggregate_pairing(query, view, mapping, output)
        if pairing is None:
            continue
        candidate_aggregate, absorbed, mode = pairing
        residual_vars: set[Variable] = set()
        for literal in residual:
            residual_vars |= literal.variables()
        needed = (
            (query.grouping_variables() | set(aggregation) | residual_vars) - absorbed
        ) & covered_vars
        if not needed <= exported:
            continue
        arguments: list[Term] = [mapping[head_var] for head_var in view.head_variables]
        if view.is_aggregate:
            arguments.append(output)
        atom = RelationalAtom(view.name, tuple(arguments))
        if mode == "count-rows":
            extras = {
                argument
                for argument in arguments[:-1]
                if isinstance(argument, Variable)
                and argument not in query.grouping_variables()
            }
            if extras != set(aggregation):
                continue
        body = Condition((atom,) + residual)
        try:
            candidate = Query(query.name, query.head_terms, (body,), candidate_aggregate)
        except (MalformedQueryError, UnsafeQueryError):
            continue
        yield candidate, _describe(view, mode, residual)


def _aggregate_pairing(
    query: Query, view: View, mapping: dict[Variable, Term], output: Variable
) -> Optional[tuple[Optional[AggregateTerm], set[Variable], str]]:
    """How the candidate's head relates to the view: the candidate aggregate,
    the query variables the view absorbs, and a mode tag for the unfolder's
    benefit.  ``None`` means no supported pairing for this homomorphism.
    ``output`` is the variable that will read the view's aggregate column."""
    if not query.is_aggregate:
        if view.is_aggregate:
            return None
        return None, set(), "plain"
    function = query.aggregate.function
    aggregation = query.aggregation_variables()
    if not view.is_aggregate:
        # The candidate keeps its own aggregate; duplicate-freeness is the
        # unfolder's check (a duplicating view must be *visibly* rejected).
        return query.aggregate, set(), "keep"
    view_function = view.query.aggregate.function
    view_aggregation = view.query.aggregation_variables()
    threaded = THREADED_PAIRINGS.get((function, view_function))
    if threaded is not None:
        if view_function == "count":
            # sum over a count view only matches a count-shaped query; the
            # pinned-sum case is the dispatcher's normalization, not ours.
            return None
        if len(aggregation) != 1 or mapping.get(view_aggregation[0]) != aggregation[0]:
            return None
        return AggregateTerm(function, (output,)), {aggregation[0]}, "threaded"
    if function == "count" and view_function == "count" and not aggregation:
        return AggregateTerm("sum", (output,)), set(), "sum-of-counts"
    if function == "cntd":
        return AggregateTerm("count", ()), set(aggregation), "count-rows"
    return None


def _describe(view: View, mode: str, residual: Sequence) -> str:
    tail = f" + {len(residual)} residual literal(s)" if residual else ""
    if mode == "threaded":
        return f"{view.query.aggregate.function} threaded through view {view.name}{tail}"
    if mode == "sum-of-counts":
        return f"sum of per-group counts of view {view.name}{tail}"
    if mode == "count-rows":
        return f"count of {view.name} rows (one per group){tail}"
    return f"covered by view {view.name}{tail}"


def _total_cover_candidates(query: Query, view: View) -> Iterator[tuple[Query, str]]:
    """Candidates replacing a whole disjunctive body by one atom of a
    disjunctive (non-aggregate) view: every query disjunct must be fully
    covered by a distinct view disjunct, with one consistent argument list."""
    for permutation in itertools.permutations(range(len(query.disjuncts))):
        arguments = _match_total_cover(query, view, permutation)
        if arguments is None:
            continue
        needed = query.grouping_variables() | set(query.aggregation_variables())
        if not needed <= {term for term in arguments if isinstance(term, Variable)}:
            continue
        atom = RelationalAtom(view.name, arguments)
        try:
            candidate = Query(
                query.name, query.head_terms, (Condition((atom,)),), query.aggregate
            )
        except (MalformedQueryError, UnsafeQueryError):
            continue
        yield candidate, f"whole body covered by disjunctive view {view.name}"
        return  # one total cover per view is plenty


def _match_total_cover(
    query: Query, view: View, permutation: Sequence[int]
) -> Optional[tuple[Term, ...]]:
    """Match view disjunct ``i`` onto query disjunct ``permutation[i]``,
    requiring full bidirectional cover and one shared argument list."""
    arguments: Optional[tuple[Term, ...]] = None
    for view_index, query_index in enumerate(permutation):
        view_condition = view.query.disjuncts[view_index]
        target = query.disjuncts[query_index]
        relational_positions = {
            position
            for position, literal in enumerate(target.literals)
            if isinstance(literal, RelationalAtom)
        }
        matched = None
        for mapping, covered in itertools.islice(
            _body_homomorphisms(view_condition, target, require_all_comparisons=True),
            MAX_HOMOMORPHISMS,
        ):
            if covered != relational_positions:
                continue
            candidate_arguments = tuple(
                mapping.get(head_var, head_var) for head_var in view.head_variables
            )
            if arguments is None or candidate_arguments == arguments:
                matched = candidate_arguments
                break
        if matched is None:
            return None
        arguments = matched
    return arguments


# ----------------------------------------------------------------------
# Condition-level homomorphism search
# ----------------------------------------------------------------------
def _body_homomorphisms(
    source: Condition,
    target: Condition,
    *,
    require_all_comparisons: bool = False,
) -> Iterator[tuple[dict[Variable, Term], frozenset[int]]]:
    """Homomorphisms from a view body into (part of) a target condition.

    Yields ``(mapping, covered)``: a substitution of the source's variables
    by target terms under which every source relational atom is a target
    literal of the same polarity, plus the positions of the covered target
    literals.  Source comparisons must map onto target comparisons (up to
    operand flipping) — the view must not filter more than the query does.
    With ``require_all_comparisons`` the converse is also required (used by
    total covers, where nothing of the target may be left behind).
    """
    positives = [
        (position, literal)
        for position, literal in enumerate(target.literals)
        if isinstance(literal, RelationalAtom) and literal.is_positive
    ]
    negatives = [
        (position, literal)
        for position, literal in enumerate(target.literals)
        if isinstance(literal, RelationalAtom) and literal.negated
    ]
    target_comparisons = {
        _comparison_key(literal) for literal in target.comparisons
    } | {_comparison_key(literal.flip()) for literal in target.comparisons}

    source_atoms = list(source.positive_atoms) + list(source.negated_atoms)
    pools = [
        negatives if atom.negated else positives for atom in source_atoms
    ]

    def search(
        index: int, mapping: dict[Variable, Term], covered: frozenset[int]
    ) -> Iterator[tuple[dict[Variable, Term], frozenset[int]]]:
        if index == len(source_atoms):
            images = set()
            for comparison in source.comparisons:
                image = comparison.substitute(mapping)
                if _comparison_key(image) not in target_comparisons:
                    return
                images.add(_comparison_key(image))
                images.add(_comparison_key(image.flip()))
            if require_all_comparisons and not target_comparisons <= images:
                return
            yield dict(mapping), covered
            return
        atom = source_atoms[index]
        for position, literal in pools[index]:
            extended = _unify_atom(atom, literal, mapping)
            if extended is not None:
                yield from search(index + 1, extended, covered | {position})

    yield from search(0, {}, frozenset())


def _unify_atom(
    atom: RelationalAtom, image: RelationalAtom, mapping: dict[Variable, Term]
) -> Optional[dict[Variable, Term]]:
    if atom.predicate != image.predicate or atom.arity != image.arity:
        return None
    extended = dict(mapping)
    for argument, target_term in zip(atom.arguments, image.arguments):
        if isinstance(argument, Constant):
            if argument != target_term:
                return None
            continue
        bound = extended.get(argument)
        if bound is None:
            extended[argument] = target_term
        elif bound != target_term:
            return None
    return extended


def _comparison_key(comparison: Comparison) -> tuple:
    return (comparison.left, comparison.op, comparison.right)
