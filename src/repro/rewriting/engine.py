"""The rewriting engine: synthesize, verify, and rank view rewritings.

``rewrite(query, views)`` is the subsystem's front door.  It

1. generates candidate rewritings over the views
   (:mod:`repro.rewriting.candidates`),
2. **verifies** each candidate by unfolding it to base predicates and
   deciding ``query ≡ unfolded`` with the strongest applicable procedure —
   the whole verification batch is planned with
   :func:`repro.workloads.batch.plan_catalog_sweep`, so same-dispatch-class
   candidates share one subset/ordering sweep, and everything (sweep shards
   and per-pair cells alike) fans out over :mod:`repro.parallel` workers —
3. partitions the candidates into *safe* (proved EQUIVALENT), *not
   equivalent* (with a witness database where one was found), *unverified*
   (UNKNOWN or over the search-space budget) and *rejected* (ruled out
   before verification by the unfolder's faithfulness conditions), and
4. ranks the safe rewritings by estimated evaluation cost against the
   materialized view extents when a database is supplied.

Only candidates in the *safe* bucket may be substituted for the query: the
equivalence engine proved they agree with it over **every** database, which
is the paper's criterion for a sound warehouse rewriting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence, Union

from ..core.equivalence import EquivalenceResult, Verdict
from ..datalog.database import Database
from ..datalog.queries import Query
from ..datalog.terms import Constant
from ..domains import Domain
from ..errors import RewritingError, SearchSpaceBudgetError
from ..obs import span as _span
from ..parallel.executor import Executor
from ..parallel.tasks import PairOutcome, run_pair_task
from .candidates import CandidateRewriting, RejectedCandidate, generate_candidates
from .unfold import unfold_query
from .views import View, ViewCatalog

#: Reserved catalog name for the query under rewriting in verification
#: batches; candidate names always contain ``__via_``, so it cannot clash.
TARGET_NAME = "__target__"

#: Anything accepted where a view catalog is expected.
ViewsLike = Union[ViewCatalog, Iterable[View], Mapping[str, Query]]


def as_view_catalog(views: ViewsLike) -> ViewCatalog:
    """Coerce ``views`` into a :class:`ViewCatalog`."""
    if isinstance(views, ViewCatalog):
        return views
    if isinstance(views, Mapping):
        return ViewCatalog.from_mapping(views)
    return ViewCatalog(views)


def naive_estimated_cost(query: Query, database: Database) -> int:
    """The PR 4 cost model, kept as the coarse reference: per disjunct, the
    product of the sizes of the positive atoms' relations (the worst case a
    nested-loop join can enumerate), summed over disjuncts.  It orders a
    fact-table scan above a view probe, but ties every residual join of the
    same relations regardless of how selective the join columns are."""
    total = 0
    for disjunct in query.disjuncts:
        cost = 1
        for atom in disjunct.positive_atoms:
            cost *= max(1, len(database.relation(atom.predicate)))
        total += cost
    return total


def _column_distinct_count(
    database: Database, predicate: str, position: int, memo: dict
) -> int:
    """Distinct values in one column of a stored relation (memoized per call
    — the ranking probes the same view extents for every candidate)."""
    key = (predicate, position)
    cached = memo.get(key)
    if cached is None:
        cached = len({row[position] for row in database.relation(predicate)})
        memo[key] = cached
    return cached


def estimated_cost(
    query: Query, database: Database, _memo: Optional[dict] = None
) -> int:
    """A distinct-count join-cardinality estimate over the stored extents.

    Atoms are joined left to right (candidates put their view atom first, so
    its columns bind the residual joins).  Each atom starts from its
    relation's row count; every column already bound by an earlier atom — or
    pinned by a constant — divides the contribution by that column's distinct
    count in the stored extent, the classic uniform-frequency estimate
    ``|R| / Π V(R, c)``.  Unlike the plain join-size product
    (:func:`naive_estimated_cost`) this ranks residual-join candidates by
    how selectively the view's exported columns bind them: probing a
    pre-aggregated extent whose group key joins the residual on all its
    distinct values costs ~one row per group, not ``|view| × |residual|``.

    Estimates are floored at one row per atom, summed over disjuncts, so a
    fact-table scan still dominates every pre-aggregated probe.
    """
    memo: dict = _memo if _memo is not None else {}
    total = 0
    for disjunct in query.disjuncts:
        rows = 1
        bound: set = set()
        for atom in disjunct.positive_atoms:
            size = max(1, len(database.relation(atom.predicate)))
            selectivity = 1
            for position, argument in enumerate(atom.arguments):
                if isinstance(argument, Constant) or argument in bound:
                    selectivity *= max(
                        1, _column_distinct_count(database, atom.predicate, position, memo)
                    )
            rows *= max(1, size // selectivity)
            bound |= {
                argument for argument in atom.arguments if not isinstance(argument, Constant)
            }
        total += rows
    return total


@dataclass
class VerifiedRewriting:
    """A candidate together with its verification verdict (and, when a
    database was supplied, its estimated cost over the materialized views)."""

    candidate: CandidateRewriting
    result: EquivalenceResult
    estimated_cost: Optional[int] = None

    @property
    def is_safe(self) -> bool:
        return self.result.verdict is Verdict.EQUIVALENT

    def __str__(self) -> str:
        cost = f", est. cost {self.estimated_cost}" if self.estimated_cost is not None else ""
        return f"{self.candidate.name}: {self.result.verdict.value} [{self.result.method}]{cost}"


@dataclass
class RewritingReport:
    """The outcome of :func:`rewrite` for one query."""

    query: Query
    safe: list[VerifiedRewriting] = field(default_factory=list)
    not_equivalent: list[VerifiedRewriting] = field(default_factory=list)
    unverified: list[VerifiedRewriting] = field(default_factory=list)
    rejected: list[RejectedCandidate] = field(default_factory=list)
    direct_cost: Optional[int] = None

    @property
    def best(self) -> Optional[VerifiedRewriting]:
        """The cheapest safe rewriting (the first, after ranking)."""
        return self.safe[0] if self.safe else None

    def __str__(self) -> str:
        lines = [f"rewritings of {self.query.head_string()}:"]
        for verified in self.safe:
            lines.append(f"  SAFE {verified}")
        for verified in self.not_equivalent:
            lines.append(f"  UNSAFE {verified}")
        for verified in self.unverified:
            lines.append(f"  UNVERIFIED {verified}")
        for rejection in self.rejected:
            lines.append(f"  REJECTED {rejection}")
        return "\n".join(lines)


def _run_pair_task_guarded(task) -> PairOutcome:
    """Pair-task runner that degrades a blown search-space budget to an
    UNVERIFIED verdict instead of aborting the whole batch (one oversized
    candidate must not take down its siblings)."""
    try:
        return run_pair_task(task)
    except SearchSpaceBudgetError as error:
        return PairOutcome(
            task.index,
            task.name_a,
            task.name_b,
            EquivalenceResult(
                Verdict.UNKNOWN,
                method="search-space budget exceeded",
                domain=task.domain,
                details=str(error),
            ),
        )


class RewritingEngine:
    """Synthesis + verification of view rewritings for one view catalog."""

    def __init__(
        self,
        views: ViewsLike,
        *,
        domain: Domain = Domain.RATIONALS,
        max_subsets: int = 2_000_000,
        counterexample_trials: int = 400,
        unknown_bound: Optional[int] = None,
        normalize: bool = True,
        shared_base: bool = True,
        sweep: bool = True,
    ):
        self.views = as_view_catalog(views)
        self.domain = domain
        self.max_subsets = max_subsets
        self.counterexample_trials = counterexample_trials
        # Decision knobs forwarded to every verification batch, so a session
        # configuring them (repro.session.Workspace) gets the same dispatch
        # behavior from rewrite verification as from its equivalence matrix.
        self.unknown_bound = unknown_bound
        self.normalize = normalize
        self.shared_base = shared_base
        self.sweep = sweep

    # ------------------------------------------------------------------
    # Candidate synthesis
    # ------------------------------------------------------------------
    def candidates(
        self, query: Query, limit: int = 32
    ) -> tuple[list[CandidateRewriting], list[RejectedCandidate]]:
        """Generate (unverified) candidates and the pre-verification
        rejections for ``query``."""
        if set(query.predicates()) & set(self.views.names):
            raise RewritingError(
                f"query {query.name!r} already mentions a view predicate; "
                "rewrite() expects a query over base relations"
            )
        return generate_candidates(query, self.views, limit=limit)

    def make_candidate(
        self, query: Query, candidate_query: Query, name: Optional[str] = None
    ) -> CandidateRewriting:
        """Wrap a hand-written candidate (a query over view predicates) for
        verification, unfolding it through the catalog."""
        unfolded = unfold_query(candidate_query, self.views)
        used = tuple(
            sorted(set(candidate_query.predicates()) & set(self.views.names))
        )
        return CandidateRewriting(
            name=name or f"{query.name}__via_{'_'.join(used) or 'manual'}",
            query=candidate_query,
            unfolded=unfolded,
            view_names=used,
            description="user-supplied candidate",
        )

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(
        self,
        query: Query,
        candidates: Sequence[CandidateRewriting],
        *,
        workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        seed: Optional[int] = None,
    ) -> list[VerifiedRewriting]:
        """Decide ``query ≡ unfold(candidate)`` for every candidate.

        The (target, candidate) cells are decided exactly like an equivalence
        matrix restricted to one row (:func:`repro.workloads.batch.decide_pairs`
        with ``pairs=`` the row): :func:`plan_catalog_sweep` groups cells the
        dispatcher would decide by the bounded procedure into single-sweep
        groups (one subset/ordering enumeration per group), and the leftover
        cells run as parallel pair tasks through the full dispatcher — with
        budget-blown cells degraded to UNKNOWN instead of aborting the batch.
        """
        from ..workloads.batch import decide_pairs

        if not candidates:
            return []
        catalog: dict[str, Query] = {TARGET_NAME: query}
        for candidate in candidates:
            if candidate.name in catalog:
                raise RewritingError(f"duplicate candidate name {candidate.name!r}")
            catalog[candidate.name] = candidate.unfolded
        wanted = [
            tuple(sorted((TARGET_NAME, candidate.name))) for candidate in candidates
        ]
        with _span(
            "rewrite.verify", query=query.name, candidates=len(candidates)
        ) as verify_span:
            results = decide_pairs(
                catalog,
                wanted,
                domain=self.domain,
                counterexample_trials=self.counterexample_trials,
                max_subsets=self.max_subsets,
                unknown_bound=self.unknown_bound,
                workers=workers,
                executor=executor,
                seed=seed,
                normalize=self.normalize,
                shared_base=self.shared_base,
                sweep=self.sweep,
                pair_runner=_run_pair_task_guarded,
            )
            verify_span.note(
                safe=sum(
                    1
                    for result in results.values()
                    if result.verdict is Verdict.EQUIVALENT
                )
            )
        verified: list[VerifiedRewriting] = []
        for candidate in candidates:
            pair = tuple(sorted((TARGET_NAME, candidate.name)))
            verified.append(VerifiedRewriting(candidate, results[pair]))
        return verified

    # ------------------------------------------------------------------
    # The full pipeline
    # ------------------------------------------------------------------
    def rewrite(
        self,
        query: Query,
        *,
        database: Optional[Database] = None,
        workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        seed: Optional[int] = None,
        limit: int = 32,
    ) -> RewritingReport:
        """Synthesize, verify, and rank rewritings of ``query``.

        With ``database`` the safe rewritings are ranked by estimated cost
        over the materialized view extents (cheapest first) and the report
        records the direct fact-table cost for comparison; without one the
        generation order is kept.
        """
        candidates, rejected = self.candidates(query, limit=limit)
        verified = self.verify(
            query, candidates, workers=workers, executor=executor, seed=seed
        )
        return assemble_report(query, verified, rejected, self.views, database)


def assemble_report(
    query: Query,
    verified: Sequence[VerifiedRewriting],
    rejected: Sequence[RejectedCandidate],
    views: ViewCatalog,
    database: Optional[Database] = None,
) -> RewritingReport:
    """Partition verified candidates into a :class:`RewritingReport` and —
    with a database — rank the safe bucket by estimated cost over the
    materialized extents.

    Split out of :meth:`RewritingEngine.rewrite` so a session
    (:meth:`repro.session.Workspace.rewrite`) can cache the expensive
    verification outcomes and re-assemble reports per call (the ranking
    depends on the database; the verdicts do not).
    """
    report = RewritingReport(query=query, rejected=list(rejected))
    for outcome in verified:
        if outcome.is_safe:
            report.safe.append(outcome)
        elif outcome.result.verdict is Verdict.NOT_EQUIVALENT:
            report.not_equivalent.append(outcome)
        else:
            report.unverified.append(outcome)
    if database is not None:
        materialized = views.materialize(database)
        memo: dict = {}
        report.direct_cost = estimated_cost(query, database)
        for outcome in report.safe:
            outcome.estimated_cost = estimated_cost(
                outcome.candidate.query, materialized, memo
            )
        report.safe.sort(
            key=lambda outcome: (outcome.estimated_cost, outcome.candidate.name)
        )
    return report


def rewrite(
    query: Query,
    views: ViewsLike,
    *,
    database: Optional[Database] = None,
    workers: Optional[int] = None,
    seed: Optional[int] = None,
    domain: Domain = Domain.RATIONALS,
    max_subsets: int = 2_000_000,
    limit: int = 32,
) -> RewritingReport:
    """Synthesize and verify rewritings of ``query`` over materialized views.

    The one-shot form of :class:`RewritingEngine`: every emitted safe
    rewriting has been proved equivalent to ``query`` over every database by
    the equivalence engine; ``workers=N`` fans the verification out over N
    processes (``None`` honours ``REPRO_WORKERS``).

    .. deprecated:: prefer :class:`repro.session.Workspace` when rewriting
       more than once against the same view catalog — this function is now a
       thin shim over an ephemeral workspace, so every call re-forks its
       worker pool and re-verifies from cold caches.  A session registers the
       views once, keeps the pool and verification caches alive, and serves
       repeated ``ws.rewrite(query)`` calls from them.
    """
    from ..session import Workspace

    with Workspace(
        workers=workers, domain=domain, max_subsets=max_subsets, seed=seed
    ) as workspace:
        for view in as_view_catalog(views):
            workspace.register_view(view)
        return workspace.rewrite(query, database=database, limit=limit)
