"""The rewriting engine: synthesize, verify, and rank view rewritings.

``rewrite(query, views)`` is the subsystem's front door.  It

1. generates candidate rewritings over the views
   (:mod:`repro.rewriting.candidates`),
2. **verifies** each candidate by unfolding it to base predicates and
   deciding ``query ≡ unfolded`` with the strongest applicable procedure —
   the whole verification batch is planned with
   :func:`repro.workloads.batch.plan_catalog_sweep`, so same-dispatch-class
   candidates share one subset/ordering sweep, and everything (sweep shards
   and per-pair cells alike) fans out over :mod:`repro.parallel` workers —
3. partitions the candidates into *safe* (proved EQUIVALENT), *not
   equivalent* (with a witness database where one was found), *unverified*
   (UNKNOWN or over the search-space budget) and *rejected* (ruled out
   before verification by the unfolder's faithfulness conditions), and
4. ranks the safe rewritings by estimated evaluation cost against the
   materialized view extents when a database is supplied.

Only candidates in the *safe* bucket may be substituted for the query: the
equivalence engine proved they agree with it over **every** database, which
is the paper's criterion for a sound warehouse rewriting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence, Union

from ..core.equivalence import EquivalenceResult, Verdict
from ..datalog.database import Database
from ..datalog.queries import Query
from ..domains import Domain
from ..errors import RewritingError, SearchSpaceBudgetError
from ..parallel.executor import Executor
from ..parallel.tasks import PairOutcome, run_pair_task
from .candidates import CandidateRewriting, RejectedCandidate, generate_candidates
from .unfold import unfold_query
from .views import View, ViewCatalog

#: Reserved catalog name for the query under rewriting in verification
#: batches; candidate names always contain ``__via_``, so it cannot clash.
TARGET_NAME = "__target__"

#: Anything accepted where a view catalog is expected.
ViewsLike = Union[ViewCatalog, Iterable[View], Mapping[str, Query]]


def as_view_catalog(views: ViewsLike) -> ViewCatalog:
    """Coerce ``views`` into a :class:`ViewCatalog`."""
    if isinstance(views, ViewCatalog):
        return views
    if isinstance(views, Mapping):
        return ViewCatalog.from_mapping(views)
    return ViewCatalog(views)


def estimated_cost(query: Query, database: Database) -> int:
    """A naive join-size upper bound: per disjunct, the product of the sizes
    of the positive atoms' relations (the worst case a nested-loop join can
    enumerate), summed over disjuncts.  Crude, but it orders a fact-table
    scan far above a pre-aggregated view probe — which is exactly the
    decision the ranking has to make."""
    total = 0
    for disjunct in query.disjuncts:
        cost = 1
        for atom in disjunct.positive_atoms:
            cost *= max(1, len(database.relation(atom.predicate)))
        total += cost
    return total


@dataclass
class VerifiedRewriting:
    """A candidate together with its verification verdict (and, when a
    database was supplied, its estimated cost over the materialized views)."""

    candidate: CandidateRewriting
    result: EquivalenceResult
    estimated_cost: Optional[int] = None

    @property
    def is_safe(self) -> bool:
        return self.result.verdict is Verdict.EQUIVALENT

    def __str__(self) -> str:
        cost = f", est. cost {self.estimated_cost}" if self.estimated_cost is not None else ""
        return f"{self.candidate.name}: {self.result.verdict.value} [{self.result.method}]{cost}"


@dataclass
class RewritingReport:
    """The outcome of :func:`rewrite` for one query."""

    query: Query
    safe: list[VerifiedRewriting] = field(default_factory=list)
    not_equivalent: list[VerifiedRewriting] = field(default_factory=list)
    unverified: list[VerifiedRewriting] = field(default_factory=list)
    rejected: list[RejectedCandidate] = field(default_factory=list)
    direct_cost: Optional[int] = None

    @property
    def best(self) -> Optional[VerifiedRewriting]:
        """The cheapest safe rewriting (the first, after ranking)."""
        return self.safe[0] if self.safe else None

    def __str__(self) -> str:
        lines = [f"rewritings of {self.query.head_string()}:"]
        for verified in self.safe:
            lines.append(f"  SAFE {verified}")
        for verified in self.not_equivalent:
            lines.append(f"  UNSAFE {verified}")
        for verified in self.unverified:
            lines.append(f"  UNVERIFIED {verified}")
        for rejection in self.rejected:
            lines.append(f"  REJECTED {rejection}")
        return "\n".join(lines)


def _run_pair_task_guarded(task) -> PairOutcome:
    """Pair-task runner that degrades a blown search-space budget to an
    UNVERIFIED verdict instead of aborting the whole batch (one oversized
    candidate must not take down its siblings)."""
    try:
        return run_pair_task(task)
    except SearchSpaceBudgetError as error:
        return PairOutcome(
            task.index,
            task.name_a,
            task.name_b,
            EquivalenceResult(
                Verdict.UNKNOWN,
                method="search-space budget exceeded",
                domain=task.domain,
                details=str(error),
            ),
        )


class RewritingEngine:
    """Synthesis + verification of view rewritings for one view catalog."""

    def __init__(
        self,
        views: ViewsLike,
        *,
        domain: Domain = Domain.RATIONALS,
        max_subsets: int = 2_000_000,
        counterexample_trials: int = 400,
    ):
        self.views = as_view_catalog(views)
        self.domain = domain
        self.max_subsets = max_subsets
        self.counterexample_trials = counterexample_trials

    # ------------------------------------------------------------------
    # Candidate synthesis
    # ------------------------------------------------------------------
    def candidates(
        self, query: Query, limit: int = 32
    ) -> tuple[list[CandidateRewriting], list[RejectedCandidate]]:
        """Generate (unverified) candidates and the pre-verification
        rejections for ``query``."""
        if set(query.predicates()) & set(self.views.names):
            raise RewritingError(
                f"query {query.name!r} already mentions a view predicate; "
                "rewrite() expects a query over base relations"
            )
        return generate_candidates(query, self.views, limit=limit)

    def make_candidate(
        self, query: Query, candidate_query: Query, name: Optional[str] = None
    ) -> CandidateRewriting:
        """Wrap a hand-written candidate (a query over view predicates) for
        verification, unfolding it through the catalog."""
        unfolded = unfold_query(candidate_query, self.views)
        used = tuple(
            sorted(set(candidate_query.predicates()) & set(self.views.names))
        )
        return CandidateRewriting(
            name=name or f"{query.name}__via_{'_'.join(used) or 'manual'}",
            query=candidate_query,
            unfolded=unfolded,
            view_names=used,
            description="user-supplied candidate",
        )

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(
        self,
        query: Query,
        candidates: Sequence[CandidateRewriting],
        *,
        workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        seed: Optional[int] = None,
    ) -> list[VerifiedRewriting]:
        """Decide ``query ≡ unfold(candidate)`` for every candidate.

        The (target, candidate) cells are decided exactly like an equivalence
        matrix restricted to one row (:func:`repro.workloads.batch.decide_pairs`
        with ``pairs=`` the row): :func:`plan_catalog_sweep` groups cells the
        dispatcher would decide by the bounded procedure into single-sweep
        groups (one subset/ordering enumeration per group), and the leftover
        cells run as parallel pair tasks through the full dispatcher — with
        budget-blown cells degraded to UNKNOWN instead of aborting the batch.
        """
        from ..workloads.batch import decide_pairs

        if not candidates:
            return []
        catalog: dict[str, Query] = {TARGET_NAME: query}
        for candidate in candidates:
            if candidate.name in catalog:
                raise RewritingError(f"duplicate candidate name {candidate.name!r}")
            catalog[candidate.name] = candidate.unfolded
        wanted = [
            tuple(sorted((TARGET_NAME, candidate.name))) for candidate in candidates
        ]
        results = decide_pairs(
            catalog,
            wanted,
            domain=self.domain,
            counterexample_trials=self.counterexample_trials,
            max_subsets=self.max_subsets,
            workers=workers,
            executor=executor,
            seed=seed,
            pair_runner=_run_pair_task_guarded,
        )
        verified: list[VerifiedRewriting] = []
        for candidate in candidates:
            pair = tuple(sorted((TARGET_NAME, candidate.name)))
            verified.append(VerifiedRewriting(candidate, results[pair]))
        return verified

    # ------------------------------------------------------------------
    # The full pipeline
    # ------------------------------------------------------------------
    def rewrite(
        self,
        query: Query,
        *,
        database: Optional[Database] = None,
        workers: Optional[int] = None,
        executor: Optional[Executor] = None,
        seed: Optional[int] = None,
        limit: int = 32,
    ) -> RewritingReport:
        """Synthesize, verify, and rank rewritings of ``query``.

        With ``database`` the safe rewritings are ranked by estimated cost
        over the materialized view extents (cheapest first) and the report
        records the direct fact-table cost for comparison; without one the
        generation order is kept.
        """
        candidates, rejected = self.candidates(query, limit=limit)
        verified = self.verify(
            query, candidates, workers=workers, executor=executor, seed=seed
        )
        report = RewritingReport(query=query, rejected=rejected)
        for outcome in verified:
            if outcome.is_safe:
                report.safe.append(outcome)
            elif outcome.result.verdict is Verdict.NOT_EQUIVALENT:
                report.not_equivalent.append(outcome)
            else:
                report.unverified.append(outcome)
        if database is not None:
            materialized = self.views.materialize(database)
            report.direct_cost = estimated_cost(query, database)
            for outcome in report.safe:
                outcome.estimated_cost = estimated_cost(outcome.candidate.query, materialized)
            report.safe.sort(
                key=lambda outcome: (outcome.estimated_cost, outcome.candidate.name)
            )
        return report


def rewrite(
    query: Query,
    views: ViewsLike,
    *,
    database: Optional[Database] = None,
    workers: Optional[int] = None,
    seed: Optional[int] = None,
    domain: Domain = Domain.RATIONALS,
    max_subsets: int = 2_000_000,
    limit: int = 32,
) -> RewritingReport:
    """Synthesize and verify rewritings of ``query`` over materialized views.

    The one-shot form of :class:`RewritingEngine`: every emitted safe
    rewriting has been proved equivalent to ``query`` over every database by
    the equivalence engine; ``workers=N`` fans the verification out over N
    processes (``None`` honours ``REPRO_WORKERS``)."""
    engine = RewritingEngine(views, domain=domain, max_subsets=max_subsets)
    return engine.rewrite(
        query, database=database, workers=workers, seed=seed, limit=limit
    )
