"""Materialized view definitions and their extents.

A *view* is a named query whose result a warehouse keeps materialized: the
view's name doubles as a fresh predicate under which the result is stored,
so queries can be posed *over* views as if they were base relations.  The
paper's introduction motivates exactly this setting — rewriting optimizers
substitute pre-computed views for fact-table subqueries, and the
substitution is safe only when the rewritten query is equivalent to the
original over every database (which is what :mod:`repro.core` decides).

The stored relation of a view:

* **non-aggregate view** ``v(x̄) ← A1 ∨ … ∨ An`` — the answer set under set
  semantics, one row per answer tuple (arity ``|x̄|``);
* **aggregate view** ``v(x̄, α(ȳ)) ← A`` — one row per group, the grouping
  values followed by the aggregate value (arity ``|x̄| + 1``; the aggregate
  value occupies the *last* column).

A view *duplicates* when some disjunct of its definition uses variables that
are not exported through the head: distinct satisfying assignments then
collapse onto one stored row, so unfolding the view multiplies assignments
and duplicate-sensitive aggregates over the view cannot be threaded through
soundly (see :mod:`repro.rewriting.unfold`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional

from ..aggregates.functions import get_function
from ..datalog.database import Database
from ..datalog.queries import Query
from ..datalog.terms import Variable
from ..engine.evaluator import evaluate_aggregate, evaluate_set
from ..errors import RewritingError

#: Aggregation functions whose results are scalars and can therefore be
#: stored in a materialized view column (top2/bot2 return tuples; avg can
#: return None only on empty bags, which never form a group).
MATERIALIZABLE_FUNCTIONS = frozenset(
    {"count", "sum", "max", "min", "avg", "prod", "cntd", "parity"}
)


@dataclass(frozen=True)
class View:
    """A named materialized view: the view predicate plus its definition."""

    name: str
    query: Query

    def __post_init__(self) -> None:
        if not self.name:
            raise RewritingError("view names must be non-empty")
        if self.name in self.query.predicates():
            raise RewritingError(
                f"view {self.name!r} is defined in terms of itself (recursive views "
                "are outside the paper's query class)"
            )
        for term in self.query.head_terms:
            if not isinstance(term, Variable):
                raise RewritingError(
                    f"view {self.name!r} has a non-variable head term {term}; "
                    "materialized view heads must export variables"
                )
        if len(set(self.query.head_terms)) != len(self.query.head_terms):
            raise RewritingError(
                f"view {self.name!r} repeats a head variable; export each column once"
            )
        aggregate = self.query.aggregate
        if aggregate is not None and aggregate.function not in MATERIALIZABLE_FUNCTIONS:
            raise RewritingError(
                f"view {self.name!r} aggregates with {aggregate.function}, whose "
                "results are not scalar values storable in a view column"
            )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def is_aggregate(self) -> bool:
        return self.query.is_aggregate

    @property
    def arity(self) -> int:
        """The arity of the stored relation (aggregate views append the
        aggregate value as one extra column)."""
        return len(self.query.head_terms) + (1 if self.is_aggregate else 0)

    @property
    def head_variables(self) -> tuple[Variable, ...]:
        """The exported columns, in head order (without the aggregate column)."""
        return tuple(self.query.head_terms)  # type: ignore[return-value]

    def duplicating_variables(self) -> set[Variable]:
        """Variables some disjunct uses but does not export — non-empty
        exactly when the view duplicates (for a non-aggregate view).

        Aggregate views are grouped, so their non-exported variables are
        *absorbed* by the aggregate rather than collapsed; duplication is a
        property of non-aggregate views only.
        """
        exported = set(self.query.head_terms) | set(self.query.aggregation_variables())
        hidden: set[Variable] = set()
        for disjunct in self.query.disjuncts:
            hidden |= disjunct.variables() - exported
        return hidden

    @property
    def is_duplicating(self) -> bool:
        return not self.is_aggregate and bool(self.duplicating_variables())

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def rows(self, database: Database) -> set[tuple]:
        """The stored relation of the view over ``database``."""
        if self.is_aggregate:
            return {
                key + (value,)
                for key, value in evaluate_aggregate(
                    self.query, database, get_function(self.query.aggregate.function)
                ).items()
            }
        return evaluate_set(self.query, database)

    def __str__(self) -> str:
        return f"{self.name} := {self.query}"


class ViewCatalog:
    """A set of materialized views with pairwise-distinct predicates."""

    def __init__(self, views: Iterable[View] = ()):
        self._views: dict[str, View] = {}
        base_predicates: set[str] = set()
        for view in views:
            if view.name in self._views:
                raise RewritingError(f"duplicate view name {view.name!r}")
            self._views[view.name] = view
            base_predicates |= view.query.predicates()
        clash = base_predicates & set(self._views)
        if clash:
            names = ", ".join(sorted(clash))
            raise RewritingError(
                f"view name(s) {names} collide with predicates used in view definitions"
            )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[View]:
        return iter(self._views.values())

    def __len__(self) -> int:
        return len(self._views)

    def __contains__(self, name: str) -> bool:
        return name in self._views

    def get(self, name: str) -> Optional[View]:
        return self._views.get(name)

    def __getitem__(self, name: str) -> View:
        try:
            return self._views[name]
        except KeyError:
            raise RewritingError(f"unknown view {name!r}") from None

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._views)

    def base_predicates(self) -> set[str]:
        """The predicates the view definitions are written over."""
        result: set[str] = set()
        for view in self:
            result |= view.query.predicates()
        return result

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def materialize(self, database: Database) -> Database:
        """The database extended with every view's stored relation.

        Rewritten queries may join views against base dimension tables, so
        the materialized instance keeps the base facts alongside the view
        extents.  View predicates must not already occur in the base data.
        """
        clash = set(self._views) & set(database.predicates())
        if clash:
            names = ", ".join(sorted(clash))
            raise RewritingError(
                f"view name(s) {names} collide with base relations of the database"
            )
        facts = []
        for view in self:
            for row in view.rows(database):
                facts.append((view.name, row))
        return database.add_facts(facts)

    @classmethod
    def from_mapping(cls, definitions: Mapping[str, Query]) -> "ViewCatalog":
        """Build a catalog from ``{name: definition}``."""
        return cls(View(name, query) for name, query in definitions.items())

    def __str__(self) -> str:
        return "\n".join(str(view) for view in self)
