"""View-based rewriting: synthesize aggregate rewritings over materialized
views and verify them with the equivalence engine.

The data-warehouse motivation of the paper, made executable: given a query
over base relations and a catalog of materialized views,
:func:`~repro.rewriting.engine.rewrite` proposes candidate rewritings over
the views, unfolds each candidate back to base predicates
(:mod:`~repro.rewriting.unfold`, the faithfulness-critical step), proves or
refutes ``query ≡ unfolding`` with the decision procedures of
:mod:`repro.core`, and ranks the proven-safe rewritings by estimated cost
over the view extents.
"""

from .candidates import (
    CandidateRewriting,
    RejectedCandidate,
    generate_candidates,
)
from .engine import (
    RewritingEngine,
    RewritingReport,
    VerifiedRewriting,
    as_view_catalog,
    assemble_report,
    estimated_cost,
    naive_estimated_cost,
    rewrite,
)
from .unfold import unfold_query, uses_views
from .views import View, ViewCatalog

__all__ = [
    "CandidateRewriting",
    "RejectedCandidate",
    "RewritingEngine",
    "RewritingReport",
    "VerifiedRewriting",
    "View",
    "ViewCatalog",
    "as_view_catalog",
    "assemble_report",
    "estimated_cost",
    "generate_candidates",
    "naive_estimated_cost",
    "rewrite",
    "unfold_query",
    "uses_views",
]
