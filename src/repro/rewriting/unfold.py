"""Capture-avoiding view unfolding.

``unfold_query(q, catalog)`` rewrites a query posed over view predicates into
an equivalent query over base predicates only.  *Equivalent* here is a hard
soundness contract the whole subsystem rests on:

    for every base database D:
        eval(q, catalog.materialize(D)) == eval(unfold_query(q, catalog), D)

With that contract, checking ``unfold(candidate) ≡ Q`` through the
equivalence engine proves that substituting the candidate (evaluated over the
materialized views) for Q is safe over *every* database — the rewriting
criterion of the paper's motivating warehouse scenario.

Unfolding rules
===============

* A positive atom of a **non-aggregate view** is replaced by the view's body:
  head variables are substituted by the atom's arguments, hidden (non-head)
  variables are renamed fresh per occurrence, and a disjunctive view
  distributes (one output disjunct per combination of view disjuncts).  Under
  set semantics this is always faithful.  Under *aggregate* semantics a view
  that projects variables away collapses several satisfying assignments onto
  one stored row, so its unfolding multiplies assignments — but the
  multiplication never changes *which* (group, value) combinations occur,
  only how often.  Queries aggregating with a **duplicate-insensitive**
  function (``max``, ``min``, ``topK``/``botK``, ``cntd`` — the
  ``is_duplicate_insensitive`` trait of
  :class:`~repro.aggregates.functions.AggregationFunction`) therefore unfold
  faithfully through duplicating and disjunctive views alike; queries with a
  duplicate-sensitive aggregate (``count``, ``sum``, ``avg``, ``prod``,
  ``parity``) over such views are rejected.

* A positive atom of an **aggregate view** ``v(x̄, α(ȳ))`` carries the
  aggregate value in its last argument, the *output term* ``t``.  The query's
  own aggregate must *thread through* the view aggregate; the supported
  pairings and their unfoldings are

  ====================  =====================  ================================
  query aggregate       view aggregate         unfolded aggregate
  ====================  =====================  ================================
  ``sum(t)``            ``sum(y)``             ``sum(t)`` with ``y ↦ t``
  ``sum(t)``            ``count()``            ``count()``  (Σ of group counts)
  ``max(t)``            ``max(y)``             ``max(t)`` with ``y ↦ t``
  ``min(t)``            ``min(y)``             ``min(t)`` with ``y ↦ t``
  ``count()``           any aggregate          ``cntd(z̄)`` over the atom's
                                               non-grouping variables z̄
  ====================  =====================  ================================

  The first four are the multiplicity-threading identities (sum of group sums
  is the total sum, sum of group counts is the total count, max of group
  maxima is the total max); they are faithful because, for every fixed
  assignment of the remaining literals, the view atom contributes its group's
  *entire* bag — which requires the output term to be a variable occurring
  **nowhere else** in the query (a filter or join on a partial aggregate has
  no base-level counterpart).  The last row counts view rows: one row per
  group, so ``count()`` over an aggregate view is ``cntd`` of the group-key
  variables that are not grouping variables of the query; faithfulness
  additionally requires that the remaining literals introduce no variables of
  their own (each view row must join in at most one way).

Anything else — negated view atoms, joins on output terms, unsupported
aggregate pairings — raises :class:`~repro.errors.RewritingError` with a
message naming the violated condition.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from ..datalog.atoms import RelationalAtom
from ..datalog.conditions import Condition
from ..datalog.queries import AggregateTerm, Query
from ..datalog.terms import Term, Variable
from ..errors import MalformedQueryError, RewritingError, UnsafeQueryError
from .views import View, ViewCatalog

#: Aggregate pairings (query function, view function) threaded by unfolding,
#: mapped to the resulting function of the unfolded query.  ``count`` over an
#: aggregate view is handled separately (it rewrites to ``cntd``).
THREADED_PAIRINGS: dict[tuple[str, str], str] = {
    ("sum", "sum"): "sum",
    ("sum", "count"): "count",
    ("max", "max"): "max",
    ("min", "min"): "min",
}


def _tolerates_duplicates(query: Query) -> bool:
    """Whether the query's aggregate survives assignment multiplication.

    Unfolding a duplicating (or disjunctive) view preserves the *set* of
    satisfying assignments projected to the query's variables — only their
    multiplicities grow — so the per-group bag keeps its underlying set and
    every duplicate-insensitive function
    (:attr:`~repro.aggregates.functions.AggregationFunction.is_duplicate_insensitive`)
    keeps its value.  Duplicate-sensitive functions do not, and stay rejected.
    """
    from ..aggregates.functions import get_function

    assert query.aggregate is not None
    return get_function(query.aggregate.function).is_duplicate_insensitive


class _FreshNames:
    """Allocate variable names unused anywhere in the query being unfolded."""

    def __init__(self, taken: Iterable[str]):
        self._taken = set(taken)
        self._counter = itertools.count()

    def variable(self, hint: str = "v") -> Variable:
        while True:
            candidate = f"_{hint}{next(self._counter)}"
            if candidate not in self._taken:
                self._taken.add(candidate)
                return Variable(candidate)


def uses_views(query: Query, catalog: ViewCatalog) -> bool:
    """Whether the query mentions any view predicate of the catalog."""
    return any(predicate in catalog for predicate in query.predicates())


def unfold_query(query: Query, catalog: ViewCatalog) -> Query:
    """Unfold every view atom of ``query`` into base predicates (see the
    module docstring for the faithfulness rules).  Queries without view atoms
    are returned unchanged."""
    if not uses_views(query, catalog):
        return query
    fresh = _FreshNames(variable.name for variable in query.variables())
    disjuncts: list[Condition] = []
    aggregate: Optional[AggregateTerm] = query.aggregate
    aggregate_decided = False
    for index, disjunct in enumerate(query.disjuncts):
        expansions, disjunct_aggregate = _unfold_disjunct(query, index, disjunct, catalog, fresh)
        if query.is_aggregate:
            if not aggregate_decided:
                aggregate = disjunct_aggregate
                aggregate_decided = True
            elif disjunct_aggregate != aggregate:
                raise RewritingError(
                    f"disjuncts of {query.name!r} thread the aggregate through views "
                    f"inconsistently ({disjunct_aggregate} vs {aggregate}); every "
                    "disjunct must use the same pairing"
                )
        disjuncts.extend(expansions)
    try:
        return Query(query.name, query.head_terms, tuple(disjuncts), aggregate)
    except (MalformedQueryError, UnsafeQueryError) as error:
        # Safety net for the documented contract: any unfolding this module
        # fails to rule out explicitly still surfaces as a RewritingError.
        raise RewritingError(
            f"unfolding {query.name!r} produced a malformed query ({error}); "
            "the candidate is outside the faithful fragment"
        ) from error


def _unfold_disjunct(
    query: Query,
    disjunct_index: int,
    disjunct: Condition,
    catalog: ViewCatalog,
    fresh: _FreshNames,
) -> tuple[list[Condition], Optional[AggregateTerm]]:
    """Unfold one disjunct; returns the expanded disjuncts (a disjunctive view
    distributes) and the aggregate term of the unfolded query."""
    aggregate_atom: Optional[RelationalAtom] = None
    aggregate_view: Optional[View] = None
    #: Per original literal: a list of replacement literal tuples (choices).
    slots: list[list[tuple]] = []
    for literal in disjunct.literals:
        if not isinstance(literal, RelationalAtom) or literal.predicate not in catalog:
            slots.append([(literal,)])
            continue
        view = catalog[literal.predicate]
        if literal.negated:
            raise RewritingError(
                f"negated view atom not {literal.positive()} in {query.name!r}: the "
                "negation of a view body is outside the paper's query class"
            )
        if literal.arity != view.arity:
            raise RewritingError(
                f"view atom {literal} has arity {literal.arity}, but view "
                f"{view.name!r} stores {view.arity} columns"
            )
        if view.is_aggregate:
            if aggregate_atom is not None:
                raise RewritingError(
                    f"disjunct {disjunct_index} of {query.name!r} joins two aggregate "
                    "views; multiplicities cannot be threaded through both"
                )
            aggregate_atom, aggregate_view = literal, view
            slots.append([])  # placeholder, filled below
            continue
        if query.is_aggregate and view.is_duplicating and not _tolerates_duplicates(query):
            hidden = ", ".join(sorted(v.name for v in view.duplicating_variables()))
            raise RewritingError(
                f"aggregate query {query.name!r} uses duplicating view {view.name!r} "
                f"(hidden variables: {hidden}); unfolding would multiply assignments, "
                f"which is unsound for the duplicate-sensitive "
                f"{query.aggregate.function} (only duplicate-insensitive functions "
                "— max, min, topK, cntd — thread through duplicating views)"
            )
        if (
            query.is_aggregate
            and len(view.query.disjuncts) > 1
            and not _tolerates_duplicates(query)
        ):
            # Γ counts an assignment once per disjunct it satisfies, but the
            # stored view relation is the plain set-union of the disjuncts:
            # overlapping disjuncts collapse, so unfolding (which resurrects
            # the per-disjunct labels) is not faithful under a
            # duplicate-sensitive aggregate.
            raise RewritingError(
                f"aggregate query {query.name!r} uses disjunctive view {view.name!r}; "
                "the stored union loses per-disjunct multiplicities of overlapping "
                f"disjuncts, so the unfolding would over-count under the "
                f"duplicate-sensitive {query.aggregate.function} (only "
                "duplicate-insensitive functions — max, min, topK, cntd — "
                "thread through disjunctive views)"
            )
        slots.append(
            [_instantiate_view_disjunct(view, body, literal.arguments, fresh)
             for body in view.query.disjuncts]
        )

    aggregate = query.aggregate
    if aggregate_atom is not None:
        assert aggregate_view is not None
        replacement, aggregate = _thread_aggregate(
            query, disjunct, aggregate_atom, aggregate_view, fresh
        )
        slot_index = list(disjunct.literals).index(aggregate_atom)
        slots[slot_index] = [replacement]

    expanded: list[Condition] = []
    for choice in itertools.product(*slots):
        literals = tuple(literal for group in choice for literal in group)
        expanded.append(Condition(literals))
    return expanded, aggregate


def _instantiate_view_disjunct(
    view: View,
    body: Condition,
    arguments: tuple[Term, ...],
    fresh: _FreshNames,
    extra: Optional[dict[Variable, Term]] = None,
) -> tuple:
    """One choice of view-body literals: head variables substituted by the
    atom's arguments, hidden variables renamed fresh (capture avoidance)."""
    mapping: dict[Variable, Term] = dict(zip(view.head_variables, arguments))
    if extra:
        mapping.update(extra)
    for variable in sorted(body.variables(), key=lambda v: v.name):
        if variable not in mapping:
            mapping[variable] = fresh.variable(variable.name.lstrip("_"))
    return tuple(literal.substitute(mapping) for literal in body.literals)


def _thread_aggregate(
    query: Query,
    disjunct: Condition,
    atom: RelationalAtom,
    view: View,
    fresh: _FreshNames,
) -> tuple[tuple, Optional[AggregateTerm]]:
    """Unfold the (single) aggregate-view atom of a disjunct; returns the
    replacement literals and the aggregate term of the unfolded query."""
    if not query.is_aggregate:
        raise RewritingError(
            f"non-aggregate query {query.name!r} reads the aggregate column of view "
            f"{view.name!r}; a group's aggregate value has no base-level counterpart "
            "outside an aggregate head"
        )
    output = atom.arguments[-1]
    grouping_args = atom.arguments[:-1]
    if not isinstance(output, Variable):
        raise RewritingError(
            f"the output column of {atom} must be read into a variable, not {output}"
        )
    occurrences = _occurrences(disjunct, output) - 1  # outside this atom's last slot
    if output in grouping_args:
        raise RewritingError(
            f"view atom {atom} equates its output column with a grouping column; "
            "the partial aggregate would constrain its own group key"
        )
    if output in query.head_terms:
        raise RewritingError(
            f"query {query.name!r} exports the partial-aggregate column {output} of "
            f"view {view.name!r} in its head; a group's aggregate value has no "
            "base-level counterpart outside an aggregate head"
        )
    if occurrences:
        raise RewritingError(
            f"output variable {output} of {atom} is joined or filtered elsewhere in "
            f"{query.name!r}; conditions on partial aggregates cannot be unfolded"
        )

    query_function = query.aggregate.function
    view_function = view.query.aggregate.function
    view_aggregation = view.query.aggregation_variables()

    if query_function == "count":
        return _thread_count_over_groups(query, disjunct, atom, view, fresh)

    threaded = THREADED_PAIRINGS.get((query_function, view_function))
    if threaded is None:
        raise RewritingError(
            f"unsupported aggregate pairing: {query_function} over the "
            f"{view_function} column of view {view.name!r}"
        )
    if query.aggregation_variables() != (output,):
        raise RewritingError(
            f"{query_function}({', '.join(str(v) for v in query.aggregation_variables())}) "
            f"must aggregate exactly the output variable {output} of {atom}"
        )
    if len(view.query.disjuncts) != 1:
        raise RewritingError(
            f"aggregate view {view.name!r} has a disjunctive body; threading "
            "multiplicities through a union of groupings is not supported"
        )
    extra: dict[Variable, Term] = {}
    if view_function != "count":
        # sum/sum, max/max, min/min: the view's aggregation variable becomes
        # the query's — each group contributes its entire bag.
        extra[view_aggregation[0]] = output
    aggregate = AggregateTerm(threaded, (output,) if threaded != "count" else ())
    replacement = _instantiate_view_disjunct(
        view, view.query.disjuncts[0], grouping_args, fresh, extra
    )
    return replacement, aggregate


def _thread_count_over_groups(
    query: Query,
    disjunct: Condition,
    atom: RelationalAtom,
    view: View,
    fresh: _FreshNames,
) -> tuple[tuple, Optional[AggregateTerm]]:
    """``count()`` over an aggregate view counts the view's rows — one per
    group — which unfolds to ``cntd`` of the atom's non-grouping variables."""
    if len(view.query.disjuncts) != 1:
        raise RewritingError(
            f"aggregate view {view.name!r} has a disjunctive body; threading "
            "multiplicities through a union of groupings is not supported"
        )
    grouping_args = atom.arguments[:-1]
    query_grouping = query.grouping_variables()
    extras: list[Variable] = []
    for argument in grouping_args:
        if isinstance(argument, Variable) and argument not in query_grouping:
            if argument not in extras:
                extras.append(argument)
    if not extras:
        raise RewritingError(
            f"count() over {atom} counts at most one row per group key; no "
            "group-identifying variable is left to count distinctly"
        )
    allowed = query_grouping | set(grouping_args) | {atom.arguments[-1]}
    for literal in disjunct.literals:
        if literal is atom:
            continue
        leaked = literal.variables() - allowed
        if leaked:
            names = ", ".join(sorted(v.name for v in leaked))
            raise RewritingError(
                f"count() over aggregate view {view.name!r} requires the remaining "
                f"literals to introduce no variables of their own (found: {names}); "
                "extra joins would multiply view rows"
            )
    aggregate = AggregateTerm("cntd", tuple(sorted(extras, key=lambda v: v.name)))
    replacement = _instantiate_view_disjunct(
        view, view.query.disjuncts[0], grouping_args, fresh
    )
    return replacement, aggregate


def _occurrences(disjunct: Condition, variable: Variable) -> int:
    """How many argument/operand slots of the disjunct hold ``variable``."""
    count = 0
    for literal in disjunct.literals:
        if isinstance(literal, RelationalAtom):
            count += sum(1 for argument in literal.arguments if argument == variable)
        else:
            count += sum(1 for operand in (literal.left, literal.right) if operand == variable)
    return count
