"""Work decomposition for the parallel decision subsystem.

The decision procedures factor into independent, picklable check tasks:

* :class:`BoundedCheckTask` — a shard of the bounded-equivalence search: a
  chunk of orbit-canonical subsets of BASE (as index tuples into the
  canonically ordered BASE), checked against every ordering class.  Workers
  rebuild the run state (BASE, orderings, aggregation function) locally and
  memoize it per process, so tasks stay small on the wire.
* :class:`PairCheckTask` — one (name_a, name_b) cell of an equivalence
  matrix, dispatched through :func:`repro.core.equivalence.are_equivalent`
  with a :class:`~repro.core.bounded.SharedBaseContext` so the symbolic
  engine's Γ(q, S_L) memoization is reused across every pair that shares a
  query (per worker process).

Outcomes carry global positions, so merging is deterministic: the verdict
never depends on worker scheduling, and when several shards report
counterexamples the one at the smallest (subset, ordering) position wins.
(Under early-exit cancellation the set of *reporting* shards can depend on
timing, so the chosen witness — always valid — may vary between runs; pair
tasks have no early exit and are fully reproducible.)
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from ..core.bounded import (
    BoundedRunSetup,
    CheckStats,
    Counterexample,
    EquivalenceReport,
    SharedBaseContext,
    SweepRunSetup,
    check_subset,
    check_subset_sweep,
    prepare_bounded_run,
    prepare_sweep_run,
)
from ..caches import register_cache
from ..core.equivalence import EquivalenceResult, Verdict, are_equivalent
from ..datalog.queries import Query
from ..datalog.terms import Constant
from ..domains import Domain
from ..engine.modes import DEFAULT_ENGINE, active_engine, engine_scope
from ..obs import REGISTRY as _OBS
from ..obs import span as _span
from .executor import Executor, cancellation_requested, in_worker, resolve_executor

# ----------------------------------------------------------------------
# Bounded-equivalence shards
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BoundedCheckTask:
    """A picklable shard of a bounded-equivalence search.

    ``chunk`` holds ``(position, subset_indices)`` pairs; positions are global
    ranks in the canonical enumeration order and index tuples refer to the
    canonically (str-)sorted BASE, which the worker re-derives.
    """

    index: int
    first: Query
    second: Query
    bound: int
    domain: Domain
    semantics: str
    extra_constants: tuple[Constant, ...]
    seed: int
    chunk: tuple[tuple[int, tuple[int, ...]], ...]
    #: The evaluation engine the parent had active when the task was built;
    #: the runner restores it around the shard so spawn-started workers (which
    #: re-read ``REPRO_ENGINE`` at import) still decide under the same engine.
    #: Deliberately absent from ``_setup_key``: setups hold engine-neutral
    #: state (BASE, orderings), so shards of differing engines may share one.
    engine: str = DEFAULT_ENGINE

    def _setup_key(self) -> tuple:
        return (
            self.first,
            self.second,
            self.bound,
            self.domain,
            self.semantics,
            self.extra_constants,
        )


@dataclass
class BoundedCheckOutcome:
    """The result of one shard: merged statistics plus, when the shard found
    a counterexample, its global ``(subset_position, ordering_position)``."""

    task_index: int
    stats: CheckStats
    found: Optional[tuple[tuple[int, int], Counterexample]] = None
    cancelled: bool = False
    #: The worker-side metrics-registry delta for this task (``None`` when the
    #: task ran in the parent process); see :func:`absorb_worker_metrics`.
    metrics: Optional[dict] = None


def capture_worker_metrics() -> Optional[dict]:
    """A pre-task registry snapshot — but only inside a pool worker.

    In the parent (serial executors, warm prefixes) the task's counters land
    in the parent registry directly, so capturing a delta there would double
    count; ``None`` marks that case.
    """
    return _OBS.snapshot() if in_worker() else None


def attach_worker_metrics(outcome, before: Optional[dict]):
    """Attach the registry delta since ``before`` to a task outcome."""
    if before is not None:
        outcome.metrics = _OBS.diff(before) or None
    return outcome


def absorb_worker_metrics(outcomes: Iterable) -> None:
    """Fold worker-shipped counter deltas into the parent registry under the
    ``worker.`` scope.

    Deterministic by construction: deltas are added counter-wise and integer
    addition commutes, so the merged totals are independent of worker
    scheduling and of which worker ran which task.
    """
    for outcome in outcomes:
        delta = getattr(outcome, "metrics", None)
        if delta:
            _OBS.merge(delta, prefix="worker.")


#: Per-process memo of run setups (bounded pairs and catalog sweeps share
#: it, disambiguated by a type tag in the key), so a worker prepares BASE and
#: the ordering classes once per (pair/catalog, bound) no matter how many
#: shards it executes.  Setups are heavy (materialized BASE + orderings), so
#: the memo is capped: on overflow the oldest entries are evicted (dicts
#: iterate insertion-first).
_SETUP_MEMO: dict[tuple, object] = {}
_SETUP_MEMO_LIMIT = 64


def clear_setup_memo() -> None:
    """Drop every memoized run setup and reset its build/hit counters.

    Registered under ``clear_evaluation_caches``: the setups hold
    materialized BASEs and ordering classes keyed by query identity, so any
    reset that drops the evaluation caches must drop them too — a stale
    setup surviving into a reused process is exactly the leak the
    cache-discipline checker exists to prevent.
    """
    _SETUP_MEMO.clear()
    _OBS.reset("parallel.setup.")


register_cache("parallel/tasks.py:_SETUP_MEMO", "clear_evaluation_caches", clear_setup_memo)


def _memoized_setup(key: tuple, build):
    setup = _SETUP_MEMO.get(key)
    if setup is None:
        _OBS.inc("parallel.setup.builds")
        setup = build()
        if len(_SETUP_MEMO) >= _SETUP_MEMO_LIMIT:
            for stale in list(_SETUP_MEMO)[: _SETUP_MEMO_LIMIT // 4]:
                del _SETUP_MEMO[stale]
        _SETUP_MEMO[key] = setup
    else:
        _OBS.inc("parallel.setup.hits")
    return setup


def _setup_for(task: BoundedCheckTask) -> BoundedRunSetup:
    return _memoized_setup(
        ("bounded",) + task._setup_key(),
        lambda: prepare_bounded_run(
            task.first, task.second, task.bound, task.domain, task.semantics, task.extra_constants
        ),
    )


def run_bounded_check_task(task: BoundedCheckTask) -> BoundedCheckOutcome:
    """Execute one shard; stops early on the first counterexample or when the
    pool's cancellation event fires."""
    before = capture_worker_metrics()
    with engine_scope(task.engine):
        outcome = _bounded_check_outcome(task)
    return attach_worker_metrics(outcome, before)


def _bounded_check_outcome(task: BoundedCheckTask) -> BoundedCheckOutcome:
    setup = _setup_for(task)
    stats = CheckStats()
    base = setup.base
    for position, indices in task.chunk:
        if cancellation_requested():
            return BoundedCheckOutcome(task.index, stats, cancelled=True)
        stats.subsets_examined += 1
        hit = check_subset(setup, frozenset(base[i] for i in indices), stats, task.seed)
        if hit is not None:
            return BoundedCheckOutcome(task.index, stats, ((position, hit[0]), hit[1]))
    return BoundedCheckOutcome(task.index, stats)


def bounded_check_tasks(
    first: Query,
    second: Query,
    bound: int,
    domain: Domain,
    semantics: str,
    extra_constants: tuple[Constant, ...],
    subsets: Sequence[tuple[int, ...]],
    shards: int,
    seed: int = 0,
) -> list[BoundedCheckTask]:
    """Split an enumerated subset stream into round-robin shards.

    Subsets arrive in (size, lex) order, so round-robin interleaving gives
    every shard the same size profile — the cheap small subsets and the
    expensive large ones are spread evenly.
    """
    shards = max(1, min(shards, len(subsets))) if subsets else 1
    chunks: list[list[tuple[int, tuple[int, ...]]]] = [[] for _ in range(shards)]
    for position, indices in enumerate(subsets):
        chunks[position % shards].append((position, indices))
    return [
        BoundedCheckTask(
            index=index,
            first=first,
            second=second,
            bound=bound,
            domain=domain,
            semantics=semantics,
            extra_constants=extra_constants,
            seed=seed,
            chunk=tuple(chunk),
            engine=active_engine(),
        )
        for index, chunk in enumerate(chunks)
        if chunk
    ]


def merge_bounded_outcomes(
    report: EquivalenceReport, outcomes: Sequence[BoundedCheckOutcome]
) -> EquivalenceReport:
    """Deterministically fold shard outcomes into the report: statistics are
    summed and the counterexample at the smallest global position wins."""
    best: Optional[tuple[tuple[int, int], Counterexample]] = None
    cancelled = 0
    absorb_worker_metrics(outcomes)
    for outcome in outcomes:
        outcome.stats.merge_into(report)
        if outcome.cancelled:
            cancelled += 1
        if outcome.found is not None and (best is None or outcome.found[0] < best[0]):
            best = outcome.found
    if best is not None:
        report.equivalent = False
        report.counterexample = best[1]
    if cancelled:
        report.notes.append(
            f"{cancelled} shard(s) cancelled after the first counterexample; "
            "statistics cover the work actually performed"
        )
    return report


def parallel_bounded_search(
    *,
    first: Query,
    second: Query,
    bound: int,
    domain: Domain,
    semantics: str,
    extra_constants: tuple[Constant, ...],
    subsets: Sequence[tuple[int, ...]],
    report: EquivalenceReport,
    workers: Optional[int],
    executor: Optional[Executor],
    seed: int,
) -> EquivalenceReport:
    """Shard an enumerated bounded-equivalence search across an executor and
    merge the outcomes (called by :func:`repro.core.bounded.bounded_equivalence`
    once it has validated the pair and enumerated the canonical subsets)."""
    executor = resolve_executor(workers, executor)
    shard_count = max(1, getattr(executor, "workers", 1)) * 4
    tasks = bounded_check_tasks(
        first, second, bound, domain, semantics, extra_constants, subsets, shard_count, seed
    )
    with _span("bounded.enumerate.parallel", shards=len(tasks)):
        outcomes = executor.run(
            run_bounded_check_task, tasks, stop=lambda outcome: outcome.found is not None
        )
    report.workers_used = getattr(executor, "workers", 1)
    report.notes.append(
        f"parallel search: {len(tasks)} shard(s) over {report.workers_used} worker(s)"
    )
    return merge_bounded_outcomes(report, outcomes)


# ----------------------------------------------------------------------
# Catalog-sweep shards
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepCheckTask:
    """A picklable shard of a single-sweep catalog search.

    A shard owns a slice of the (subset, ordering-class) grid for the whole
    sub-catalog: ``chunk`` holds ``(position, subset_indices)`` rows, and the
    worker checks every ordering class (and every still-open pair) against
    each row.  Workers rebuild the sweep setup (BASE, ordering classes,
    aggregation function) locally and memoize it per process — when the pool
    was forked after the parent's warm prefix, they also inherit the already
    populated shared Γ / comparison caches copy-on-write.
    """

    index: int
    queries: tuple[tuple[str, Query], ...]
    pairs: tuple[tuple[str, str], ...]
    bound: int
    domain: Domain
    semantics: str
    extra_constants: tuple[Constant, ...]
    seed: Optional[int]
    chunk: tuple[tuple[int, tuple[int, ...]], ...]
    #: Engine captured at build time; restored by the runner (see
    #: :class:`BoundedCheckTask`).
    engine: str = DEFAULT_ENGINE

    def _setup_key(self) -> tuple:
        return (
            self.queries,
            self.bound,
            self.domain,
            self.semantics,
            self.extra_constants,
        )


@dataclass
class SweepCheckOutcome:
    """The result of one sweep shard: merged statistics plus, for every pair
    the shard saw fail, its first failure at a global
    ``(subset_position, ordering_position)``."""

    task_index: int
    stats: CheckStats
    found: tuple[tuple[tuple[str, str], tuple[int, int], Counterexample], ...] = ()
    cancelled: bool = False
    #: Worker-side registry delta (``None`` when run in the parent); see
    #: :func:`absorb_worker_metrics`.
    metrics: Optional[dict] = None


def _sweep_setup_for(task: "SweepCheckTask | SweepRangeCheckTask") -> SweepRunSetup:
    return _memoized_setup(
        ("sweep",) + task._setup_key(),
        lambda: prepare_sweep_run(
            dict(task.queries), task.bound, task.domain, task.semantics, task.extra_constants
        ),
    )


def _sweep_range_rows(
    task: "SweepRangeCheckTask",
) -> "Iterator[tuple[int, tuple[int, ...]]]":
    """The positioned subset rows a range shard owns, re-enumerated locally.

    The canonical enumeration is a pure function of the setup (str-sorted
    BASE, orderly generation), so every worker derives exactly the stream the
    parent numbered — the whole point of shipping ``(start, count)`` ranges
    instead of materialized subset rows.  The stream is *not* materialized:
    one pass yields only the positions inside the shard's (ascending) ranges
    and stops after the last of them, keeping worker memory O(1) in the
    stream length instead of trading the O(subsets) pickle for O(subsets)
    RSS per process.
    """
    from ..core.bounded import CanonicalSubsetEnumerator

    setup = _sweep_setup_for(task)
    spans = iter(task.ranges)
    span = next(spans, None)
    last_needed = task.ranges[-1][0] + task.ranges[-1][1] - 1 if task.ranges else -1
    for position, indices in enumerate(CanonicalSubsetEnumerator(setup.base, setup.fresh)):
        if position > last_needed or span is None:
            return
        while span is not None and position >= span[0] + span[1]:
            span = next(spans, None)
        if span is not None and span[0] <= position:
            yield position, indices


def _run_sweep_rows(
    task: "SweepCheckTask | SweepRangeCheckTask",
    rows: "Iterable[tuple[int, tuple[int, ...]]]",
) -> SweepCheckOutcome:
    """The shared shard loop: check positioned subset rows until every
    assigned pair failed locally or the pool's cancellation event fires."""
    setup = _sweep_setup_for(task)
    stats = CheckStats()
    pair_seeds = {
        pair: derive_pair_seed(task.seed, pair[0], pair[1]) or 0 for pair in task.pairs
    }
    open_pairs = list(task.pairs)
    found: list[tuple[tuple[str, str], tuple[int, int], Counterexample]] = []
    base = setup.base
    for position, indices in rows:
        if not open_pairs:
            break
        if cancellation_requested():
            return SweepCheckOutcome(task.index, stats, tuple(found), cancelled=True)
        stats.subsets_examined += 1
        hits = check_subset_sweep(
            setup, frozenset(base[i] for i in indices), open_pairs, stats, pair_seeds
        )
        for pair, ordering_position, counterexample in hits:
            found.append((pair, (position, ordering_position), counterexample))
            open_pairs.remove(pair)
    return SweepCheckOutcome(task.index, stats, tuple(found))


def run_sweep_check_task(task: SweepCheckTask) -> SweepCheckOutcome:
    """Execute one row-shipping sweep shard."""
    before = capture_worker_metrics()
    with engine_scope(task.engine):
        outcome = _run_sweep_rows(task, task.chunk)
    return attach_worker_metrics(outcome, before)


# ----------------------------------------------------------------------
# Range-shipping sweep shards
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepRangeCheckTask:
    """A sweep shard described by ``(start, count)`` ranges of the canonical
    enumeration instead of materialized subset rows.

    Workers re-derive the subset stream locally in one streaming pass
    (:func:`_sweep_range_rows`), so the pickle carries a handful of integers
    per shard where a :class:`SweepCheckTask` carries every subset's index
    tuple — for huge BASEs the difference is the whole task payload.  The
    trade is redundant enumeration (each worker walks the stream up to its
    last assigned position), so range mode builds exactly one shard per
    worker with finer-grained blocks inside; ranges are assigned
    block-cyclically, preserving the round-robin size-profile balance of the
    row-shipping path at block granularity.
    """

    index: int
    queries: tuple[tuple[str, Query], ...]
    pairs: tuple[tuple[str, str], ...]
    bound: int
    domain: Domain
    semantics: str
    extra_constants: tuple[Constant, ...]
    seed: Optional[int]
    ranges: tuple[tuple[int, int], ...]
    #: Engine captured at build time; restored by the runner (see
    #: :class:`BoundedCheckTask`).
    engine: str = DEFAULT_ENGINE

    def _setup_key(self) -> tuple:
        return (
            self.queries,
            self.bound,
            self.domain,
            self.semantics,
            self.extra_constants,
        )


def run_sweep_range_task(task: SweepRangeCheckTask) -> SweepCheckOutcome:
    """Execute one range shard: re-enumerate the canonical stream locally and
    check the positions the ranges select."""
    before = capture_worker_metrics()
    with engine_scope(task.engine):
        outcome = _run_sweep_rows(task, _sweep_range_rows(task))
    return attach_worker_metrics(outcome, before)


def block_cyclic_ranges(
    start: int, count: int, shards: int, blocks_per_shard: int = 16
) -> list[tuple[tuple[int, int], ...]]:
    """Partition ``[start, start + count)`` into per-shard ``(start, count)``
    range tuples: the span is cut into ``shards * blocks_per_shard`` blocks
    dealt round-robin, so every shard sees the same mix of cheap (small,
    early) and expensive (large, late) subsets at block granularity."""
    if count <= 0 or shards <= 0:
        return []
    shards = min(shards, count)
    block_count = min(count, shards * max(1, blocks_per_shard))
    size, remainder = divmod(count, block_count)
    ranges: list[list[tuple[int, int]]] = [[] for _ in range(shards)]
    position = start
    for block in range(block_count):
        length = size + (1 if block < remainder else 0)
        ranges[block % shards].append((position, length))
        position += length
    return [tuple(blocks) for blocks in ranges if blocks]


def sweep_range_tasks(
    queries: tuple[tuple[str, Query], ...],
    pairs: tuple[tuple[str, str], ...],
    bound: int,
    domain: Domain,
    semantics: str,
    extra_constants: tuple[Constant, ...],
    start: int,
    count: int,
    shards: int,
    seed: Optional[int] = None,
) -> list[SweepRangeCheckTask]:
    """Build range shards covering positions ``[start, start + count)``."""
    return [
        SweepRangeCheckTask(
            index=index,
            queries=queries,
            pairs=pairs,
            bound=bound,
            domain=domain,
            semantics=semantics,
            extra_constants=extra_constants,
            seed=seed,
            ranges=ranges,
            engine=active_engine(),
        )
        for index, ranges in enumerate(block_cyclic_ranges(start, count, shards))
    ]


def sweep_check_tasks(
    queries: tuple[tuple[str, Query], ...],
    pairs: tuple[tuple[str, str], ...],
    bound: int,
    domain: Domain,
    semantics: str,
    extra_constants: tuple[Constant, ...],
    subsets: Sequence[tuple[int, tuple[int, ...]]],
    shards: int,
    seed: Optional[int] = None,
) -> list[SweepCheckTask]:
    """Split a positioned subset stream into round-robin sweep shards (same
    size-profile balancing as :func:`bounded_check_tasks`)."""
    shards = max(1, min(shards, len(subsets))) if subsets else 1
    chunks: list[list[tuple[int, tuple[int, ...]]]] = [[] for _ in range(shards)]
    for offset, positioned in enumerate(subsets):
        chunks[offset % shards].append(positioned)
    return [
        SweepCheckTask(
            index=index,
            queries=queries,
            pairs=pairs,
            bound=bound,
            domain=domain,
            semantics=semantics,
            extra_constants=extra_constants,
            seed=seed,
            chunk=tuple(chunk),
            engine=active_engine(),
        )
        for index, chunk in enumerate(chunks)
        if chunk
    ]


#: How sweep shards receive their share of the subset stream.
SHIP_RANGES = "ranges"  # (start, count) ranges + per-worker re-enumeration
SHIP_ROWS = "rows"  # materialized subset index tuples (the PR 3 path)


def parallel_sweep_search(
    *,
    queries: tuple[tuple[str, Query], ...],
    pairs: tuple[tuple[str, str], ...],
    bound: int,
    domain: Domain,
    semantics: str,
    extra_constants: tuple[Constant, ...],
    subsets: Sequence[tuple[int, tuple[int, ...]]],
    reports: "dict[tuple[str, str], EquivalenceReport]",
    stats: CheckStats,
    workers: Optional[int],
    executor: Optional[Executor],
    seed: Optional[int],
    ship: str = SHIP_RANGES,
) -> None:
    """Shard a single-sweep catalog search across an executor and fold the
    outcomes into the per-pair reports (called by
    :func:`repro.core.bounded.sweep_equivalence` after the warm prefix).

    ``ship`` selects the shard payload: ``"ranges"`` (default) ships
    ``(start, count)`` positions and lets every worker re-enumerate the
    canonical stream locally — the pickle stays O(shards) however large BASE
    grows; ``"rows"`` ships the materialized subset index tuples (kept as the
    differential reference).  Both decompose the identical positioned stream,
    so their merges are interchangeable.

    The merge is deterministic: for every pair the counterexample at the
    smallest global (subset, ordering) position wins, so verdicts never
    depend on worker scheduling.  Cancellation fires only once *every* pair
    has a settled failure, so pairs left standing really survived the whole
    enumeration.
    """
    executor = resolve_executor(workers, executor)
    pool_size = max(1, getattr(executor, "workers", 1))
    if ship == SHIP_RANGES:
        # The stream handed over is a contiguous positioned suffix (the warm
        # prefix was consumed by the parent), so ranges describe it exactly.
        # One shard per worker: a range worker re-enumerates the stream up to
        # its last assigned position, so extra shards would multiply that
        # redundant enumeration; load balance comes from the finer
        # block-cyclic blocks inside each shard instead.
        start = subsets[0][0] if subsets else 0
        tasks = sweep_range_tasks(
            queries, pairs, bound, domain, semantics, extra_constants,
            start, len(subsets), pool_size, seed,
        )
        run = run_sweep_range_task
    elif ship == SHIP_ROWS:
        tasks = sweep_check_tasks(
            queries, pairs, bound, domain, semantics, extra_constants, subsets,
            pool_size * 4, seed,
        )
        run = run_sweep_check_task
    else:
        raise ValueError(f"unknown sweep shipping mode {ship!r}")
    remaining = set(pairs)

    def all_settled(outcome: SweepCheckOutcome) -> bool:
        for pair, _position, _counterexample in outcome.found:
            remaining.discard(pair)
        return not remaining

    with _span("sweep.enumerate.parallel", shards=len(tasks), ship=ship):
        outcomes = executor.run(run, tasks, stop=all_settled)
    best: dict[tuple[str, str], tuple[tuple[int, int], Counterexample]] = {}
    cancelled = 0
    absorb_worker_metrics(outcomes)
    for outcome in outcomes:
        stats.merge(outcome.stats)
        if outcome.cancelled:
            cancelled += 1
        for pair, position, counterexample in outcome.found:
            known = best.get(pair)
            if known is None or position < known[0]:
                best[pair] = (position, counterexample)
    for pair, (_position, counterexample) in best.items():
        report = reports[pair]
        report.equivalent = False
        report.counterexample = counterexample
    workers_used = getattr(executor, "workers", 1)
    for report in reports.values():
        report.workers_used = workers_used
        report.notes.append(
            f"parallel sweep: {len(tasks)} shard(s) over {workers_used} worker(s)"
            + (f", {cancelled} cancelled after full settlement" if cancelled else "")
        )


# ----------------------------------------------------------------------
# Equivalence-matrix shards
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PairCheckTask:
    """One cell of an equivalence matrix, with everything the dispatcher
    needs (picklable)."""

    index: int
    name_a: str
    name_b: str
    first: Query
    second: Query
    domain: Domain
    counterexample_trials: int
    max_subsets: int
    unknown_bound: Optional[int]
    normalize: bool
    seed: Optional[int]
    context: Optional[SharedBaseContext]
    #: Engine captured at build time; restored by the runner (see
    #: :class:`BoundedCheckTask`).
    engine: str = DEFAULT_ENGINE


@dataclass
class PairOutcome:
    task_index: int
    name_a: str
    name_b: str
    result: EquivalenceResult
    #: Worker-side registry delta (``None`` when run in the parent); see
    #: :func:`absorb_worker_metrics`.
    metrics: Optional[dict] = None


def derive_pair_seed(seed: Optional[int], name_a: str, name_b: str) -> Optional[int]:
    """A deterministic per-pair seed (stable across runs and processes, unlike
    the salted builtin ``hash``)."""
    if seed is None:
        return None
    return zlib.crc32(f"{seed}:{name_a}:{name_b}".encode())


def run_pair_task(task: PairCheckTask) -> PairOutcome:
    """Decide one matrix cell.  Pairs mixing an aggregate with a non-aggregate
    query are recorded as ``incomparable shapes`` rather than raising, so one
    odd catalog entry does not abort the sweep."""
    before = capture_worker_metrics()
    if task.first.is_aggregate != task.second.is_aggregate:
        # repro: allow[verdict-soundness] -- the shape mismatch itself is the witness: an aggregate and a non-aggregate query differ on result type over every database
        result = EquivalenceResult(
            Verdict.NOT_EQUIVALENT,
            method="incomparable shapes",
            domain=task.domain,
            details="one query is aggregate and the other is not",
        )
    else:
        with engine_scope(task.engine):
            result = are_equivalent(
                task.first,
                task.second,
                domain=task.domain,
                counterexample_trials=task.counterexample_trials,
                max_subsets=task.max_subsets,
                unknown_bound=task.unknown_bound,
                normalize=task.normalize,
                seed=derive_pair_seed(task.seed, task.name_a, task.name_b),
                context=task.context,
            )
    return attach_worker_metrics(
        PairOutcome(task.index, task.name_a, task.name_b, result), before
    )


def pair_check_tasks(
    queries: Mapping[str, Query],
    *,
    domain: Domain,
    counterexample_trials: int,
    max_subsets: int,
    unknown_bound: Optional[int],
    normalize: bool,
    seed: Optional[int],
    context: Optional[SharedBaseContext],
    pairs: Optional[Sequence[tuple[str, str]]] = None,
) -> list[PairCheckTask]:
    """One task per unordered pair of catalog queries (``name_a < name_b``).

    ``pairs`` restricts the tasks to the given cells (used by the sweep
    planner for the cells no sweep group owns); ``None`` means every
    unordered pair.
    """
    if pairs is None:
        names = sorted(queries)
        pairs = [
            (name_a, name_b)
            for position, name_a in enumerate(names)
            for name_b in names[position + 1 :]
        ]
    tasks: list[PairCheckTask] = []
    for name_a, name_b in pairs:
        tasks.append(
            PairCheckTask(
                index=len(tasks),
                name_a=name_a,
                name_b=name_b,
                first=queries[name_a],
                second=queries[name_b],
                domain=domain,
                counterexample_trials=counterexample_trials,
                max_subsets=max_subsets,
                unknown_bound=unknown_bound,
                normalize=normalize,
                seed=seed,
                context=context,
                engine=active_engine(),
            )
        )
    return tasks
