"""Pluggable executors for the parallel decision subsystem.

Two interchangeable executors run the picklable check tasks built by
:mod:`repro.parallel.tasks`:

* :class:`SerialExecutor` — runs tasks in order in the current process; the
  reference implementation the differential tests compare against.
* :class:`ProcessExecutor` — a ``multiprocessing`` pool with chunked
  dispatch, early exit on the first counterexample via a shared cancellation
  event, and a guard against nested pools (a worker that itself calls a
  parallel entry point degrades to serial execution).

Both executors return the full list of task outcomes; *merging* those
outcomes into a verdict is the caller's job and is deterministic: outcomes
carry global positions and the merge picks the minimum, so the verdict never
depends on worker scheduling, and every reported witness is valid.  Under
early exit the *set* of shards that get to report a witness can depend on
timing (a cancelled shard may not have reached its counterexample yet), so
the particular witness chosen may differ between runs — only runs without
cancellation (all equivalent pairs, and any run through SerialExecutor) are
bit-for-bit reproducible.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, Optional, Protocol, Sequence

#: Environment variable read by :func:`default_workers`; CI legs set it to
#: exercise the parallel paths across the whole test suite.
WORKERS_ENV = "REPRO_WORKERS"

#: Set in pool workers: nested parallel entry points degrade to serial.
_IN_WORKER = False

#: The shared cancellation event of the current pool (worker side).
_CANCEL_EVENT = None


def available_cores() -> int:
    """The number of cores this process may actually run on (scheduling
    affinity where the platform exposes it — containers often pin fewer cores
    than ``os.cpu_count`` reports)."""
    getter = getattr(os, "sched_getaffinity", None)
    if getter is not None:
        try:
            return max(1, len(getter(0)))
        except OSError:
            pass
    return max(1, os.cpu_count() or 1)


def default_workers() -> int:
    """The worker count used when callers pass ``workers=None``: the value of
    ``REPRO_WORKERS`` (default 1, i.e. serial).

    A malformed value (``REPRO_WORKERS=two``) falls back to serial, but not
    silently: a :class:`RuntimeWarning` names the bad value, so a typo in a
    CI matrix or a deployment manifest cannot quietly disable the parallel
    subsystem.
    """
    raw = os.environ.get(WORKERS_ENV)
    if raw is None:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        import warnings

        warnings.warn(
            f"ignoring malformed {WORKERS_ENV}={raw!r} (expected an integer); "
            "falling back to serial execution",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1


def in_worker() -> bool:
    """Whether the current process is a pool worker (nested parallelism is
    suppressed to avoid fork bombs)."""
    return _IN_WORKER


def cancellation_requested() -> bool:
    """Whether the pool's shared cancellation event is set (always ``False``
    in serial runs, where early exit happens in the dispatch loop)."""
    return _CANCEL_EVENT is not None and _CANCEL_EVENT.is_set()


def _initialize_worker(event) -> None:
    global _IN_WORKER, _CANCEL_EVENT
    _IN_WORKER = True
    _CANCEL_EVENT = event


class Executor(Protocol):
    """The executor interface: run ``worker`` over ``tasks``, optionally
    stopping early once ``stop`` accepts an outcome."""

    workers: int

    def run(
        self,
        worker: Callable,
        tasks: Sequence,
        stop: Optional[Callable[[object], bool]] = None,
    ) -> list: ...


class SerialExecutor:
    """Run every task in order in the current process."""

    workers = 1

    def run(
        self,
        worker: Callable,
        tasks: Sequence,
        stop: Optional[Callable[[object], bool]] = None,
    ) -> list:
        outcomes = []
        for task in tasks:
            outcome = worker(task)
            outcomes.append(outcome)
            if stop is not None and stop(outcome):
                break
        return outcomes


class ProcessExecutor:
    """A multiprocessing pool with chunked dispatch and cooperative early exit.

    Tasks are handed to the pool with ``imap_unordered`` (so fast shards do
    not wait for slow ones); once ``stop`` accepts an outcome the shared
    cancellation event is set and the remaining tasks return immediately with
    their ``cancelled`` marker.  The returned outcome list is complete, so the
    caller's deterministic merge sees every shard that did real work.

    ``workers`` is the sharding degree; the pool itself never spawns more
    processes than the machine has cores (oversubscribing a CPU-bound search
    only adds fork and scheduling overhead).  Task decomposition and the
    position-based merges are independent of the pool size, so results are
    identical whatever the core count.
    """

    def __init__(self, workers: int, chunksize: int = 1):
        self.workers = max(1, int(workers))
        self.chunksize = max(1, int(chunksize))

    def run(
        self,
        worker: Callable,
        tasks: Sequence,
        stop: Optional[Callable[[object], bool]] = None,
    ) -> list:
        tasks = list(tasks)
        if self.workers <= 1 or len(tasks) <= 1 or in_worker():
            return SerialExecutor().run(worker, tasks, stop)
        import gc

        # Forked workers inherit the parent heap copy-on-write; collecting
        # first trims garbage pages the children would otherwise fault in.
        gc.collect()
        context = _pool_context()
        event = context.Event()
        outcomes = []
        processes = max(1, min(self.workers, len(tasks), available_cores()))
        with context.Pool(
            processes=processes,
            initializer=_initialize_worker,
            initargs=(event,),
        ) as pool:
            for outcome in pool.imap_unordered(worker, tasks, chunksize=self.chunksize):
                outcomes.append(outcome)
                if stop is not None and stop(outcome) and not event.is_set():
                    event.set()
        return outcomes


def _pool_context():
    """Prefer ``fork`` (cheap, inherits warm caches); fall back to the
    platform default where fork is unavailable."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def resolve_executor(
    workers: Optional[int] = None, executor: Optional[Executor] = None
) -> Executor:
    """An executor for the requested worker count: an explicit executor wins,
    ``workers=None`` consults ``REPRO_WORKERS``, and 1 (or running inside a
    pool worker) means serial."""
    if executor is not None:
        return executor
    if workers is None:
        workers = 1 if in_worker() else default_workers()
    if workers <= 1 or in_worker():
        return SerialExecutor()
    return ProcessExecutor(workers)
