"""Pluggable executors for the parallel decision subsystem.

Two interchangeable executors run the picklable check tasks built by
:mod:`repro.parallel.tasks`:

* :class:`SerialExecutor` — runs tasks in order in the current process; the
  reference implementation the differential tests compare against.
* :class:`ProcessExecutor` — a ``multiprocessing`` pool with chunked
  dispatch, early exit on the first counterexample via a shared cancellation
  event, and a guard against nested pools (a worker that itself calls a
  parallel entry point degrades to serial execution).

Both executors return the full list of task outcomes; *merging* those
outcomes into a verdict is the caller's job and is deterministic: outcomes
carry global positions and the merge picks the minimum, so the verdict never
depends on worker scheduling, and every reported witness is valid.  Under
early exit the *set* of shards that get to report a witness can depend on
timing (a cancelled shard may not have reached its counterexample yet), so
the particular witness chosen may differ between runs — only runs without
cancellation (all equivalent pairs, and any run through SerialExecutor) are
bit-for-bit reproducible.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from typing import Callable, Iterable, Optional, Protocol, Sequence

from ..errors import WorkerCrashError
from ..obs import REGISTRY as _OBS
from ..obs import span as _span

#: Environment variable read by :func:`default_workers`; CI legs set it to
#: exercise the parallel paths across the whole test suite.
WORKERS_ENV = "REPRO_WORKERS"

#: How long the drain loop waits on the result iterator before checking the
#: pool's workers for deaths.  A lost task (its worker SIGKILLed mid-run)
#: never produces a result, so without the poll the drain would block
#: forever; with it, a crash surfaces within one poll interval.
_DRAIN_POLL_S = 0.25

#: Set in pool workers: nested parallel entry points degrade to serial.
_IN_WORKER = False

#: The shared cancellation event of the current pool (worker side).
_CANCEL_EVENT = None


def available_cores() -> int:
    """The number of cores this process may actually run on (scheduling
    affinity where the platform exposes it — containers often pin fewer cores
    than ``os.cpu_count`` reports)."""
    getter = getattr(os, "sched_getaffinity", None)
    if getter is not None:
        try:
            return max(1, len(getter(0)))
        except OSError:
            pass
    return max(1, os.cpu_count() or 1)


def default_workers() -> int:
    """The worker count used when callers pass ``workers=None``: the value of
    ``REPRO_WORKERS`` (default 1, i.e. serial).

    A malformed value (``REPRO_WORKERS=two``) falls back to serial, but not
    silently: a :class:`RuntimeWarning` names the bad value, so a typo in a
    CI matrix or a deployment manifest cannot quietly disable the parallel
    subsystem.
    """
    raw = os.environ.get(WORKERS_ENV)
    if raw is None:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        import warnings

        warnings.warn(
            f"ignoring malformed {WORKERS_ENV}={raw!r} (expected an integer); "
            "falling back to serial execution",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1


def in_worker() -> bool:
    """Whether the current process is a pool worker (nested parallelism is
    suppressed to avoid fork bombs)."""
    return _IN_WORKER


def cancellation_requested() -> bool:
    """Whether the pool's shared cancellation event is set (always ``False``
    in serial runs, where early exit happens in the dispatch loop)."""
    return _CANCEL_EVENT is not None and _CANCEL_EVENT.is_set()


def _initialize_worker(event) -> None:
    global _IN_WORKER, _CANCEL_EVENT
    _IN_WORKER = True
    _CANCEL_EVENT = event


class Executor(Protocol):
    """The executor interface: run ``worker`` over ``tasks``, optionally
    stopping early once ``stop`` accepts an outcome."""

    workers: int

    def run(
        self,
        worker: Callable,
        tasks: Sequence,
        stop: Optional[Callable[[object], bool]] = None,
    ) -> list: ...


class SerialExecutor:
    """Run every task in order in the current process."""

    workers = 1

    def run(
        self,
        worker: Callable,
        tasks: Sequence,
        stop: Optional[Callable[[object], bool]] = None,
    ) -> list:
        outcomes = []
        for task in tasks:
            outcome = worker(task)
            outcomes.append(outcome)
            if stop is not None and stop(outcome):
                break
        return outcomes


def _fork_pool(processes: int):
    """Fork a worker pool with the shared cancellation event wired into every
    child; returns ``(pool, event)``.  Shared by both process executors."""
    import gc

    # Forked workers inherit the parent heap copy-on-write; collecting
    # first trims garbage pages the children would otherwise fault in.
    gc.collect()
    _OBS.inc("parallel.pool.forks")
    context = _pool_context()
    event = context.Event()
    with _span("parallel.pool.fork", processes=max(1, processes)):
        pool = context.Pool(
            processes=max(1, processes),
            initializer=_initialize_worker,
            initargs=(event,),
        )
    return pool, event


def _live_worker_pids(pool) -> frozenset:
    """The pids of the pool's currently-live worker processes.

    ``multiprocessing.Pool`` keeps its worker ``Process`` handles in the
    private ``_pool`` list and exposes no liveness API; the crash watch reads
    the handles directly.  A worker the pool already *replaced* after a death
    shows up here with a fresh pid, so comparing against the fork-time set
    detects replacements as well as outright deaths."""
    return frozenset(
        process.pid for process in getattr(pool, "_pool", ()) if process.is_alive()
    )


def _check_pool_health(pool, expected_pids: frozenset) -> None:
    """Raise :class:`WorkerCrashError` when the pool's live workers no longer
    match the fork-time set (a worker died, or died and was silently replaced
    by the pool's maintenance thread)."""
    live = _live_worker_pids(pool)
    if live != expected_pids:
        lost = sorted(expected_pids - live)
        raise WorkerCrashError(
            f"pool worker(s) {lost or sorted(live - expected_pids)} died during a "
            "parallel run; the pool has been discarded and the next run will "
            "fork a fresh one"
        )


def _reap_crashed_pool(pool) -> None:
    """Tear down a pool that lost a worker.

    ``Pool.terminate`` assumes cooperative workers: an idle worker blocks
    inside ``inqueue.get()`` *holding* the queue's reader lock, so a worker
    killed there leaves the lock acquired forever and ``terminate`` deadlocks
    in ``_help_stuff_finish`` (likewise a worker killed mid-result-``put``
    and the out-queue's writer lock).  The crashed-pool teardown therefore
    (1) kills the remaining workers outright, (2) force-releases the queue
    locks — POSIX semaphores, so a parent-side release repairs a dead
    holder, and ``ValueError`` just means the lock was free — and (3) runs
    the normal teardown on a daemon thread, so even a teardown wedged by an
    unlucky interleaving can never block the serving process (the workers
    are already dead; only parent-side daemon threads remain)."""
    for process in list(getattr(pool, "_pool", ())):
        if process.is_alive():
            try:
                process.kill()
            except OSError:  # pragma: no cover - already reaped
                pass
    for queue in (pool._inqueue, pool._outqueue):
        for lock_name in ("_rlock", "_wlock"):
            orphan = getattr(queue, lock_name, None)
            if orphan is None:
                continue
            try:
                orphan.release()
            except ValueError:  # the lock was not held; nothing to repair
                pass

    def _teardown() -> None:
        try:
            pool.terminate()
            pool.join()
        except Exception:  # pragma: no cover - best-effort teardown
            pass

    threading.Thread(target=_teardown, name="repro-pool-reaper", daemon=True).start()


def _drain_pool(
    pool,
    event,
    worker: Callable,
    tasks: Sequence,
    stop: Optional[Callable[[object], bool]],
    chunksize: int,
    expected_pids: Optional[frozenset] = None,
) -> list:
    """The shared dispatch loop: ``imap_unordered`` with cooperative early
    exit — once ``stop`` accepts an outcome the cancellation event is set and
    the remaining tasks return immediately with their ``cancelled`` marker.
    The returned outcome list is complete, so the caller's deterministic
    merge sees every shard that did real work.

    The drain waits in :data:`_DRAIN_POLL_S` slices and checks worker
    liveness between slices (and once more after the last result): a worker
    SIGKILLed mid-run loses its in-flight task — the pool would simply never
    deliver that result — so the drain raises :class:`WorkerCrashError`
    instead of blocking forever, *before* any caller merges the partial
    outcome list into a verdict."""
    if expected_pids is None:
        expected_pids = _live_worker_pids(pool)
    outcomes = []
    iterator = pool.imap_unordered(worker, tasks, chunksize=chunksize)
    while True:
        try:
            outcome = iterator.next(timeout=_DRAIN_POLL_S)
        except StopIteration:
            break
        except multiprocessing.TimeoutError:
            _check_pool_health(pool, expected_pids)
            continue
        outcomes.append(outcome)
        if stop is not None and stop(outcome) and not event.is_set():
            event.set()
    _check_pool_health(pool, expected_pids)
    return outcomes


class ProcessExecutor:
    """A per-call multiprocessing pool with chunked dispatch and cooperative
    early exit (see :func:`_drain_pool`).

    ``workers`` is the sharding degree; the pool itself never spawns more
    processes than the machine has cores (oversubscribing a CPU-bound search
    only adds fork and scheduling overhead).  Task decomposition and the
    position-based merges are independent of the pool size, so results are
    identical whatever the core count.
    """

    def __init__(self, workers: int, chunksize: int = 1):
        self.workers = max(1, int(workers))
        self.chunksize = max(1, int(chunksize))

    def run(
        self,
        worker: Callable,
        tasks: Sequence,
        stop: Optional[Callable[[object], bool]] = None,
    ) -> list:
        tasks = list(tasks)
        if self.workers <= 1 or len(tasks) <= 1 or in_worker():
            return SerialExecutor().run(worker, tasks, stop)
        pool, event = _fork_pool(min(self.workers, len(tasks), available_cores()))
        try:
            outcomes = _drain_pool(pool, event, worker, tasks, stop, self.chunksize)
        except WorkerCrashError:
            # Normal teardown would deadlock on the dead worker's queue
            # locks; route through the crashed-pool reaper instead.
            _reap_crashed_pool(pool)
            raise
        except BaseException:
            pool.terminate()
            pool.join()
            raise
        pool.terminate()
        pool.join()
        return outcomes


class PersistentProcessExecutor:
    """A process pool that stays alive across ``run`` calls (session mode).

    :class:`ProcessExecutor` forks a fresh pool per invocation — the right
    trade for one-shot entry points, where the fork inherits the parent's
    freshly warmed caches copy-on-write and the pool's lifetime is the call.
    A long-lived session (:class:`repro.session.Workspace`) inverts the
    trade: the pool forks **once**, lazily, on the first run that has enough
    work to shard — after the parent's serial warm prefix, so the children
    still inherit the warm shared Γ / comparison caches — and every later
    call reuses the same workers, whose per-process setup memos and shared
    caches accumulate across calls instead of being re-derived per fork.

    The executor owns one shared cancellation event, cleared between runs
    (``multiprocessing.Event`` state propagates to the already-forked
    workers).  ``forks`` counts pool creations — the session benchmarks and
    tests assert it stays at one across repeated calls.  ``close()`` (or use
    as a context manager) terminates the pool; a closed executor degrades to
    serial execution rather than erroring, so a session wound down mid-flight
    still completes its work.

    **Crash semantics.**  A worker that dies mid-run (or between runs, while
    the pool sits idle) raises :class:`~repro.errors.WorkerCrashError` out of
    the observing ``run`` call — *after* the dead pool has been discarded, so
    ``alive`` is already ``False`` before any caller merges outcomes.  The
    next ``run`` forks a fresh pool (``parallel.pool.heals`` counts these
    recoveries): one crash costs one failed call, never a wedged session.
    """

    def __init__(self, workers: int, chunksize: int = 1):
        self.workers = max(1, int(workers))
        self.chunksize = max(1, int(chunksize))
        self.forks = 0
        self._pool = None
        self._event = None
        self._closed = False
        self._pids: frozenset = frozenset()
        self._crashed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def wants_warm_prefix(self) -> bool:
        """Whether the next sweep should run its serial warm prefix in the
        parent: true until the pool exists (the fork is still ahead, so the
        prefix's cache entries will be inherited copy-on-write)."""
        return self._pool is None and not self._closed and self.workers > 1

    @property
    def alive(self) -> bool:
        return self._pool is not None

    def close(self) -> None:
        """Terminate the pool.  Idempotent; later runs degrade to serial."""
        self._closed = True
        self._discard_pool()

    def _discard_pool(self) -> None:
        pool = self._pool
        self._pool = None
        self._event = None
        if pool is not None:
            if self._crashed:
                # A dead worker may still hold a queue lock; the graceful
                # terminate would deadlock on it (see _reap_crashed_pool).
                _reap_crashed_pool(pool)
            else:
                pool.terminate()
                pool.join()

    def __enter__(self) -> "PersistentProcessExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort cleanup; close() is the API
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            # Unlike the one-shot executor, the pool size is not clamped by
            # the first call's task count: the same pool serves every later
            # (possibly much larger) run of the session.
            self._pool, self._event = _fork_pool(min(self.workers, available_cores()))
            self._pids = _live_worker_pids(self._pool)
            self.forks += 1
            if self._crashed:
                # This fork replaces a pool that died: the auto-heal the
                # service's 503-then-retry contract relies on.  Counted
                # separately from plain forks so recoveries stay visible.
                self._crashed = False
                _OBS.inc("parallel.pool.heals")
        return self._pool

    def run(
        self,
        worker: Callable,
        tasks: Sequence,
        stop: Optional[Callable[[object], bool]] = None,
    ) -> list:
        tasks = list(tasks)
        if self.workers <= 1 or len(tasks) <= 1 or in_worker() or self._closed:
            return SerialExecutor().run(worker, tasks, stop)
        if self._pool is not None:
            # A worker may have died since the previous run (the pool sat
            # idle).  Its warm per-process state is gone either way, so the
            # crash surfaces here — before any new tasks are dispatched —
            # and the *next* run forks fresh.
            try:
                _check_pool_health(self._pool, self._pids)
            except WorkerCrashError:
                self._crashed = True
                self._discard_pool()
                raise
        pool = self._ensure_pool()
        self._event.clear()
        try:
            return _drain_pool(
                pool, self._event, worker, tasks, stop, self.chunksize, self._pids
            )
        except BaseException:
            # A failed drain (a worker died, an exception propagated out of
            # imap) leaves the pool in an unknown state.  Discard it so the
            # next run forks a fresh one — one transient failure must not
            # wedge the long-lived session — and let the caller see the
            # error.  The discard happens before the exception reaches the
            # caller, so ``alive`` is already False by the time any merge
            # logic could run: a half-drained generation is never merged.
            self._crashed = True
            self._discard_pool()
            raise


def _pool_context():
    """Prefer ``fork`` (cheap, inherits warm caches); fall back to the
    platform default where fork is unavailable."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def resolve_executor(
    workers: Optional[int] = None, executor: Optional[Executor] = None
) -> Executor:
    """An executor for the requested worker count: an explicit executor wins,
    ``workers=None`` consults ``REPRO_WORKERS``, and 1 (or running inside a
    pool worker) means serial."""
    if executor is not None:
        return executor
    if workers is None:
        workers = 1 if in_worker() else default_workers()
    if workers <= 1 or in_worker():
        return SerialExecutor()
    return ProcessExecutor(workers)
