"""Parallel decision subsystem: sharded bounded equivalence, catalog sweeps,
and equivalence matrices.

The decision procedures of the paper enumerate huge but *independent* check
spaces — (subset, ordering) pairs for bounded equivalence, query pairs for an
equivalence matrix, and (subset, ordering-class) rows of a whole sub-catalog
for the single-sweep engine.  This package splits those spaces into picklable
shards (:mod:`repro.parallel.tasks`) and runs them through pluggable
executors (:mod:`repro.parallel.executor`): serial for reference and
debugging, or a multiprocessing pool with chunked dispatch, early exit via a
shared cancellation event, and deterministic merging of verdicts and
witnesses.  Sweep pools are forked after a serial warm prefix, so workers
inherit the parent's shared Γ / comparison caches copy-on-write.

Users normally reach this subsystem through ``workers=N`` on
:func:`repro.core.bounded.bounded_equivalence` or
:func:`repro.workloads.equivalence_matrix`; the ``REPRO_WORKERS`` environment
variable sets the default worker count process-wide (a malformed value warns
and falls back to serial).
"""

from .executor import (
    PersistentProcessExecutor,
    ProcessExecutor,
    SerialExecutor,
    cancellation_requested,
    default_workers,
    in_worker,
    resolve_executor,
)
from .tasks import (
    SHIP_RANGES,
    SHIP_ROWS,
    BoundedCheckOutcome,
    BoundedCheckTask,
    PairCheckTask,
    PairOutcome,
    SweepCheckOutcome,
    SweepCheckTask,
    SweepRangeCheckTask,
    block_cyclic_ranges,
    bounded_check_tasks,
    derive_pair_seed,
    merge_bounded_outcomes,
    pair_check_tasks,
    parallel_bounded_search,
    parallel_sweep_search,
    run_bounded_check_task,
    run_pair_task,
    run_sweep_check_task,
    run_sweep_range_task,
    sweep_check_tasks,
    sweep_range_tasks,
)

__all__ = [
    "BoundedCheckOutcome",
    "BoundedCheckTask",
    "PairCheckTask",
    "PairOutcome",
    "PersistentProcessExecutor",
    "ProcessExecutor",
    "SHIP_RANGES",
    "SHIP_ROWS",
    "SerialExecutor",
    "SweepCheckOutcome",
    "SweepCheckTask",
    "SweepRangeCheckTask",
    "block_cyclic_ranges",
    "bounded_check_tasks",
    "cancellation_requested",
    "default_workers",
    "derive_pair_seed",
    "in_worker",
    "merge_bounded_outcomes",
    "pair_check_tasks",
    "parallel_bounded_search",
    "parallel_sweep_search",
    "resolve_executor",
    "run_bounded_check_task",
    "run_pair_task",
    "run_sweep_check_task",
    "run_sweep_range_task",
    "sweep_check_tasks",
    "sweep_range_tasks",
]
