"""Parallel decision subsystem: sharded bounded equivalence and equivalence
matrices.

The decision procedures of the paper enumerate huge but *independent* check
spaces — (subset, ordering) pairs for bounded equivalence, query pairs for an
equivalence matrix.  This package splits those spaces into picklable shards
(:mod:`repro.parallel.tasks`) and runs them through pluggable executors
(:mod:`repro.parallel.executor`): serial for reference and debugging, or a
multiprocessing pool with chunked dispatch, early exit on the first
counterexample via a shared cancellation event, and deterministic merging of
verdicts and witnesses.

Users normally reach this subsystem through ``workers=N`` on
:func:`repro.core.bounded.bounded_equivalence` or
:func:`repro.workloads.equivalence_matrix`; the ``REPRO_WORKERS`` environment
variable sets the default worker count process-wide.
"""

from .executor import (
    ProcessExecutor,
    SerialExecutor,
    cancellation_requested,
    default_workers,
    in_worker,
    resolve_executor,
)
from .tasks import (
    BoundedCheckOutcome,
    BoundedCheckTask,
    PairCheckTask,
    PairOutcome,
    bounded_check_tasks,
    derive_pair_seed,
    merge_bounded_outcomes,
    pair_check_tasks,
    parallel_bounded_search,
    run_bounded_check_task,
    run_pair_task,
)

__all__ = [
    "BoundedCheckOutcome",
    "BoundedCheckTask",
    "PairCheckTask",
    "PairOutcome",
    "ProcessExecutor",
    "SerialExecutor",
    "bounded_check_tasks",
    "cancellation_requested",
    "default_workers",
    "derive_pair_seed",
    "in_worker",
    "merge_bounded_outcomes",
    "pair_check_tasks",
    "parallel_bounded_search",
    "resolve_executor",
    "run_bounded_check_task",
    "run_pair_task",
]
