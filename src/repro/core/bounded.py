"""Bounded and local equivalence (Section 4 of the paper).

Two queries are *N-equivalent* when they return identical results over every
database whose carrier has at most N constants; they are *locally equivalent*
when they are τ(q, q')-equivalent, where τ is the term size of the pair
(Section 4).  Theorem 4.8 shows that bounded equivalence of α-queries is
decidable exactly when α is order-decidable, and its proof is a procedure:

1. Let ``T`` be the constants of both queries plus ``N`` fresh variables, and
   ``BASE`` the set of all atoms over ``T`` built from the queries' predicates.
2. For every subset ``S ⊆ BASE`` and every complete ordering ``L`` of ``T``,
   evaluate both queries symbolically over ``S_L``.
3. The queries agree on all instantiations of ``S`` by assignments satisfying
   ``L`` iff they produce the same group keys and, for every group, the
   ordered identity ``L → α(B) = α(B')`` is valid.

This module implements that procedure, plus the bounded-equivalence variants
for non-aggregate queries under set and bag-set semantics that the other
decision procedures build on.

Two search-space reductions keep the double-exponential procedure tractable:

* **Orbit-canonical subset enumeration.**  The symmetric group on the fresh
  variables acts on BASE; only one representative per orbit of subsets needs
  to be checked.  :class:`CanonicalSubsetEnumerator` generates exactly the
  canonical representatives by orderly generation (grow subsets by appending
  larger atoms, prune non-canonical prefixes), so nothing pays the per-subset
  ``|fresh|!`` scan of the legacy :func:`_canonical_subset` reference (kept
  for ablation and as the oracle the enumerator is pinned against).
* **Ordering classes.**  When neither query contains a comparison, the
  symbolic evaluation of ``S_L`` depends only on the *blocks* of ``L`` (which
  terms are equal), not on the order of the blocks; orderings are grouped by
  their block partition and each class is evaluated once.

The per-(subset, ordering) checks are independent, so the whole search can be
sharded across processes; ``bounded_equivalence(..., workers=N)`` routes
through :mod:`repro.parallel`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from ..aggregates.functions import AggregationFunction, get_function
from ..aggregates.properties import random_realization
from ..datalog.atoms import RelationalAtom
from ..datalog.database import Database
from ..datalog.queries import Query, combined_predicate_arities, term_size_of_pair
from ..datalog.terms import Constant, Term, Variable
from ..domains import Domain
from ..engine.evaluator import evaluate_aggregate, evaluate_bag_set, evaluate_set
from ..engine.symbolic import SymbolicDatabase, symbolic_answer_multiset, symbolic_groups
from ..errors import ReproError, UnsupportedAggregateError
from ..orderings.complete_orderings import CompleteOrdering, enumerate_complete_orderings

#: Semantics under which non-aggregate queries are compared.
SET_SEMANTICS = "set"
BAG_SET_SEMANTICS = "bag-set"

#: Enumeration strategies for the subset search.
CANONICAL_ENUMERATION = "canonical"  # orbit representatives only (orderly generation)
FULL_ENUMERATION = "full"  # every subset of BASE, no symmetry reduction
SCAN_ENUMERATION = "scan"  # legacy: every subset, canonicalized by a |fresh|! scan

#: Below this many subsets a parallel run is not worth the process overhead.
DEFAULT_PARALLEL_THRESHOLD = 64


@dataclass
class Counterexample:
    """A witness of non-equivalence.

    ``database`` is a concrete database on which the two queries differ when
    one could be constructed; the symbolic context (subset and ordering) is
    always recorded so the situation can be reproduced.
    """

    database: Optional[Database]
    left_result: object
    right_result: object
    ordering: Optional[CompleteOrdering] = None
    symbolic_atoms: Optional[frozenset] = None

    def __str__(self) -> str:
        parts = [f"left={self.left_result!r}", f"right={self.right_result!r}"]
        if self.database is not None:
            parts.insert(0, f"D={self.database}")
        if self.ordering is not None:
            parts.append(f"L=({self.ordering})")
        return "counterexample: " + ", ".join(parts)


@dataclass
class EquivalenceReport:
    """The outcome of a bounded/local equivalence check with statistics."""

    equivalent: bool
    bound: int
    domain: Domain
    counterexample: Optional[Counterexample] = None
    subsets_examined: int = 0
    orderings_examined: int = 0
    identities_checked: int = 0
    subsets_skipped_by_symmetry: int = 0
    workers_used: int = 1
    notes: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.equivalent


@dataclass(frozen=True)
class SharedBaseContext:
    """A catalog-wide BASE recipe shared by every pair of a query catalog.

    Checking a pair over the *catalog's* constants with the *catalog's* fresh
    bound is sound: it enlarges the set of small databases examined, so an
    EQUIVALENT verdict still implies τ(pair)-equivalence (the bound dominates
    every pair's τ) and a counterexample is always a concrete witness.  The
    payoff is that every pair sharing a query also shares the (subset,
    ordering) stream, so the symbolic engine's memoized Γ(q, S_L) is reused
    across the whole catalog instead of being recomputed per pair.
    """

    constants: tuple[Constant, ...]
    bound: int

    @classmethod
    def from_catalog(cls, queries: Iterable[Query]) -> Optional["SharedBaseContext"]:
        """The shared context of a catalog, or ``None`` when no two queries of
        the catalog are comparable (fewer than two of the same shape)."""
        catalog = list(queries)
        constants: set[Constant] = set()
        for query in catalog:
            constants |= query.constants()
        bound = 0
        comparable = False
        for position, first in enumerate(catalog):
            for second in catalog[position + 1 :]:
                if first.is_aggregate == second.is_aggregate:
                    comparable = True
                    bound = max(bound, term_size_of_pair(first, second))
        if not comparable:
            return None
        return cls(tuple(sorted(constants, key=str)), bound)


def build_base(
    first: Query,
    second: Query,
    fresh_variable_count: int,
    extra_constants: Iterable[Constant] = (),
) -> tuple[list[Term], list[RelationalAtom], list[Variable]]:
    """The term set ``T`` and atom universe ``BASE`` of Theorem 4.8.

    ``extra_constants`` widens ``T`` beyond the pair's own constants (used by
    :class:`SharedBaseContext` to align the BASE across a whole catalog).
    """
    constants = sorted(
        first.constants() | second.constants() | set(extra_constants),
        key=lambda c: (str(c)),
    )
    taken_names = {variable.name for variable in first.variables() | second.variables()}
    fresh: list[Variable] = []
    index = 0
    while len(fresh) < fresh_variable_count:
        candidate = Variable(f"_u{index}")
        index += 1
        if candidate.name in taken_names:
            continue
        fresh.append(candidate)
    terms: list[Term] = list(constants) + list(fresh)
    arities = combined_predicate_arities(first, second)
    base: list[RelationalAtom] = []
    for predicate in sorted(arities):
        arity = arities[predicate]
        for arguments in itertools.product(terms, repeat=arity):
            base.append(RelationalAtom(predicate, arguments))
    return terms, base, fresh


# ----------------------------------------------------------------------
# Subset enumeration: orbit-canonical (orderly generation) and legacy scan
# ----------------------------------------------------------------------
def canonical_base_order(base: Sequence[RelationalAtom]) -> list[RelationalAtom]:
    """BASE sorted by the string form of its atoms — the fixed total order the
    canonical enumeration (and the legacy scan signature) is defined against."""
    return sorted(base, key=str)


def fresh_permutation_maps(
    base: Sequence[RelationalAtom], fresh: Sequence[Variable]
) -> list[tuple[int, ...]]:
    """The action of every non-identity permutation of the fresh variables on
    BASE, as index maps (``map[i]`` is the index of the image of atom ``i``).

    BASE is closed under renaming fresh variables to fresh variables, so every
    image index exists.
    """
    position = {atom: index for index, atom in enumerate(base)}
    identity = tuple(fresh)
    maps: list[tuple[int, ...]] = []
    for permutation in itertools.permutations(fresh):
        if permutation == identity:
            continue
        mapping = dict(zip(fresh, permutation))
        maps.append(tuple(position[atom.substitute(mapping)] for atom in base))
    return maps


class CanonicalSubsetEnumerator:
    """Generate exactly one representative per orbit of subsets of BASE under
    permutations of the fresh variables.

    A subset is *canonical* when its sorted index tuple (indices into the
    str-sorted BASE) is lexicographically minimal in its orbit — the same
    representative the legacy :func:`_canonical_subset` scan selects.  The
    enumerator uses orderly generation: subsets grow by appending an atom
    larger than their maximum, and a prefix that is not canonical is pruned
    together with its entire subtree.  This is sound because canonicity is
    hereditary: removing the largest element of a canonical subset leaves a
    canonical subset (equivalently, every extension of a non-canonical prefix
    by larger atoms is non-canonical).

    Subsets are yielded in (size, lexicographic) order so counterexamples on
    small databases surface first, matching the legacy enumeration.  After a
    complete iteration, ``skipped`` holds the exact number of non-canonical
    subsets that were never generated.
    """

    def __init__(self, base: Sequence[RelationalAtom], fresh: Sequence[Variable]):
        self.base = canonical_base_order(base)
        self.maps = fresh_permutation_maps(self.base, fresh)
        self.skipped = 0

    def _is_canonical(self, indices: tuple[int, ...]) -> bool:
        for permutation in self.maps:
            mapped = sorted(permutation[i] for i in indices)
            for image, original in zip(mapped, indices):
                if image < original:
                    return False
                if image > original:
                    break
        return True

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        self.skipped = 0
        size = len(self.base)
        level: list[tuple[int, ...]] = [()]
        yield ()
        while level:
            next_level: list[tuple[int, ...]] = []
            for prefix in level:
                start = prefix[-1] + 1 if prefix else 0
                for atom_index in range(start, size):
                    candidate = prefix + (atom_index,)
                    if self._is_canonical(candidate):
                        next_level.append(candidate)
                        yield candidate
                    else:
                        # The candidate and every extension of it by larger
                        # atoms are non-canonical (heredity): count the whole
                        # pruned subtree.
                        self.skipped += 1 << (size - 1 - atom_index)
            level = next_level

    def subsets(self) -> Iterator[frozenset[RelationalAtom]]:
        base = self.base
        for indices in self:
            yield frozenset(base[i] for i in indices)


def _canonical_subset(
    subset: frozenset[RelationalAtom], fresh: Sequence[Variable]
) -> frozenset[RelationalAtom]:
    """The canonical representative of a subset of BASE under permutations of
    the interchangeable fresh variables.

    Legacy reference implementation: a full ``|fresh|!`` scan per subset.  The
    production path is :class:`CanonicalSubsetEnumerator`, which generates
    only canonical representatives; this function remains as the oracle the
    enumerator is pinned against and for the ``scan`` ablation mode.
    """
    best: Optional[tuple] = None
    best_subset = subset
    for permutation in itertools.permutations(fresh):
        mapping = dict(zip(fresh, permutation))
        renamed = frozenset(atom.substitute(mapping) for atom in subset)
        signature = tuple(sorted(str(atom) for atom in renamed))
        if best is None or signature < best:
            best = signature
            best_subset = renamed
    return best_subset


def _iterate_subsets(
    base: Sequence[RelationalAtom],
    fresh: Sequence[Variable],
    symmetry_reduction: bool,
) -> Iterator[tuple[frozenset[RelationalAtom], bool]]:
    """Yield (subset, skipped) pairs; skipped subsets are symmetry duplicates.

    Legacy enumeration (every subset tested, canonical ones kept), retained
    for the ``scan`` ablation mode and the pinning tests.
    """
    for size in range(len(base) + 1):
        for combination in itertools.combinations(base, size):
            subset = frozenset(combination)
            if symmetry_reduction and len(fresh) > 1:
                canonical = _canonical_subset(subset, fresh)
                if canonical != subset:
                    # Only the canonical representative of each orbit under
                    # permutations of the fresh variables is processed.
                    yield subset, True
                    continue
            yield subset, False


# ----------------------------------------------------------------------
# Run preparation shared by the serial path and the parallel workers
# ----------------------------------------------------------------------
#: An ordering class: a representative ordering plus every (position,
#: ordering) member sharing its block partition.
OrderingClass = tuple[CompleteOrdering, tuple[tuple[int, CompleteOrdering], ...]]


@dataclass
class BoundedRunSetup:
    """Everything a (subset, ordering) check needs, derivable deterministically
    from (first, second, bound, domain, semantics, extra_constants) — workers
    rebuild it locally instead of shipping it through pickles."""

    first: Query
    second: Query
    function: Optional[AggregationFunction]
    semantics: str
    terms: list[Term]
    base: list[RelationalAtom]  # canonical (str-sorted) order
    fresh: list[Variable]
    orderings: list[CompleteOrdering]
    ordering_classes: tuple[OrderingClass, ...]
    comparison_free: bool


def _pair_is_comparison_free(first: Query, second: Query) -> bool:
    return not any(
        disjunct.comparisons for query in (first, second) for disjunct in query.disjuncts
    )


def _group_orderings(
    orderings: Sequence[CompleteOrdering], comparison_free: bool
) -> tuple[OrderingClass, ...]:
    """Group orderings by their block partition.

    For comparison-free query pairs, symbolic evaluation over ``S_L`` depends
    only on which terms ``L`` equates (constants canonicalize to themselves
    and block representatives ignore block order), so Γ and the groups are
    computed once per class; the per-ordering work shrinks to the ordered
    identities.  With comparisons present every class is a singleton.
    """
    if not comparison_free:
        return tuple(
            (ordering, ((position, ordering),))
            for position, ordering in enumerate(orderings)
        )
    classes: dict[frozenset, list[tuple[int, CompleteOrdering]]] = {}
    order: list[frozenset] = []
    for position, ordering in enumerate(orderings):
        key = frozenset(ordering.blocks)
        if key not in classes:
            classes[key] = []
            order.append(key)
        classes[key].append((position, ordering))
    return tuple((classes[key][0][1], tuple(classes[key])) for key in order)


def prepare_bounded_run(
    first: Query,
    second: Query,
    bound: int,
    domain: Domain,
    semantics: str,
    extra_constants: Iterable[Constant] = (),
) -> BoundedRunSetup:
    """Validate the pair and build the shared run state (terms, BASE in
    canonical order, satisfiable orderings grouped into classes)."""
    function = _resolve_function(first, second, domain)
    terms, base, fresh = build_base(first, second, bound, extra_constants)
    orderings = [
        ordering
        for ordering in enumerate_complete_orderings(terms, domain)
        if ordering.is_satisfiable()
    ]
    comparison_free = _pair_is_comparison_free(first, second)
    return BoundedRunSetup(
        first=first,
        second=second,
        function=function,
        semantics=semantics,
        terms=terms,
        base=canonical_base_order(base),
        fresh=fresh,
        orderings=orderings,
        ordering_classes=_group_orderings(orderings, comparison_free),
        comparison_free=comparison_free,
    )


@dataclass
class CheckStats:
    """Statistics accumulated by the subset checks (picklable, mergeable)."""

    subsets_examined: int = 0
    orderings_examined: int = 0
    identities_checked: int = 0

    def merge_into(self, report: EquivalenceReport) -> None:
        report.subsets_examined += self.subsets_examined
        report.orderings_examined += self.orderings_examined
        report.identities_checked += self.identities_checked


def check_subset(
    setup: BoundedRunSetup,
    subset: frozenset[RelationalAtom],
    stats,
    seed: int = 0,
) -> Optional[tuple[int, Counterexample]]:
    """Check one subset of BASE against every ordering class.

    Returns ``(ordering_position, counterexample)`` for the first failing
    ordering (in enumeration order within each class), or ``None`` when the
    queries agree on the subset.  ``stats`` needs ``orderings_examined`` and
    ``identities_checked`` counters (an :class:`EquivalenceReport` or a
    :class:`CheckStats`).
    """
    first, second, function, semantics = (
        setup.first,
        setup.second,
        setup.function,
        setup.semantics,
    )
    for representative, members in setup.ordering_classes:
        database = SymbolicDatabase(subset, representative)
        if function is None:
            stats.orderings_examined += len(members)
            counterexample = _compare_non_aggregate(first, second, database, semantics)
            if counterexample is not None:
                return members[0][0], counterexample
            continue
        left_groups = symbolic_groups(first, database)
        right_groups = symbolic_groups(second, database)
        if set(left_groups) != set(right_groups):
            stats.orderings_examined += len(members)
            concrete = database.instantiate()
            return members[0][0], Counterexample(
                database=concrete,
                left_result=evaluate_aggregate(first, concrete, function),
                right_result=evaluate_aggregate(second, concrete, function),
                ordering=database.ordering,
                symbolic_atoms=database.atoms,
            )
        for position, ordering in members:
            stats.orderings_examined += 1
            for key in left_groups:
                stats.identities_checked += 1
                if not function.decide_ordered_identity(
                    ordering, left_groups[key], right_groups[key]
                ):
                    witness_database = SymbolicDatabase(subset, ordering)
                    return position, _witness_for_identity_failure(
                        first, second, witness_database, function, seed=seed
                    )
    return None


# ----------------------------------------------------------------------
# The decision procedure
# ----------------------------------------------------------------------
def bounded_equivalence(
    first: Query,
    second: Query,
    bound: int,
    domain: Domain = Domain.RATIONALS,
    semantics: str = SET_SEMANTICS,
    symmetry_reduction: bool = True,
    max_subsets: int = 2_000_000,
    *,
    enumeration: Optional[str] = None,
    workers: Optional[int] = None,
    executor=None,
    seed: int = 0,
    parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
    extra_constants: Iterable[Constant] = (),
) -> EquivalenceReport:
    """Decide whether ``first ≡_N second`` for ``N = bound`` (Theorem 4.8).

    For aggregate queries both must carry the same aggregation function, which
    must be order-decidable over the domain.  For non-aggregate queries the
    ``semantics`` parameter selects set or bag-set semantics.

    ``enumeration`` selects the subset strategy: ``"canonical"`` (default,
    orbit representatives by orderly generation), ``"full"`` (no symmetry
    reduction), or ``"scan"`` (the legacy per-subset permutation scan, kept
    for ablation).  ``workers > 1`` shards the canonical subsets across a
    process pool via :mod:`repro.parallel`; ``seed`` makes the fallback
    witness search reproducible regardless of worker scheduling.
    """
    mode = enumeration
    if mode is None:
        mode = CANONICAL_ENUMERATION if symmetry_reduction else FULL_ENUMERATION
    elif not symmetry_reduction and mode in (CANONICAL_ENUMERATION, SCAN_ENUMERATION):
        mode = FULL_ENUMERATION
    if mode not in (CANONICAL_ENUMERATION, FULL_ENUMERATION, SCAN_ENUMERATION):
        raise ReproError(f"unknown enumeration mode {mode!r}")

    extra_constants = tuple(extra_constants)
    # Validate the pair, then budget-check the subset space arithmetically
    # BEFORE enumerating orderings — Fubini(|T|) ordering enumeration on an
    # over-budget instance would burn minutes just to reach the guard.
    _resolve_function(first, second, domain)
    base_size = _base_size(first, second, bound, extra_constants)
    subset_count = 2**base_size
    if subset_count > max_subsets:
        raise ReproError(
            f"the bounded-equivalence search space has {subset_count} subsets of BASE "
            f"(|BASE| = {base_size}), exceeding max_subsets={max_subsets}; "
            "reduce the bound or raise max_subsets explicitly"
        )
    setup = prepare_bounded_run(first, second, bound, domain, semantics, extra_constants)
    report = EquivalenceReport(equivalent=True, bound=bound, domain=domain)
    if not setup.orderings:
        # Degenerate corner: no terms at all (no constants and N = 0).  The
        # only database to compare over is the empty one.
        counterexample = _compare_concrete(
            first, second, Database(()), setup.function, semantics
        )
        if counterexample is not None:
            report.equivalent = False
            report.counterexample = counterexample
        return report

    if mode == SCAN_ENUMERATION:
        return _scan_bounded_search(setup, report, seed)

    enumerator: Optional[CanonicalSubsetEnumerator] = None
    if mode == CANONICAL_ENUMERATION:
        enumerator = CanonicalSubsetEnumerator(setup.base, setup.fresh)
        subsets: Iterable[tuple[int, ...]] = iter(enumerator)
    else:
        subsets = (
            combination
            for size in range(len(setup.base) + 1)
            for combination in itertools.combinations(range(len(setup.base)), size)
        )

    if workers is None:
        from ..parallel.executor import default_workers, in_worker

        workers = 1 if in_worker() else default_workers()
    if workers > 1 or executor is not None:
        # Sharding requires the materialized subset stream.  An explicitly
        # supplied executor is always honored; with plain ``workers=N`` tiny
        # spaces stay serial (over the already-built list) to skip the pool
        # overhead.
        subset_list = list(subsets)
        if enumerator is not None:
            report.subsets_skipped_by_symmetry = enumerator.skipped
        if executor is not None or len(subset_list) >= parallel_threshold:
            from ..parallel.tasks import parallel_bounded_search

            return parallel_bounded_search(
                first=first,
                second=second,
                bound=bound,
                domain=domain,
                semantics=semantics,
                extra_constants=extra_constants,
                subsets=subset_list,
                report=report,
                workers=workers,
                executor=executor,
                seed=seed,
            )
        subsets = iter(subset_list)

    # Serial path: enumerate lazily, so an early counterexample (often on a
    # tiny subset) is reported before the rest of the space is generated.
    base = setup.base
    for indices in subsets:
        report.subsets_examined += 1
        hit = check_subset(setup, frozenset(base[i] for i in indices), report, seed)
        if hit is not None:
            report.equivalent = False
            report.counterexample = hit[1]
            if enumerator is not None:
                report.subsets_skipped_by_symmetry = enumerator.skipped
            return report
    if enumerator is not None:
        report.subsets_skipped_by_symmetry = enumerator.skipped
    return report


def _scan_bounded_search(
    setup: BoundedRunSetup, report: EquivalenceReport, seed: int
) -> EquivalenceReport:
    """The legacy PR 1 search loop: every subset canonicalized by a
    ``|fresh|!`` scan, every ordering evaluated individually."""
    for subset, skipped in _iterate_subsets(setup.base, setup.fresh, True):
        if skipped:
            report.subsets_skipped_by_symmetry += 1
            continue
        report.subsets_examined += 1
        for ordering in setup.orderings:
            report.orderings_examined += 1
            database = SymbolicDatabase(subset, ordering)
            counterexample = _compare_over(
                setup.first, setup.second, database, setup.function, setup.semantics, report, seed
            )
            if counterexample is not None:
                report.equivalent = False
                report.counterexample = counterexample
                return report
    return report


def local_equivalence(
    first: Query,
    second: Query,
    domain: Domain = Domain.RATIONALS,
    semantics: str = SET_SEMANTICS,
    symmetry_reduction: bool = True,
    max_subsets: int = 2_000_000,
    *,
    context: Optional[SharedBaseContext] = None,
    workers: Optional[int] = None,
    executor=None,
    seed: int = 0,
) -> EquivalenceReport:
    """Local equivalence: bounded equivalence with N = τ(q, q') (Section 4).

    With a :class:`SharedBaseContext` the catalog-wide bound and constants are
    used instead (still sound, since the shared bound dominates τ), unless the
    widened BASE would blow the ``max_subsets`` budget, in which case the
    pair-local BASE is used.
    """
    bound = term_size_of_pair(first, second)
    extra_constants: tuple[Constant, ...] = ()
    if context is not None and context.bound >= bound:
        shared_base_size = _base_size(first, second, context.bound, context.constants)
        if 2**shared_base_size <= max_subsets:
            bound = context.bound
            extra_constants = context.constants
    return bounded_equivalence(
        first,
        second,
        bound,
        domain=domain,
        semantics=semantics,
        symmetry_reduction=symmetry_reduction,
        max_subsets=max_subsets,
        workers=workers,
        executor=executor,
        seed=seed,
        extra_constants=extra_constants,
    )


def _base_size(
    first: Query, second: Query, bound: int, extra_constants: Iterable[Constant]
) -> int:
    """|BASE| for the pair at the given bound, computed arithmetically (no
    atom construction) — used to budget-check a shared context cheaply."""
    constants = first.constants() | second.constants() | set(extra_constants)
    term_count = len(constants) + bound
    arities = combined_predicate_arities(first, second)
    return sum(term_count**arity for arity in arities.values())


def _resolve_function(
    first: Query, second: Query, domain: Domain
) -> Optional[AggregationFunction]:
    if first.is_aggregate != second.is_aggregate:
        raise UnsupportedAggregateError(
            "cannot compare an aggregate query with a non-aggregate query"
        )
    if not first.is_aggregate:
        return None
    assert first.aggregate is not None and second.aggregate is not None
    if first.aggregate.function != second.aggregate.function:
        raise UnsupportedAggregateError(
            f"the queries use different aggregation functions: "
            f"{first.aggregate.function} vs {second.aggregate.function}"
        )
    function = get_function(first.aggregate.function)
    if not function.is_order_decidable_over(domain):
        raise UnsupportedAggregateError(
            f"{function.name} is not order-decidable over {domain.value}; "
            "bounded equivalence is undecidable for this class (Theorem 4.8)"
        )
    return function


def _compare_over(
    first: Query,
    second: Query,
    database: SymbolicDatabase,
    function: Optional[AggregationFunction],
    semantics: str,
    report: EquivalenceReport,
    seed: int = 0,
) -> Optional[Counterexample]:
    if function is None:
        return _compare_non_aggregate(first, second, database, semantics)
    left_groups = symbolic_groups(first, database)
    right_groups = symbolic_groups(second, database)
    if set(left_groups) != set(right_groups):
        concrete = database.instantiate()
        return Counterexample(
            database=concrete,
            left_result=evaluate_aggregate(first, concrete, function),
            right_result=evaluate_aggregate(second, concrete, function),
            ordering=database.ordering,
            symbolic_atoms=database.atoms,
        )
    for key in left_groups:
        report.identities_checked += 1
        if not function.decide_ordered_identity(
            database.ordering, left_groups[key], right_groups[key]
        ):
            return _witness_for_identity_failure(first, second, database, function, seed=seed)
    return None


def _compare_concrete(
    first: Query,
    second: Query,
    database: Database,
    function: Optional[AggregationFunction],
    semantics: str,
) -> Optional[Counterexample]:
    """Direct comparison over a single concrete database (degenerate cases)."""
    if function is not None:
        left_result = evaluate_aggregate(first, database, function)
        right_result = evaluate_aggregate(second, database, function)
    elif semantics == BAG_SET_SEMANTICS:
        left_result = evaluate_bag_set(first, database)
        right_result = evaluate_bag_set(second, database)
    else:
        left_result = evaluate_set(first, database)
        right_result = evaluate_set(second, database)
    if left_result == right_result:
        return None
    return Counterexample(database=database, left_result=left_result, right_result=right_result)


def _compare_non_aggregate(
    first: Query, second: Query, database: SymbolicDatabase, semantics: str
) -> Optional[Counterexample]:
    if semantics == SET_SEMANTICS:
        left = set(symbolic_answer_multiset(first, database))
        right = set(symbolic_answer_multiset(second, database))
    elif semantics == BAG_SET_SEMANTICS:
        left = symbolic_answer_multiset(first, database)
        right = symbolic_answer_multiset(second, database)
    else:
        raise ReproError(f"unknown semantics {semantics!r}")
    if left == right:
        return None
    concrete = database.instantiate()
    if semantics == SET_SEMANTICS:
        left_result = evaluate_set(first, concrete)
        right_result = evaluate_set(second, concrete)
    else:
        left_result = evaluate_bag_set(first, concrete)
        right_result = evaluate_bag_set(second, concrete)
    return Counterexample(
        database=concrete,
        left_result=left_result,
        right_result=right_result,
        ordering=database.ordering,
        symbolic_atoms=database.atoms,
    )


def _witness_for_identity_failure(
    first: Query,
    second: Query,
    database: SymbolicDatabase,
    function: AggregationFunction,
    attempts: int = 25,
    seed: int = 0,
) -> Counterexample:
    """Search for a concrete instantiation on which the two queries visibly
    disagree.  The canonical instantiation is tried first, followed by random
    realizations of the ordering seeded by ``seed`` (so parallel runs remain
    reproducible regardless of worker scheduling); for non-shiftable functions
    a particular instantiation may coincidentally agree, in which case only
    the symbolic context is reported."""
    import random

    candidates = [database.ordering.instantiate()]
    rng = random.Random(seed)
    for _ in range(attempts):
        candidates.append(random_realization(database.ordering, rng))
    for assignment in candidates:
        facts = []
        for atom in database.atoms:
            values = tuple(
                argument.value if isinstance(argument, Constant) else assignment[argument]
                for argument in atom.arguments
            )
            facts.append((atom.predicate, values))
        concrete = Database(facts)
        left_result = evaluate_aggregate(first, concrete, function)
        right_result = evaluate_aggregate(second, concrete, function)
        if left_result != right_result:
            return Counterexample(
                database=concrete,
                left_result=left_result,
                right_result=right_result,
                ordering=database.ordering,
                symbolic_atoms=database.atoms,
            )
    return Counterexample(
        database=None,
        left_result="(symbolic disagreement)",
        right_result="(symbolic disagreement)",
        ordering=database.ordering,
        symbolic_atoms=database.atoms,
    )
