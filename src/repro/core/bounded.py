"""Bounded and local equivalence (Section 4 of the paper).

Two queries are *N-equivalent* when they return identical results over every
database whose carrier has at most N constants; they are *locally equivalent*
when they are τ(q, q')-equivalent, where τ is the term size of the pair
(Section 4).  Theorem 4.8 shows that bounded equivalence of α-queries is
decidable exactly when α is order-decidable, and its proof is a procedure:

1. Let ``T`` be the constants of both queries plus ``N`` fresh variables, and
   ``BASE`` the set of all atoms over ``T`` built from the queries' predicates.
2. For every subset ``S ⊆ BASE`` and every complete ordering ``L`` of ``T``,
   evaluate both queries symbolically over ``S_L``.
3. The queries agree on all instantiations of ``S`` by assignments satisfying
   ``L`` iff they produce the same group keys and, for every group, the
   ordered identity ``L → α(B) = α(B')`` is valid.

This module implements that procedure (with an optional symmetry reduction
over the interchangeable fresh variables), plus the bounded-equivalence
variants for non-aggregate queries under set and bag-set semantics that the
other decision procedures build on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from ..aggregates.functions import AggregationFunction, get_function
from ..aggregates.properties import random_realization
from ..datalog.atoms import RelationalAtom
from ..datalog.database import Database
from ..datalog.queries import Query, combined_predicate_arities, term_size_of_pair
from ..datalog.terms import Constant, Term, Variable
from ..domains import Domain
from ..engine.evaluator import evaluate_aggregate, evaluate_bag_set, evaluate_set
from ..engine.symbolic import SymbolicDatabase, symbolic_answer_multiset, symbolic_groups
from ..errors import ReproError, UnsupportedAggregateError
from ..orderings.complete_orderings import CompleteOrdering, enumerate_complete_orderings

#: Semantics under which non-aggregate queries are compared.
SET_SEMANTICS = "set"
BAG_SET_SEMANTICS = "bag-set"


@dataclass
class Counterexample:
    """A witness of non-equivalence.

    ``database`` is a concrete database on which the two queries differ when
    one could be constructed; the symbolic context (subset and ordering) is
    always recorded so the situation can be reproduced.
    """

    database: Optional[Database]
    left_result: object
    right_result: object
    ordering: Optional[CompleteOrdering] = None
    symbolic_atoms: Optional[frozenset] = None

    def __str__(self) -> str:
        parts = [f"left={self.left_result!r}", f"right={self.right_result!r}"]
        if self.database is not None:
            parts.insert(0, f"D={self.database}")
        if self.ordering is not None:
            parts.append(f"L=({self.ordering})")
        return "counterexample: " + ", ".join(parts)


@dataclass
class EquivalenceReport:
    """The outcome of a bounded/local equivalence check with statistics."""

    equivalent: bool
    bound: int
    domain: Domain
    counterexample: Optional[Counterexample] = None
    subsets_examined: int = 0
    orderings_examined: int = 0
    identities_checked: int = 0
    subsets_skipped_by_symmetry: int = 0
    notes: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.equivalent


def build_base(
    first: Query, second: Query, fresh_variable_count: int
) -> tuple[list[Term], list[RelationalAtom], list[Variable]]:
    """The term set ``T`` and atom universe ``BASE`` of Theorem 4.8."""
    constants = sorted(first.constants() | second.constants(), key=lambda c: (str(c)))
    taken_names = {variable.name for variable in first.variables() | second.variables()}
    fresh: list[Variable] = []
    index = 0
    while len(fresh) < fresh_variable_count:
        candidate = Variable(f"_u{index}")
        index += 1
        if candidate.name in taken_names:
            continue
        fresh.append(candidate)
    terms: list[Term] = list(constants) + list(fresh)
    arities = combined_predicate_arities(first, second)
    base: list[RelationalAtom] = []
    for predicate in sorted(arities):
        arity = arities[predicate]
        for arguments in itertools.product(terms, repeat=arity):
            base.append(RelationalAtom(predicate, arguments))
    return terms, base, fresh


def _canonical_subset(
    subset: frozenset[RelationalAtom], fresh: Sequence[Variable]
) -> frozenset[RelationalAtom]:
    """The canonical representative of a subset of BASE under permutations of
    the interchangeable fresh variables (symmetry reduction)."""
    best: Optional[tuple] = None
    best_subset = subset
    for permutation in itertools.permutations(fresh):
        mapping = dict(zip(fresh, permutation))
        renamed = frozenset(atom.substitute(mapping) for atom in subset)
        signature = tuple(sorted(str(atom) for atom in renamed))
        if best is None or signature < best:
            best = signature
            best_subset = renamed
    return best_subset


def _iterate_subsets(
    base: Sequence[RelationalAtom],
    fresh: Sequence[Variable],
    symmetry_reduction: bool,
) -> Iterator[tuple[frozenset[RelationalAtom], bool]]:
    """Yield (subset, skipped) pairs; skipped subsets are symmetry duplicates."""
    for size in range(len(base) + 1):
        for combination in itertools.combinations(base, size):
            subset = frozenset(combination)
            if symmetry_reduction and len(fresh) > 1:
                canonical = _canonical_subset(subset, fresh)
                if canonical != subset:
                    # Only the canonical representative of each orbit under
                    # permutations of the fresh variables is processed.
                    yield subset, True
                    continue
            yield subset, False


def bounded_equivalence(
    first: Query,
    second: Query,
    bound: int,
    domain: Domain = Domain.RATIONALS,
    semantics: str = SET_SEMANTICS,
    symmetry_reduction: bool = True,
    max_subsets: int = 2_000_000,
) -> EquivalenceReport:
    """Decide whether ``first ≡_N second`` for ``N = bound`` (Theorem 4.8).

    For aggregate queries both must carry the same aggregation function, which
    must be order-decidable over the domain.  For non-aggregate queries the
    ``semantics`` parameter selects set or bag-set semantics.
    """
    function = _resolve_function(first, second, domain)
    report = EquivalenceReport(equivalent=True, bound=bound, domain=domain)
    terms, base, fresh = build_base(first, second, bound)
    subset_count = 2 ** len(base)
    if subset_count > max_subsets:
        raise ReproError(
            f"the bounded-equivalence search space has {subset_count} subsets of BASE "
            f"(|BASE| = {len(base)}), exceeding max_subsets={max_subsets}; "
            "reduce the bound or raise max_subsets explicitly"
        )
    orderings = [
        ordering
        for ordering in enumerate_complete_orderings(terms, domain)
        if ordering.is_satisfiable()
    ]
    if not orderings:
        # Degenerate corner: no terms at all (no constants and N = 0).  The
        # only database to compare over is the empty one.
        counterexample = _compare_concrete(first, second, Database(()), function, semantics)
        if counterexample is not None:
            report.equivalent = False
            report.counterexample = counterexample
        return report
    for subset, skipped in _iterate_subsets(base, fresh, symmetry_reduction):
        if skipped:
            report.subsets_skipped_by_symmetry += 1
            continue
        report.subsets_examined += 1
        for ordering in orderings:
            report.orderings_examined += 1
            database = SymbolicDatabase(subset, ordering)
            counterexample = _compare_over(
                first, second, database, function, semantics, report
            )
            if counterexample is not None:
                report.equivalent = False
                report.counterexample = counterexample
                return report
    return report


def local_equivalence(
    first: Query,
    second: Query,
    domain: Domain = Domain.RATIONALS,
    semantics: str = SET_SEMANTICS,
    symmetry_reduction: bool = True,
    max_subsets: int = 2_000_000,
) -> EquivalenceReport:
    """Local equivalence: bounded equivalence with N = τ(q, q') (Section 4)."""
    bound = term_size_of_pair(first, second)
    return bounded_equivalence(
        first,
        second,
        bound,
        domain=domain,
        semantics=semantics,
        symmetry_reduction=symmetry_reduction,
        max_subsets=max_subsets,
    )


def _resolve_function(
    first: Query, second: Query, domain: Domain
) -> Optional[AggregationFunction]:
    if first.is_aggregate != second.is_aggregate:
        raise UnsupportedAggregateError(
            "cannot compare an aggregate query with a non-aggregate query"
        )
    if not first.is_aggregate:
        return None
    assert first.aggregate is not None and second.aggregate is not None
    if first.aggregate.function != second.aggregate.function:
        raise UnsupportedAggregateError(
            f"the queries use different aggregation functions: "
            f"{first.aggregate.function} vs {second.aggregate.function}"
        )
    function = get_function(first.aggregate.function)
    if not function.is_order_decidable_over(domain):
        raise UnsupportedAggregateError(
            f"{function.name} is not order-decidable over {domain.value}; "
            "bounded equivalence is undecidable for this class (Theorem 4.8)"
        )
    return function


def _compare_over(
    first: Query,
    second: Query,
    database: SymbolicDatabase,
    function: Optional[AggregationFunction],
    semantics: str,
    report: EquivalenceReport,
) -> Optional[Counterexample]:
    if function is None:
        return _compare_non_aggregate(first, second, database, semantics)
    left_groups = symbolic_groups(first, database)
    right_groups = symbolic_groups(second, database)
    if set(left_groups) != set(right_groups):
        concrete = database.instantiate()
        return Counterexample(
            database=concrete,
            left_result=evaluate_aggregate(first, concrete, function),
            right_result=evaluate_aggregate(second, concrete, function),
            ordering=database.ordering,
            symbolic_atoms=database.atoms,
        )
    for key in left_groups:
        report.identities_checked += 1
        if not function.decide_ordered_identity(
            database.ordering, left_groups[key], right_groups[key]
        ):
            return _witness_for_identity_failure(first, second, database, function)
    return None


def _compare_concrete(
    first: Query,
    second: Query,
    database: Database,
    function: Optional[AggregationFunction],
    semantics: str,
) -> Optional[Counterexample]:
    """Direct comparison over a single concrete database (degenerate cases)."""
    if function is not None:
        left_result = evaluate_aggregate(first, database, function)
        right_result = evaluate_aggregate(second, database, function)
    elif semantics == BAG_SET_SEMANTICS:
        left_result = evaluate_bag_set(first, database)
        right_result = evaluate_bag_set(second, database)
    else:
        left_result = evaluate_set(first, database)
        right_result = evaluate_set(second, database)
    if left_result == right_result:
        return None
    return Counterexample(database=database, left_result=left_result, right_result=right_result)


def _compare_non_aggregate(
    first: Query, second: Query, database: SymbolicDatabase, semantics: str
) -> Optional[Counterexample]:
    if semantics == SET_SEMANTICS:
        left = set(symbolic_answer_multiset(first, database))
        right = set(symbolic_answer_multiset(second, database))
    elif semantics == BAG_SET_SEMANTICS:
        left = symbolic_answer_multiset(first, database)
        right = symbolic_answer_multiset(second, database)
    else:
        raise ReproError(f"unknown semantics {semantics!r}")
    if left == right:
        return None
    concrete = database.instantiate()
    if semantics == SET_SEMANTICS:
        left_result = evaluate_set(first, concrete)
        right_result = evaluate_set(second, concrete)
    else:
        left_result = evaluate_bag_set(first, concrete)
        right_result = evaluate_bag_set(second, concrete)
    return Counterexample(
        database=concrete,
        left_result=left_result,
        right_result=right_result,
        ordering=database.ordering,
        symbolic_atoms=database.atoms,
    )


def _witness_for_identity_failure(
    first: Query,
    second: Query,
    database: SymbolicDatabase,
    function: AggregationFunction,
    attempts: int = 25,
) -> Counterexample:
    """Search for a concrete instantiation on which the two queries visibly
    disagree.  The canonical instantiation is tried first, followed by random
    realizations of the ordering; for non-shiftable functions a particular
    instantiation may coincidentally agree, in which case only the symbolic
    context is reported."""
    import random

    candidates = [database.ordering.instantiate()]
    rng = random.Random(0)
    for _ in range(attempts):
        candidates.append(random_realization(database.ordering, rng))
    for assignment in candidates:
        facts = []
        for atom in database.atoms:
            values = tuple(
                argument.value if isinstance(argument, Constant) else assignment[argument]
                for argument in atom.arguments
            )
            facts.append((atom.predicate, values))
        concrete = Database(facts)
        left_result = evaluate_aggregate(first, concrete, function)
        right_result = evaluate_aggregate(second, concrete, function)
        if left_result != right_result:
            return Counterexample(
                database=concrete,
                left_result=left_result,
                right_result=right_result,
                ordering=database.ordering,
                symbolic_atoms=database.atoms,
            )
    return Counterexample(
        database=None,
        left_result="(symbolic disagreement)",
        right_result="(symbolic disagreement)",
        ordering=database.ordering,
        symbolic_atoms=database.atoms,
    )
