"""Bounded and local equivalence (Section 4 of the paper).

Two queries are *N-equivalent* when they return identical results over every
database whose carrier has at most N constants; they are *locally equivalent*
when they are τ(q, q')-equivalent, where τ is the term size of the pair
(Section 4).  Theorem 4.8 shows that bounded equivalence of α-queries is
decidable exactly when α is order-decidable, and its proof is a procedure:

1. Let ``T`` be the constants of both queries plus ``N`` fresh variables, and
   ``BASE`` the set of all atoms over ``T`` built from the queries' predicates.
2. For every subset ``S ⊆ BASE`` and every complete ordering ``L`` of ``T``,
   evaluate both queries symbolically over ``S_L``.
3. The queries agree on all instantiations of ``S`` by assignments satisfying
   ``L`` iff they produce the same group keys and, for every group, the
   ordered identity ``L → α(B) = α(B')`` is valid.

This module implements that procedure, plus the bounded-equivalence variants
for non-aggregate queries under set and bag-set semantics that the other
decision procedures build on.

Two search-space reductions keep the double-exponential procedure tractable:

* **Orbit-canonical subset enumeration.**  The symmetric group on the fresh
  variables acts on BASE; only one representative per orbit of subsets needs
  to be checked.  :class:`CanonicalSubsetEnumerator` generates exactly the
  canonical representatives by orderly generation (grow subsets by appending
  larger atoms, prune non-canonical prefixes), so nothing pays the per-subset
  ``|fresh|!`` scan of the legacy :func:`_canonical_subset` reference (kept
  for ablation and as the oracle the enumerator is pinned against).
* **Ordering classes.**  When neither query contains a comparison, the
  symbolic evaluation of ``S_L`` depends only on the *blocks* of ``L`` (which
  terms are equal), not on the order of the blocks; orderings are grouped by
  their block partition and each class is evaluated once.

The per-(subset, ordering) checks are independent, so the whole search can be
sharded across processes; ``bounded_equivalence(..., workers=N)`` routes
through :mod:`repro.parallel`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from ..aggregates.functions import AggregationFunction, get_function
from ..aggregates.properties import random_realization
from ..datalog.atoms import RelationalAtom
from ..datalog.database import Database
from ..datalog.queries import (
    Query,
    catalog_predicate_arities,
    term_size_of_pair,
)
from ..datalog.terms import Constant, Term, Variable
from ..domains import Domain
from ..engine.evaluator import evaluate_aggregate, evaluate_bag_set, evaluate_set
from ..engine.symbolic import (
    SymbolicDatabase,
    compare_symbolic_answers,
    symbolic_answer_multiset,
    symbolic_group_index,
    symbolic_groups,
)
from ..errors import ReproError, SearchSpaceBudgetError, UnsupportedAggregateError
from ..obs import REGISTRY as _OBS
from ..obs import span as _span
from ..orderings.complete_orderings import CompleteOrdering, enumerate_complete_orderings

#: Semantics under which non-aggregate queries are compared.
SET_SEMANTICS = "set"
BAG_SET_SEMANTICS = "bag-set"

#: Enumeration strategies for the subset search.
CANONICAL_ENUMERATION = "canonical"  # orbit representatives only (orderly generation)
FULL_ENUMERATION = "full"  # every subset of BASE, no symmetry reduction
SCAN_ENUMERATION = "scan"  # legacy: every subset, canonicalized by a |fresh|! scan

#: Below this many subsets a parallel run is not worth the process overhead.
DEFAULT_PARALLEL_THRESHOLD = 64


@dataclass
class Counterexample:
    """A witness of non-equivalence.

    ``database`` is a concrete database on which the two queries differ when
    one could be constructed; the symbolic context (subset and ordering) is
    always recorded so the situation can be reproduced.
    """

    database: Optional[Database]
    left_result: object
    right_result: object
    ordering: Optional[CompleteOrdering] = None
    symbolic_atoms: Optional[frozenset] = None

    def __str__(self) -> str:
        parts = [f"left={self.left_result!r}", f"right={self.right_result!r}"]
        if self.database is not None:
            parts.insert(0, f"D={self.database}")
        if self.ordering is not None:
            parts.append(f"L=({self.ordering})")
        return "counterexample: " + ", ".join(parts)


@dataclass
class EquivalenceReport:
    """The outcome of a bounded/local equivalence check with statistics."""

    equivalent: bool
    bound: int
    domain: Domain
    counterexample: Optional[Counterexample] = None
    subsets_examined: int = 0
    orderings_examined: int = 0
    identities_checked: int = 0
    subsets_skipped_by_symmetry: int = 0
    workers_used: int = 1
    notes: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.equivalent


@dataclass(frozen=True)
class SharedBaseContext:
    """A catalog-wide BASE recipe shared by every pair of a query catalog.

    Checking a pair over the *catalog's* constants with the *catalog's* fresh
    bound is sound: it enlarges the set of small databases examined, so an
    EQUIVALENT verdict still implies τ(pair)-equivalence (the bound dominates
    every pair's τ) and a counterexample is always a concrete witness.  The
    payoff is that every pair sharing a query also shares the (subset,
    ordering) stream, so the symbolic engine's memoized Γ(q, S_L) is reused
    across the whole catalog instead of being recomputed per pair.
    """

    constants: tuple[Constant, ...]
    bound: int

    @classmethod
    def from_catalog(cls, queries: Iterable[Query]) -> Optional["SharedBaseContext"]:
        """The shared context of a catalog, or ``None`` when no two queries of
        the catalog are comparable (fewer than two of the same shape)."""
        catalog = list(queries)
        constants: set[Constant] = set()
        for query in catalog:
            constants |= query.constants()
        bound = 0
        comparable = False
        for position, first in enumerate(catalog):
            for second in catalog[position + 1 :]:
                if first.is_aggregate == second.is_aggregate:
                    comparable = True
                    bound = max(bound, term_size_of_pair(first, second))
        if not comparable:
            return None
        return cls(tuple(sorted(constants, key=str)), bound)


def build_catalog_base(
    queries: Sequence[Query],
    fresh_variable_count: int,
    extra_constants: Iterable[Constant] = (),
) -> tuple[list[Term], list[RelationalAtom], list[Variable]]:
    """The term set ``T`` and atom universe ``BASE`` of Theorem 4.8, built
    over the predicates and constants of a whole catalog of queries.

    ``extra_constants`` widens ``T`` beyond the queries' own constants (used
    by :class:`SharedBaseContext` to align the BASE across a whole catalog).
    """
    all_constants: set[Constant] = set(extra_constants)
    taken_names: set[str] = set()
    for query in queries:
        all_constants |= query.constants()
        taken_names |= {variable.name for variable in query.variables()}
    constants = sorted(all_constants, key=lambda c: (str(c)))
    fresh: list[Variable] = []
    index = 0
    while len(fresh) < fresh_variable_count:
        candidate = Variable(f"_u{index}")
        index += 1
        if candidate.name in taken_names:
            continue
        fresh.append(candidate)
    terms: list[Term] = list(constants) + list(fresh)
    arities = catalog_predicate_arities(queries)
    base: list[RelationalAtom] = []
    for predicate in sorted(arities):
        arity = arities[predicate]
        for arguments in itertools.product(terms, repeat=arity):
            base.append(RelationalAtom(predicate, arguments))
    return terms, base, fresh


def build_base(
    first: Query,
    second: Query,
    fresh_variable_count: int,
    extra_constants: Iterable[Constant] = (),
) -> tuple[list[Term], list[RelationalAtom], list[Variable]]:
    """The term set ``T`` and atom universe ``BASE`` of Theorem 4.8 for one
    pair of queries (the two-query case of :func:`build_catalog_base`)."""
    return build_catalog_base((first, second), fresh_variable_count, extra_constants)


# ----------------------------------------------------------------------
# Subset enumeration: orbit-canonical (orderly generation) and legacy scan
# ----------------------------------------------------------------------
def canonical_base_order(base: Sequence[RelationalAtom]) -> list[RelationalAtom]:
    """BASE sorted by the string form of its atoms — the fixed total order the
    canonical enumeration (and the legacy scan signature) is defined against."""
    return sorted(base, key=str)


def fresh_permutation_maps(
    base: Sequence[RelationalAtom], fresh: Sequence[Variable]
) -> list[tuple[int, ...]]:
    """The action of every non-identity permutation of the fresh variables on
    BASE, as index maps (``map[i]`` is the index of the image of atom ``i``).

    BASE is closed under renaming fresh variables to fresh variables, so every
    image index exists.
    """
    position = {atom: index for index, atom in enumerate(base)}
    identity = tuple(fresh)
    maps: list[tuple[int, ...]] = []
    for permutation in itertools.permutations(fresh):
        if permutation == identity:
            continue
        mapping = dict(zip(fresh, permutation))
        maps.append(tuple(position[atom.substitute(mapping)] for atom in base))
    return maps


class CanonicalSubsetEnumerator:
    """Generate exactly one representative per orbit of subsets of BASE under
    permutations of the fresh variables.

    A subset is *canonical* when its sorted index tuple (indices into the
    str-sorted BASE) is lexicographically minimal in its orbit — the same
    representative the legacy :func:`_canonical_subset` scan selects.  The
    enumerator uses orderly generation: subsets grow by appending an atom
    larger than their maximum, and a prefix that is not canonical is pruned
    together with its entire subtree.  This is sound because canonicity is
    hereditary: removing the largest element of a canonical subset leaves a
    canonical subset (equivalently, every extension of a non-canonical prefix
    by larger atoms is non-canonical).

    Subsets are yielded in (size, lexicographic) order so counterexamples on
    small databases surface first, matching the legacy enumeration.  After a
    complete iteration, ``skipped`` holds the exact number of non-canonical
    subsets that were never generated.
    """

    def __init__(self, base: Sequence[RelationalAtom], fresh: Sequence[Variable]):
        self.base = canonical_base_order(base)
        self.maps = fresh_permutation_maps(self.base, fresh)
        self.skipped = 0

    def _is_canonical(self, indices: tuple[int, ...]) -> bool:
        for permutation in self.maps:
            mapped = sorted(permutation[i] for i in indices)
            for image, original in zip(mapped, indices):
                if image < original:
                    return False
                if image > original:
                    break
        return True

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        self.skipped = 0
        size = len(self.base)
        level: list[tuple[int, ...]] = [()]
        yield ()
        while level:
            next_level: list[tuple[int, ...]] = []
            for prefix in level:
                start = prefix[-1] + 1 if prefix else 0
                for atom_index in range(start, size):
                    candidate = prefix + (atom_index,)
                    if self._is_canonical(candidate):
                        next_level.append(candidate)
                        yield candidate
                    else:
                        # The candidate and every extension of it by larger
                        # atoms are non-canonical (heredity): count the whole
                        # pruned subtree.
                        self.skipped += 1 << (size - 1 - atom_index)
            level = next_level

    def subsets(self) -> Iterator[frozenset[RelationalAtom]]:
        base = self.base
        for indices in self:
            yield frozenset(base[i] for i in indices)


def _canonical_subset(
    subset: frozenset[RelationalAtom], fresh: Sequence[Variable]
) -> frozenset[RelationalAtom]:
    """The canonical representative of a subset of BASE under permutations of
    the interchangeable fresh variables.

    Legacy reference implementation: a full ``|fresh|!`` scan per subset.  The
    production path is :class:`CanonicalSubsetEnumerator`, which generates
    only canonical representatives; this function remains as the oracle the
    enumerator is pinned against and for the ``scan`` ablation mode.
    """
    best: Optional[tuple] = None
    best_subset = subset
    for permutation in itertools.permutations(fresh):
        mapping = dict(zip(fresh, permutation))
        renamed = frozenset(atom.substitute(mapping) for atom in subset)
        signature = tuple(sorted(str(atom) for atom in renamed))
        if best is None or signature < best:
            best = signature
            best_subset = renamed
    return best_subset


def _iterate_subsets(
    base: Sequence[RelationalAtom],
    fresh: Sequence[Variable],
    symmetry_reduction: bool,
) -> Iterator[tuple[frozenset[RelationalAtom], bool]]:
    """Yield (subset, skipped) pairs; skipped subsets are symmetry duplicates.

    Legacy enumeration (every subset tested, canonical ones kept), retained
    for the ``scan`` ablation mode and the pinning tests.
    """
    for size in range(len(base) + 1):
        for combination in itertools.combinations(base, size):
            subset = frozenset(combination)
            if symmetry_reduction and len(fresh) > 1:
                canonical = _canonical_subset(subset, fresh)
                if canonical != subset:
                    # Only the canonical representative of each orbit under
                    # permutations of the fresh variables is processed.
                    yield subset, True
                    continue
            yield subset, False


# ----------------------------------------------------------------------
# Run preparation shared by the serial path and the parallel workers
# ----------------------------------------------------------------------
#: An ordering class: a representative ordering plus every (position,
#: ordering) member sharing its block partition.
OrderingClass = tuple[CompleteOrdering, tuple[tuple[int, CompleteOrdering], ...]]


@dataclass
class BoundedRunSetup:
    """Everything a (subset, ordering) check needs, derivable deterministically
    from (first, second, bound, domain, semantics, extra_constants) — workers
    rebuild it locally instead of shipping it through pickles."""

    first: Query
    second: Query
    function: Optional[AggregationFunction]
    semantics: str
    terms: list[Term]
    base: list[RelationalAtom]  # canonical (str-sorted) order
    fresh: list[Variable]
    orderings: list[CompleteOrdering]
    ordering_classes: tuple[OrderingClass, ...]
    comparison_free: bool


def _pair_is_comparison_free(first: Query, second: Query) -> bool:
    return not any(
        disjunct.comparisons for query in (first, second) for disjunct in query.disjuncts
    )


def _group_orderings(
    orderings: Sequence[CompleteOrdering], comparison_free: bool
) -> tuple[OrderingClass, ...]:
    """Group orderings by their block partition.

    For comparison-free query pairs, symbolic evaluation over ``S_L`` depends
    only on which terms ``L`` equates (constants canonicalize to themselves
    and block representatives ignore block order), so Γ and the groups are
    computed once per class; the per-ordering work shrinks to the ordered
    identities.  With comparisons present every class is a singleton.
    """
    if not comparison_free:
        return tuple(
            (ordering, ((position, ordering),))
            for position, ordering in enumerate(orderings)
        )
    classes: dict[frozenset, list[tuple[int, CompleteOrdering]]] = {}
    order: list[frozenset] = []
    for position, ordering in enumerate(orderings):
        key = frozenset(ordering.blocks)
        if key not in classes:
            classes[key] = []
            order.append(key)
        classes[key].append((position, ordering))
    return tuple((classes[key][0][1], tuple(classes[key])) for key in order)


def prepare_bounded_run(
    first: Query,
    second: Query,
    bound: int,
    domain: Domain,
    semantics: str,
    extra_constants: Iterable[Constant] = (),
) -> BoundedRunSetup:
    """Validate the pair and build the shared run state (terms, BASE in
    canonical order, satisfiable orderings grouped into classes)."""
    function = _resolve_function(first, second, domain)
    terms, base, fresh = build_base(first, second, bound, extra_constants)
    orderings = [
        ordering
        for ordering in enumerate_complete_orderings(terms, domain)
        if ordering.is_satisfiable()
    ]
    comparison_free = _pair_is_comparison_free(first, second)
    return BoundedRunSetup(
        first=first,
        second=second,
        function=function,
        semantics=semantics,
        terms=terms,
        base=canonical_base_order(base),
        fresh=fresh,
        orderings=orderings,
        ordering_classes=_group_orderings(orderings, comparison_free),
        comparison_free=comparison_free,
    )


@dataclass
class CheckStats:
    """Statistics accumulated by the subset checks (picklable, mergeable)."""

    subsets_examined: int = 0
    orderings_examined: int = 0
    identities_checked: int = 0

    def merge_into(self, report: EquivalenceReport) -> None:
        report.subsets_examined += self.subsets_examined
        report.orderings_examined += self.orderings_examined
        report.identities_checked += self.identities_checked

    def merge(self, other: "CheckStats") -> None:
        self.subsets_examined += other.subsets_examined
        self.orderings_examined += other.orderings_examined
        self.identities_checked += other.identities_checked


def _record_search_counters(
    subsets_examined: int,
    orderings_examined: int,
    identities_checked: int,
    subsets_skipped: int,
) -> None:
    """Fold one finished search's effort into the metrics registry.

    Called exactly once per completed enumeration, from whichever process ran
    it, with totals the search already accumulated (its ``CheckStats`` /
    ``EquivalenceReport``) — never per subset, so the hot loops stay
    uninstrumented and a parallel run's registry totals equal the serial
    run's whenever the merged reports do.  A search that completes inside a
    pool worker records into the worker's registry; the delta rides home on
    the task outcome and lands under the parent's ``worker.`` scope.
    """
    if subsets_examined:
        _OBS.inc("sweep.subsets.examined", subsets_examined)
    if orderings_examined:
        _OBS.inc("sweep.orderings.examined", orderings_examined)
    if identities_checked:
        _OBS.inc("sweep.identities.checked", identities_checked)
    if subsets_skipped:
        _OBS.inc("sweep.subsets.skipped", subsets_skipped)


def check_subset(
    setup: BoundedRunSetup,
    subset: frozenset[RelationalAtom],
    stats,
    seed: int = 0,
) -> Optional[tuple[int, Counterexample]]:
    """Check one subset of BASE against every ordering class.

    Returns ``(ordering_position, counterexample)`` for the first failing
    ordering (in enumeration order within each class), or ``None`` when the
    queries agree on the subset.  ``stats`` needs ``orderings_examined`` and
    ``identities_checked`` counters (an :class:`EquivalenceReport` or a
    :class:`CheckStats`).
    """
    first, second, function, semantics = (
        setup.first,
        setup.second,
        setup.function,
        setup.semantics,
    )
    for representative, members in setup.ordering_classes:
        database = SymbolicDatabase(subset, representative)
        if function is None:
            stats.orderings_examined += len(members)
            counterexample = _compare_non_aggregate(first, second, database, semantics)
            if counterexample is not None:
                return members[0][0], counterexample
            continue
        left_groups = symbolic_groups(first, database)
        right_groups = symbolic_groups(second, database)
        if set(left_groups) != set(right_groups):
            stats.orderings_examined += len(members)
            concrete = database.instantiate()
            return members[0][0], Counterexample(
                database=concrete,
                left_result=evaluate_aggregate(first, concrete, function),
                right_result=evaluate_aggregate(second, concrete, function),
                ordering=database.ordering,
                symbolic_atoms=database.atoms,
            )
        for position, ordering in members:
            stats.orderings_examined += 1
            for key in left_groups:
                stats.identities_checked += 1
                if not function.decide_ordered_identity(
                    ordering, left_groups[key], right_groups[key]
                ):
                    witness_database = SymbolicDatabase(subset, ordering)
                    return position, _witness_for_identity_failure(
                        first, second, witness_database, function, seed=seed
                    )
    return None


# ----------------------------------------------------------------------
# Single-sweep catalog checks
# ----------------------------------------------------------------------
#: Subsets processed by the parent before forking a sweep pool: they settle
#: quick counterexamples without paying for the pool, and they pre-warm the
#: shared Γ / comparison caches (fork inherits them copy-on-write), so the
#: workers stop re-deriving the heavily shared merged-partition signatures.
#: Under the compiled engine the prefix also populates the module-level
#: kernel and columnar-store caches (:mod:`repro.engine.compile` /
#: :mod:`repro.engine.columnar`), so forked workers start with every plan of
#: the sweep already code-generated instead of compiling per process.
DEFAULT_SWEEP_WARM_PREFIX = 64


@dataclass
class SweepRunSetup:
    """Everything a sweep-level (subset, ordering) check needs, derivable
    deterministically from (queries, bound, domain, semantics,
    extra_constants) — workers rebuild it locally instead of shipping it
    through pickles."""

    queries: dict[str, Query]
    function: Optional[AggregationFunction]
    semantics: str
    terms: list[Term]
    base: list[RelationalAtom]  # canonical (str-sorted) order
    fresh: list[Variable]
    orderings: list[CompleteOrdering]
    ordering_classes: tuple[OrderingClass, ...]
    comparison_free: bool


def _catalog_is_comparison_free(queries: Iterable[Query]) -> bool:
    return not any(
        disjunct.comparisons for query in queries for disjunct in query.disjuncts
    )


def prepare_sweep_run(
    queries: "dict[str, Query] | Sequence[tuple[str, Query]]",
    bound: int,
    domain: Domain,
    semantics: str,
    extra_constants: Iterable[Constant] = (),
) -> SweepRunSetup:
    """Validate the catalog and build the shared run state (terms, BASE in
    canonical order, satisfiable orderings grouped into classes) for a
    single-sweep check of every assigned pair."""
    catalog = dict(queries)
    members = list(catalog.values())
    function = _resolve_catalog_function(members, domain)
    terms, base, fresh = build_catalog_base(members, bound, extra_constants)
    orderings = [
        ordering
        for ordering in enumerate_complete_orderings(terms, domain)
        if ordering.is_satisfiable()
    ]
    comparison_free = _catalog_is_comparison_free(members)
    return SweepRunSetup(
        queries=catalog,
        function=function,
        semantics=semantics,
        terms=terms,
        base=canonical_base_order(base),
        fresh=fresh,
        orderings=orderings,
        ordering_classes=_group_orderings(orderings, comparison_free),
        comparison_free=comparison_free,
    )


def check_subset_sweep(
    setup: SweepRunSetup,
    subset: frozenset[RelationalAtom],
    pairs: Sequence[tuple[str, str]],
    stats,
    pair_seeds: "dict[tuple[str, str], int] | None" = None,
) -> list[tuple[tuple[str, str], int, Counterexample]]:
    """Check every still-open catalog pair against one subset of BASE.

    The sub-catalog is evaluated *once* per ordering class
    (:func:`repro.engine.symbolic.symbolic_groups` keyed by restricted
    relation signatures) and the pairs are compared in-loop through the
    group-comparison kernels — the Γ work is O(catalog) instead of O(pairs).
    Returns ``(pair, ordering_position, counterexample)`` settlements for the
    pairs that fail on this subset; pairs absent from the result remain open.

    Statistics count the *shared* work actually performed (one evaluation per
    (subset, ordering) regardless of how many pairs consume it), so sweep
    reports are not comparable count-for-count with per-pair reports.
    """
    function, semantics = setup.function, setup.semantics
    seeds = pair_seeds or {}
    settled: list[tuple[tuple[str, str], int, Counterexample]] = []
    open_pairs = list(pairs)
    for representative, members in setup.ordering_classes:
        if not open_pairs:
            break
        stats.orderings_examined += len(members)
        database = SymbolicDatabase(subset, representative)
        indexes: dict[str, dict] = {}
        if function is not None:
            # One group index per *query* per ordering class — the in-loop
            # pair comparisons below reuse them, so the Γ-derived work stays
            # O(catalog) even when the group carries comparisons and the
            # signature-keyed caches (and their interning, which turns the
            # agreement check into an identity check) cannot apply.
            for name in {name for pair in open_pairs for name in pair}:
                indexes[name] = symbolic_group_index(setup.queries[name], database)
        still_open: list[tuple[str, str]] = []
        for pair in open_pairs:
            first, second = setup.queries[pair[0]], setup.queries[pair[1]]
            if function is None:
                if compare_symbolic_answers(first, second, database, semantics):
                    still_open.append(pair)
                    continue
                counterexample = _compare_non_aggregate(first, second, database, semantics)
                assert counterexample is not None
                settled.append((pair, members[0][0], counterexample))
                continue
            left_index, right_index = indexes[pair[0]], indexes[pair[1]]
            if left_index is right_index or left_index == right_index:
                # Identical bags in every group: α(B) = α(B) holds under any
                # ordering of the class, no identity checks needed.
                still_open.append(pair)
                continue
            if left_index.keys() != right_index.keys():
                concrete = database.instantiate()
                settled.append(
                    (
                        pair,
                        members[0][0],
                        Counterexample(
                            database=concrete,
                            left_result=evaluate_aggregate(first, concrete, function),
                            right_result=evaluate_aggregate(second, concrete, function),
                            ordering=database.ordering,
                            symbolic_atoms=database.atoms,
                        ),
                    )
                )
                continue
            left_groups = symbolic_groups(first, database)
            right_groups = symbolic_groups(second, database)
            residual = [
                (tuple(left_groups[group_key]), tuple(right_groups[group_key]))
                for group_key in left_groups
                if left_index[group_key] != right_index[group_key]
            ]
            hit: Optional[tuple[int, Counterexample]] = None
            for position, ordering in members:
                for left_bag, right_bag in residual:
                    stats.identities_checked += 1
                    if not function.decide_ordered_identity(
                        ordering, list(left_bag), list(right_bag)
                    ):
                        witness_database = SymbolicDatabase(subset, ordering)
                        hit = (
                            position,
                            _witness_for_identity_failure(
                                first,
                                second,
                                witness_database,
                                function,
                                seed=seeds.get(pair, 0),
                            ),
                        )
                        break
                if hit is not None:
                    break
            if hit is not None:
                settled.append((pair, hit[0], hit[1]))
            else:
                still_open.append(pair)
        open_pairs = still_open
    return settled


def _executor_wants_warm_prefix(executor) -> bool:
    """Whether the sweep should run its serial warm prefix before handing the
    stream to ``executor``: always for the default per-call pool (``None``),
    and for session executors exactly while their lazy fork is still ahead."""
    if executor is None:
        return True
    probe = getattr(executor, "wants_warm_prefix", None)
    return bool(probe()) if callable(probe) else False


def sweep_equivalence(
    queries: "dict[str, Query] | Sequence[tuple[str, Query]]",
    pairs: Sequence[tuple[str, str]],
    bound: int,
    domain: Domain = Domain.RATIONALS,
    semantics: str = SET_SEMANTICS,
    max_subsets: int = 2_000_000,
    *,
    workers: Optional[int] = None,
    executor=None,
    seed: Optional[int] = None,
    parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
    warm_prefix: int = DEFAULT_SWEEP_WARM_PREFIX,
    extra_constants: Iterable[Constant] = (),
    ship: str = "ranges",
) -> dict[tuple[str, str], EquivalenceReport]:
    """Decide ``first ≡_N second`` for every assigned pair of a sub-catalog
    with **one** subset/ordering enumeration (the single-sweep variant of
    :func:`bounded_equivalence`).

    All queries must share one shape (and, for aggregates, one
    order-decidable function); ``bound`` must dominate τ(q, q') for every
    assigned pair, so the per-pair verdict coincides with the pair-local
    bounded check (N-equivalence for N ≥ τ is equivalence, Section 4).  Each
    pair settles at its first failing (subset, ordering) — the same position
    the pair-local enumeration would find when the BASEs coincide — and the
    sweep stops as soon as every pair is settled.

    ``seed`` is the catalog-level seed; per-pair witness searches use the
    same derived seeds as the pairwise matrix, so witnesses agree with the
    pair path wherever the enumerations align.  ``workers > 1`` shards the
    subset stream across processes after a serial *warm prefix* that
    pre-warms the shared caches the forked workers inherit; ``ship``
    selects the shard payload (``"ranges"``, the default, ships ``(start,
    count)`` positions and re-enumerates per worker; ``"rows"`` ships the
    materialized subset rows — the differential reference).

    .. deprecated:: callers holding a catalog across calls should reach this
       through :meth:`repro.session.Workspace.equivalences`, which plans the
       sweeps once per delta, keeps the pool alive (``executor=`` a
       :class:`~repro.parallel.executor.PersistentProcessExecutor`), and
       never re-decides a settled pair.
    """
    catalog = dict(queries)
    pair_list = [tuple(pair) for pair in pairs]
    for name_a, name_b in pair_list:
        if name_a not in catalog or name_b not in catalog:
            raise ReproError(f"sweep pair ({name_a!r}, {name_b!r}) names an unknown query")
    members = list(catalog.values())
    _resolve_catalog_function(members, domain)
    base_size = _catalog_base_size(members, bound, extra_constants)
    subset_count = 2**base_size
    if subset_count > max_subsets:
        raise SearchSpaceBudgetError(
            f"the catalog-sweep search space has {subset_count} subsets of BASE "
            f"(|BASE| = {base_size}), exceeding max_subsets={max_subsets}; "
            "reduce the bound, shrink the sweep group, or raise max_subsets"
        )
    extra_constants = tuple(extra_constants)
    setup = prepare_sweep_run(catalog, bound, domain, semantics, extra_constants)

    from ..parallel.tasks import derive_pair_seed

    pair_seeds = {
        pair: derive_pair_seed(seed, pair[0], pair[1]) or 0 for pair in pair_list
    }
    reports = {
        pair: EquivalenceReport(equivalent=True, bound=bound, domain=domain)
        for pair in pair_list
    }

    def settle(pair, counterexample) -> None:
        report = reports[pair]
        report.equivalent = False
        report.counterexample = counterexample

    if not setup.orderings:
        # Degenerate corner: no terms at all (no constants and N = 0).  The
        # only database to compare over is the empty one.
        empty = Database(())
        for pair in pair_list:
            counterexample = _compare_concrete(
                catalog[pair[0]], catalog[pair[1]], empty, setup.function, semantics
            )
            if counterexample is not None:
                settle(pair, counterexample)
        return reports

    stats = CheckStats()
    enumerator = CanonicalSubsetEnumerator(setup.base, setup.fresh)
    open_pairs: list[tuple[str, str]] = list(pair_list)

    if workers is None:
        from ..parallel.executor import default_workers, in_worker

        workers = 1 if in_worker() else default_workers()

    def check_serial(subsets: Iterable[tuple[int, ...]]) -> None:
        for indices in subsets:
            if not open_pairs:
                break
            stats.subsets_examined += 1
            hits = check_subset_sweep(
                setup, frozenset(base[i] for i in indices), open_pairs, stats, pair_seeds
            )
            for pair, _ordering_position, counterexample in hits:
                settle(pair, counterexample)
                open_pairs.remove(pair)

    base = setup.base
    with _span(
        "sweep.enumerate",
        queries=len(catalog),
        pairs=len(pair_list),
        bound=bound,
        base=len(base),
    ) as sweep_span:
        if workers > 1 or executor is not None:
            subset_list = list(enumerator)
            if executor is not None or len(subset_list) >= parallel_threshold:
                # Warm prefix: the parent settles the small subsets itself
                # (their merged-partition signatures are the most shared
                # entries of the Γ and comparison caches) before forking, so
                # every worker inherits a warm cache copy-on-write instead of
                # re-deriving it.  The same prefix compiles the sweep's plan
                # kernels, which forked workers likewise inherit for free.
                # Session executors whose pool forks lazily on first use (see
                # :meth:`repro.parallel.executor.PersistentProcessExecutor.wants_warm_prefix`)
                # opt in for the run that performs the fork; an executor whose
                # pool already exists skips the prefix — its workers carry
                # their own accumulated caches.
                prefix = (
                    subset_list[: max(0, warm_prefix)]
                    if _executor_wants_warm_prefix(executor)
                    else []
                )
                check_serial(prefix)
                remaining = subset_list[len(prefix) :]
                if open_pairs and remaining:
                    from ..parallel.tasks import parallel_sweep_search

                    parallel_sweep_search(
                        queries=tuple(catalog.items()),
                        pairs=tuple(open_pairs),
                        bound=bound,
                        domain=domain,
                        semantics=semantics,
                        extra_constants=extra_constants,
                        subsets=[
                            (len(prefix) + offset, indices)
                            for offset, indices in enumerate(remaining)
                        ],
                        reports=reports,
                        stats=stats,
                        workers=workers,
                        executor=executor,
                        seed=seed,
                        ship=ship,
                    )
            else:
                check_serial(subset_list)
        else:
            check_serial(enumerator)
        sweep_span.note(
            subsets=stats.subsets_examined, skipped=enumerator.skipped
        )

    # One registry record per sweep: ``stats`` already holds the merged
    # totals (parent prefix + serial tail + every worker's shipped stats),
    # while each *report* below receives a copy of the same group totals —
    # recording from the reports would multiply the group's effort by its
    # pair count.
    _record_search_counters(
        stats.subsets_examined,
        stats.orderings_examined,
        stats.identities_checked,
        enumerator.skipped,
    )

    for report in reports.values():
        stats.merge_into(report)
        report.subsets_skipped_by_symmetry = enumerator.skipped
        report.notes.append(
            f"single-sweep over {len(catalog)} queries / {len(pair_list)} pairs"
        )
    return reports


# ----------------------------------------------------------------------
# The decision procedure
# ----------------------------------------------------------------------
def bounded_equivalence(
    first: Query,
    second: Query,
    bound: int,
    domain: Domain = Domain.RATIONALS,
    semantics: str = SET_SEMANTICS,
    symmetry_reduction: bool = True,
    max_subsets: int = 2_000_000,
    *,
    enumeration: Optional[str] = None,
    workers: Optional[int] = None,
    executor=None,
    seed: int = 0,
    parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
    extra_constants: Iterable[Constant] = (),
) -> EquivalenceReport:
    """Decide whether ``first ≡_N second`` for ``N = bound`` (Theorem 4.8).

    For aggregate queries both must carry the same aggregation function, which
    must be order-decidable over the domain.  For non-aggregate queries the
    ``semantics`` parameter selects set or bag-set semantics.

    ``enumeration`` selects the subset strategy: ``"canonical"`` (default,
    orbit representatives by orderly generation), ``"full"`` (no symmetry
    reduction), or ``"scan"`` (the legacy per-subset permutation scan, kept
    for ablation).  ``workers > 1`` shards the canonical subsets across a
    process pool via :mod:`repro.parallel`; ``seed`` makes the fallback
    witness search reproducible regardless of worker scheduling.
    """
    mode = enumeration
    if mode is None:
        mode = CANONICAL_ENUMERATION if symmetry_reduction else FULL_ENUMERATION
    elif not symmetry_reduction and mode in (CANONICAL_ENUMERATION, SCAN_ENUMERATION):
        mode = FULL_ENUMERATION
    if mode not in (CANONICAL_ENUMERATION, FULL_ENUMERATION, SCAN_ENUMERATION):
        raise ReproError(f"unknown enumeration mode {mode!r}")

    extra_constants = tuple(extra_constants)
    # Validate the pair, then budget-check the subset space arithmetically
    # BEFORE enumerating orderings — Fubini(|T|) ordering enumeration on an
    # over-budget instance would burn minutes just to reach the guard.
    _resolve_function(first, second, domain)
    base_size = _base_size(first, second, bound, extra_constants)
    subset_count = 2**base_size
    if subset_count > max_subsets:
        raise SearchSpaceBudgetError(
            f"the bounded-equivalence search space has {subset_count} subsets of BASE "
            f"(|BASE| = {base_size}), exceeding max_subsets={max_subsets}; "
            "reduce the bound or raise max_subsets explicitly"
        )
    setup = prepare_bounded_run(first, second, bound, domain, semantics, extra_constants)
    report = EquivalenceReport(equivalent=True, bound=bound, domain=domain)
    if not setup.orderings:
        # Degenerate corner: no terms at all (no constants and N = 0).  The
        # only database to compare over is the empty one.
        counterexample = _compare_concrete(
            first, second, Database(()), setup.function, semantics
        )
        if counterexample is not None:
            report.equivalent = False
            report.counterexample = counterexample
        return report

    if mode == SCAN_ENUMERATION:
        return _finish_bounded_report(_scan_bounded_search(setup, report, seed))

    enumerator: Optional[CanonicalSubsetEnumerator] = None
    if mode == CANONICAL_ENUMERATION:
        enumerator = CanonicalSubsetEnumerator(setup.base, setup.fresh)
        subsets: Iterable[tuple[int, ...]] = iter(enumerator)
    else:
        subsets = (
            combination
            for size in range(len(setup.base) + 1)
            for combination in itertools.combinations(range(len(setup.base)), size)
        )

    if workers is None:
        from ..parallel.executor import default_workers, in_worker

        workers = 1 if in_worker() else default_workers()
    if workers > 1 or executor is not None:
        # Sharding requires the materialized subset stream.  An explicitly
        # supplied executor is always honored; with plain ``workers=N`` tiny
        # spaces stay serial (over the already-built list) to skip the pool
        # overhead.
        subset_list = list(subsets)
        if enumerator is not None:
            report.subsets_skipped_by_symmetry = enumerator.skipped
        if executor is not None or len(subset_list) >= parallel_threshold:
            from ..parallel.tasks import parallel_bounded_search

            return _finish_bounded_report(
                parallel_bounded_search(
                    first=first,
                    second=second,
                    bound=bound,
                    domain=domain,
                    semantics=semantics,
                    extra_constants=extra_constants,
                    subsets=subset_list,
                    report=report,
                    workers=workers,
                    executor=executor,
                    seed=seed,
                )
            )
        subsets = iter(subset_list)

    # Serial path: enumerate lazily, so an early counterexample (often on a
    # tiny subset) is reported before the rest of the space is generated.
    base = setup.base
    with _span("bounded.enumerate", bound=bound, base=len(base)) as bounded_span:
        for indices in subsets:
            report.subsets_examined += 1
            hit = check_subset(setup, frozenset(base[i] for i in indices), report, seed)
            if hit is not None:
                report.equivalent = False
                report.counterexample = hit[1]
                if enumerator is not None:
                    report.subsets_skipped_by_symmetry = enumerator.skipped
                bounded_span.note(subsets=report.subsets_examined, settled="counterexample")
                return _finish_bounded_report(report)
        if enumerator is not None:
            report.subsets_skipped_by_symmetry = enumerator.skipped
        bounded_span.note(subsets=report.subsets_examined, settled="exhausted")
    return _finish_bounded_report(report)


def _finish_bounded_report(report: EquivalenceReport) -> EquivalenceReport:
    """Record a finished pair-local search into the metrics registry (the
    report totals already include any worker-shipped stats)."""
    _record_search_counters(
        report.subsets_examined,
        report.orderings_examined,
        report.identities_checked,
        report.subsets_skipped_by_symmetry,
    )
    return report


def _scan_bounded_search(
    setup: BoundedRunSetup, report: EquivalenceReport, seed: int
) -> EquivalenceReport:
    """The legacy PR 1 search loop: every subset canonicalized by a
    ``|fresh|!`` scan, every ordering evaluated individually."""
    for subset, skipped in _iterate_subsets(setup.base, setup.fresh, True):
        if skipped:
            report.subsets_skipped_by_symmetry += 1
            continue
        report.subsets_examined += 1
        for ordering in setup.orderings:
            report.orderings_examined += 1
            database = SymbolicDatabase(subset, ordering)
            counterexample = _compare_over(
                setup.first, setup.second, database, setup.function, setup.semantics, report, seed
            )
            if counterexample is not None:
                report.equivalent = False
                report.counterexample = counterexample
                return report
    return report


def local_equivalence(
    first: Query,
    second: Query,
    domain: Domain = Domain.RATIONALS,
    semantics: str = SET_SEMANTICS,
    symmetry_reduction: bool = True,
    max_subsets: int = 2_000_000,
    *,
    context: Optional[SharedBaseContext] = None,
    workers: Optional[int] = None,
    executor=None,
    seed: int = 0,
) -> EquivalenceReport:
    """Local equivalence: bounded equivalence with N = τ(q, q') (Section 4).

    With a :class:`SharedBaseContext` the catalog-wide bound and constants are
    used instead (still sound, since the shared bound dominates τ), unless the
    widened BASE would blow the ``max_subsets`` budget, in which case the
    pair-local BASE is used.  Pairs carrying comparisons always use the
    pair-local BASE: the widening exists to share Γ(q, S_L) across the
    catalog, and the shared caches only apply to comparison-free queries — for
    anything else a larger BASE is pure cost.
    """
    bound = term_size_of_pair(first, second)
    extra_constants: tuple[Constant, ...] = ()
    if (
        context is not None
        and context.bound >= bound
        and _pair_is_comparison_free(first, second)
    ):
        shared_base_size = _base_size(first, second, context.bound, context.constants)
        if 2**shared_base_size <= max_subsets:
            bound = context.bound
            extra_constants = context.constants
    return bounded_equivalence(
        first,
        second,
        bound,
        domain=domain,
        semantics=semantics,
        symmetry_reduction=symmetry_reduction,
        max_subsets=max_subsets,
        workers=workers,
        executor=executor,
        seed=seed,
        extra_constants=extra_constants,
    )


def _catalog_base_size(
    queries: Sequence[Query], bound: int, extra_constants: Iterable[Constant]
) -> int:
    """|BASE| for the catalog at the given bound, computed arithmetically (no
    atom construction) — used to budget-check a shared context cheaply."""
    constants: set[Constant] = set(extra_constants)
    for query in queries:
        constants |= query.constants()
    term_count = len(constants) + bound
    arities = catalog_predicate_arities(queries)
    return sum(term_count**arity for arity in arities.values())


def _base_size(
    first: Query, second: Query, bound: int, extra_constants: Iterable[Constant]
) -> int:
    """|BASE| for the pair at the given bound (two-query case of
    :func:`_catalog_base_size`)."""
    return _catalog_base_size((first, second), bound, extra_constants)


def _resolve_catalog_function(
    queries: Sequence[Query], domain: Domain
) -> Optional[AggregationFunction]:
    """Validate that the queries are mutually comparable (all aggregate with
    one shared, order-decidable function, or all non-aggregate) and return
    the shared function (``None`` for non-aggregate catalogs)."""
    if not queries:
        raise ReproError("cannot compare an empty catalog of queries")
    if len({query.is_aggregate for query in queries}) != 1:
        raise UnsupportedAggregateError(
            "cannot compare an aggregate query with a non-aggregate query"
        )
    if not queries[0].is_aggregate:
        return None
    names = {query.aggregate.function for query in queries}
    if len(names) != 1:
        raise UnsupportedAggregateError(
            f"the queries use different aggregation functions: "
            f"{' vs '.join(sorted(names))}"
        )
    function = get_function(queries[0].aggregate.function)
    if not function.is_order_decidable_over(domain):
        raise UnsupportedAggregateError(
            f"{function.name} is not order-decidable over {domain.value}; "
            "bounded equivalence is undecidable for this class (Theorem 4.8)"
        )
    return function


def _resolve_function(
    first: Query, second: Query, domain: Domain
) -> Optional[AggregationFunction]:
    return _resolve_catalog_function((first, second), domain)


def _compare_over(
    first: Query,
    second: Query,
    database: SymbolicDatabase,
    function: Optional[AggregationFunction],
    semantics: str,
    report: EquivalenceReport,
    seed: int = 0,
) -> Optional[Counterexample]:
    if function is None:
        return _compare_non_aggregate(first, second, database, semantics)
    left_groups = symbolic_groups(first, database)
    right_groups = symbolic_groups(second, database)
    if set(left_groups) != set(right_groups):
        concrete = database.instantiate()
        return Counterexample(
            database=concrete,
            left_result=evaluate_aggregate(first, concrete, function),
            right_result=evaluate_aggregate(second, concrete, function),
            ordering=database.ordering,
            symbolic_atoms=database.atoms,
        )
    for key in left_groups:
        report.identities_checked += 1
        if not function.decide_ordered_identity(
            database.ordering, left_groups[key], right_groups[key]
        ):
            return _witness_for_identity_failure(first, second, database, function, seed=seed)
    return None


def _compare_concrete(
    first: Query,
    second: Query,
    database: Database,
    function: Optional[AggregationFunction],
    semantics: str,
) -> Optional[Counterexample]:
    """Direct comparison over a single concrete database (degenerate cases)."""
    if function is not None:
        left_result = evaluate_aggregate(first, database, function)
        right_result = evaluate_aggregate(second, database, function)
    elif semantics == BAG_SET_SEMANTICS:
        left_result = evaluate_bag_set(first, database)
        right_result = evaluate_bag_set(second, database)
    else:
        left_result = evaluate_set(first, database)
        right_result = evaluate_set(second, database)
    if left_result == right_result:
        return None
    return Counterexample(database=database, left_result=left_result, right_result=right_result)


def _compare_non_aggregate(
    first: Query, second: Query, database: SymbolicDatabase, semantics: str
) -> Optional[Counterexample]:
    if semantics == SET_SEMANTICS:
        left = set(symbolic_answer_multiset(first, database))
        right = set(symbolic_answer_multiset(second, database))
    elif semantics == BAG_SET_SEMANTICS:
        left = symbolic_answer_multiset(first, database)
        right = symbolic_answer_multiset(second, database)
    else:
        raise ReproError(f"unknown semantics {semantics!r}")
    if left == right:
        return None
    concrete = database.instantiate()
    if semantics == SET_SEMANTICS:
        left_result = evaluate_set(first, concrete)
        right_result = evaluate_set(second, concrete)
    else:
        left_result = evaluate_bag_set(first, concrete)
        right_result = evaluate_bag_set(second, concrete)
    return Counterexample(
        database=concrete,
        left_result=left_result,
        right_result=right_result,
        ordering=database.ordering,
        symbolic_atoms=database.atoms,
    )


def _witness_for_identity_failure(
    first: Query,
    second: Query,
    database: SymbolicDatabase,
    function: AggregationFunction,
    attempts: int = 25,
    seed: int = 0,
) -> Counterexample:
    """Search for a concrete instantiation on which the two queries visibly
    disagree.  The canonical instantiation is tried first, followed by random
    realizations of the ordering seeded by ``seed`` (so parallel runs remain
    reproducible regardless of worker scheduling); for non-shiftable functions
    a particular instantiation may coincidentally agree, in which case only
    the symbolic context is reported."""
    import random

    candidates = [database.ordering.instantiate()]
    rng = random.Random(seed)
    for _ in range(attempts):
        candidates.append(random_realization(database.ordering, rng))
    for assignment in candidates:
        facts = []
        for atom in database.atoms:
            values = tuple(
                argument.value if isinstance(argument, Constant) else assignment[argument]
                for argument in atom.arguments
            )
            facts.append((atom.predicate, values))
        concrete = Database(facts)
        left_result = evaluate_aggregate(first, concrete, function)
        right_result = evaluate_aggregate(second, concrete, function)
        if left_result != right_result:
            return Counterexample(
                database=concrete,
                left_result=left_result,
                right_result=right_result,
                ordering=database.ordering,
                symbolic_atoms=database.atoms,
            )
    return Counterexample(
        database=None,
        left_result="(symbolic disagreement)",
        right_result="(symbolic disagreement)",
        ordering=database.ordering,
        symbolic_atoms=database.atoms,
    )
