"""Counterexample search: the brute-force baseline.

The decision procedures of the paper are complete but expensive; a
complementary (and much cheaper) way to establish *non*-equivalence is to find
a concrete database on which the two queries disagree.  This module implements

* a random-database generator parameterized by the predicates of the queries,
* :func:`find_counterexample` — randomized search for a distinguishing
  database, and
* :func:`exhaustive_counterexample` — exhaustive search over all databases
  built from a fixed value pool (the concrete analogue of the BASE subsets of
  Theorem 4.8), which doubles as the oracle the tests compare the decision
  procedures against.
"""

from __future__ import annotations

import itertools
import random
from fractions import Fraction
from typing import Iterable, Iterator, Optional, Sequence

from ..datalog.database import Database
from ..datalog.queries import Query, combined_predicate_arities
from ..domains import Domain, NumericValue
from ..engine.evaluator import evaluate, evaluate_bag_set
from ..errors import UnsupportedAggregateError

#: How non-aggregate queries are compared.
SET_SEMANTICS = "set"
BAG_SET_SEMANTICS = "bag-set"


def value_pool(
    first: Query, second: Query, domain: Domain, extra: Iterable[NumericValue] = ()
) -> list[NumericValue]:
    """A small pool of constants to draw database values from: the constants
    of the queries, their neighbours, a few small integers and (over Q) a few
    fractions."""
    values: set[NumericValue] = {0, 1, 2, -1}
    for constant in first.constants() | second.constants():
        base = constant.value
        values.add(base)
        if isinstance(base, int):
            values.add(base + 1)
            values.add(base - 1)
    if domain.is_dense:
        values.add(Fraction(1, 2))
        values.add(Fraction(3, 2))
    values.update(extra)
    return sorted(values, key=Fraction)


def random_database(
    arities: dict[str, int],
    values: Sequence[NumericValue],
    rng: random.Random,
    max_facts: int = 8,
) -> Database:
    """A random database over the given predicates and value pool."""
    facts = []
    for _ in range(rng.randint(0, max_facts)):
        predicate = rng.choice(sorted(arities))
        arity = arities[predicate]
        row = tuple(rng.choice(values) for _ in range(arity))
        facts.append((predicate, row))
    return Database(facts)


def _results_differ(first: Query, second: Query, database: Database, semantics: str) -> bool:
    if first.is_aggregate != second.is_aggregate:
        raise UnsupportedAggregateError(
            "cannot compare an aggregate query with a non-aggregate query"
        )
    if first.is_aggregate or semantics == SET_SEMANTICS:
        return evaluate(first, database) != evaluate(second, database)
    return evaluate_bag_set(first, database) != evaluate_bag_set(second, database)


#: Default seed of the randomized witness search (kept fixed so results are
#: reproducible even when no explicit seed is supplied).
DEFAULT_SEARCH_SEED = 2001


def find_counterexample(
    first: Query,
    second: Query,
    domain: Domain = Domain.RATIONALS,
    rng: Optional[random.Random] = None,
    trials: int = 400,
    max_facts: int = 8,
    semantics: str = SET_SEMANTICS,
    extra_values: Iterable[NumericValue] = (),
    seed: Optional[int] = None,
) -> Optional[Database]:
    """Randomized search for a database distinguishing the two queries.

    Returns a witnessing database, or ``None`` when none was found within the
    given number of trials (which is *not* a proof of equivalence).  The
    search draws from a private ``random.Random``: pass ``seed`` (or a whole
    ``rng``) to control it; either way, results do not depend on process or
    worker scheduling.
    """
    if rng is None:
        rng = random.Random(DEFAULT_SEARCH_SEED if seed is None else seed)
    arities = combined_predicate_arities(first, second)
    if not arities:
        database = Database(())
        return database if _results_differ(first, second, database, semantics) else None
    values = value_pool(first, second, domain, extra_values)
    for _ in range(trials):
        database = random_database(arities, values, rng, max_facts)
        database.check_domain(domain)
        if _results_differ(first, second, database, semantics):
            return database
    return None


def enumerate_databases(
    arities: dict[str, int],
    values: Sequence[NumericValue],
    max_facts: Optional[int] = None,
) -> Iterator[Database]:
    """Every database over the predicates whose facts draw values from the
    pool — the concrete analogue of enumerating subsets of BASE."""
    universe = []
    for predicate in sorted(arities):
        arity = arities[predicate]
        for row in itertools.product(values, repeat=arity):
            universe.append((predicate, row))
    limit = len(universe) if max_facts is None else min(max_facts, len(universe))
    for size in range(limit + 1):
        for combination in itertools.combinations(universe, size):
            yield Database(combination)


def exhaustive_counterexample(
    first: Query,
    second: Query,
    values: Sequence[NumericValue],
    max_facts: Optional[int] = None,
    semantics: str = SET_SEMANTICS,
) -> Optional[Database]:
    """Exhaustive search over all databases built from the value pool.

    Used as a ground-truth oracle for the decision procedures on small
    instances: if the queries agree on every database over a pool at least as
    large as τ(q, q'), the procedures must report equivalence over that pool
    size as well.
    """
    arities = combined_predicate_arities(first, second)
    if not arities:
        database = Database(())
        return database if _results_differ(first, second, database, semantics) else None
    for database in enumerate_databases(arities, values, max_facts):
        if _results_differ(first, second, database, semantics):
            return database
    return None
