"""Bag-set and set semantics for non-aggregate queries (Section 8).

Two non-aggregate queries are equivalent under *bag-set semantics* iff the
``count``-queries obtained by adding a ``count`` aggregate term to their heads
are equivalent.  Since ``count`` is a group aggregation function, equivalence
of ``count``-queries reduces to local equivalence (Theorem 6.5), so bag-set
equivalence of non-aggregate disjunctive queries with negation is decidable —
one of the corollaries the paper highlights.

For *set* semantics the reduction to small databases follows the Levy–Sagiv
argument recalled at the start of Section 5: an answer of a non-aggregate
query depends on a single assignment, so disagreement on any database implies
disagreement on a database with at most τ(q, q') constants.
"""

from __future__ import annotations

from ..datalog.queries import AggregateTerm, Query
from ..domains import Domain
from ..errors import MalformedQueryError
from .bounded import (
    BAG_SET_SEMANTICS,
    SET_SEMANTICS,
    EquivalenceReport,
    local_equivalence,
)


def as_count_query(query: Query, name_suffix: str = "_count") -> Query:
    """The ``count``-query q(x̄, count) associated with a non-aggregate query."""
    if query.is_aggregate:
        raise MalformedQueryError("as_count_query expects a non-aggregate query")
    return Query(
        query.name + name_suffix,
        query.head_terms,
        query.disjuncts,
        AggregateTerm("count", ()),
    )


def bag_set_equivalent(
    first: Query,
    second: Query,
    domain: Domain = Domain.RATIONALS,
    via_count_queries: bool = True,
    **kwargs,
) -> EquivalenceReport:
    """Decide equivalence of two non-aggregate queries under bag-set semantics.

    By default the decision goes through the ``count``-query reduction; setting
    ``via_count_queries=False`` compares answer multiplicities directly in the
    symbolic procedure (both routes must agree — the tests check this).
    """
    if first.is_aggregate or second.is_aggregate:
        raise MalformedQueryError("bag-set equivalence is defined for non-aggregate queries")
    if via_count_queries:
        return local_equivalence(
            as_count_query(first), as_count_query(second), domain=domain, **kwargs
        )
    return local_equivalence(first, second, domain=domain, semantics=BAG_SET_SEMANTICS, **kwargs)


def set_equivalent(
    first: Query,
    second: Query,
    domain: Domain = Domain.RATIONALS,
    **kwargs,
) -> EquivalenceReport:
    """Decide equivalence of two non-aggregate queries under set semantics by
    checking agreement over all databases with at most τ(q, q') constants."""
    if first.is_aggregate or second.is_aggregate:
        raise MalformedQueryError("set_equivalent is defined for non-aggregate queries")
    return local_equivalence(first, second, domain=domain, semantics=SET_SEMANTICS, **kwargs)
