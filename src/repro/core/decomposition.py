"""Database decompositions (Sections 5 and 6).

For queries with a decomposable aggregation function, equivalence over an
arbitrary database reduces to equivalence over *small* databases via a
decomposition of the database (Theorem 6.5).  This module implements

* the ``Extend Database`` procedure of Figure 1,
* the construction of the decomposition ∆ of a database with respect to a pair
  of queries and a group tuple (Equation 11),
* verification of the three decomposition properties (used in tests and in the
  decomposition benchmark), and
* the recombination formulas of the decomposition principles: the idempotent
  principle (Proposition 5.1) and the inclusion–exclusion principle for group
  aggregation functions (Proposition 5.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..aggregates.functions import AggregationFunction, get_function
from ..datalog.atoms import GroundAtom
from ..datalog.database import Database
from ..datalog.queries import Query, term_size_of_pair
from ..datalog.terms import Constant
from ..domains import NumericValue
from ..engine.evaluator import (
    LabeledAssignment,
    group_assignments,
    satisfying_assignments,
)
from ..errors import ReproError


# ----------------------------------------------------------------------
# Figure 1: Extend Database
# ----------------------------------------------------------------------
def extend_database(base: Database, first: Query, second: Query, full: Database) -> Database:
    """The ``Extend Database`` procedure (Figure 1).

    Starting from ``base`` (a subset of ``full``), repeatedly add the
    instantiations of negated atoms that (a) are satisfied by some assignment
    of either query over the current database and (b) are facts of ``full``,
    until a fixed point is reached.  The result is a subset of ``full`` over
    which neither query has satisfying assignments that would be blocked in
    ``full`` by a negated subgoal.
    """
    current = base
    while True:
        additions: set[GroundAtom] = set()
        for query in (first, second):
            for assignment in satisfying_assignments(query, current):
                disjunct = query.disjuncts[assignment.disjunct_index]
                for atom in disjunct.negated_atoms:
                    values = assignment.values_of(atom.arguments)
                    fact = GroundAtom(atom.predicate, values)
                    if fact in full.facts and fact not in current.facts:
                        additions.add(fact)
        if not additions:
            return current
        current = current.add_facts(additions)


# ----------------------------------------------------------------------
# Decomposition construction (Equation 11)
# ----------------------------------------------------------------------
def assignment_database(query: Query, assignment: LabeledAssignment) -> Database:
    """D_γ: the instantiations of the positive atoms of the disjunct that the
    assignment satisfies."""
    disjunct = query.disjuncts[assignment.disjunct_index]
    facts = []
    for atom in disjunct.positive_atoms:
        facts.append(GroundAtom(atom.predicate, assignment.values_of(atom.arguments)))
    return Database(facts)


def decomposition(
    first: Query, second: Query, database: Database, group: tuple
) -> list[Database]:
    """The decomposition ∆ of ``database`` with respect to the two queries and
    the group tuple ``group`` (Equation 11)."""
    parts: list[Database] = []
    seen: set[frozenset] = set()
    for query in (first, second):
        groups = group_assignments(query, database)
        for assignment in groups.get(group, []):
            base = assignment_database(query, assignment)
            extended = extend_database(base, first, second, database)
            key = extended.facts
            if key not in seen:
                seen.add(key)
                parts.append(extended)
    return parts


# ----------------------------------------------------------------------
# Verification of the decomposition properties
# ----------------------------------------------------------------------
@dataclass
class DecompositionCheck:
    """The result of verifying the three decomposition properties."""

    sizes_ok: bool
    assignments_cover: bool
    intersections_ok: bool
    part_count: int
    term_size: int

    @property
    def is_decomposition(self) -> bool:
        return self.sizes_ok and self.assignments_cover and self.intersections_ok


def _group_assignment_set(query: Query, database: Database, group: tuple) -> frozenset:
    return frozenset(group_assignments(query, database).get(group, []))


def verify_decomposition(
    first: Query,
    second: Query,
    database: Database,
    group: tuple,
    parts: Sequence[Database],
    max_subfamily_size: int = 3,
) -> DecompositionCheck:
    """Check Properties 1–3 of decompositions for ``parts``.

    Property 3 quantifies over all subfamilies; to keep the check affordable it
    is verified for subfamilies up to ``max_subfamily_size`` (and the full
    family), which is exactly what the equivalence proof exercises for small
    examples.
    """
    bound = term_size_of_pair(first, second)
    sizes_ok = all(part.carrier_size <= bound for part in parts)

    assignments_cover = True
    for query in (first, second):
        over_full = _group_assignment_set(query, database, group)
        over_parts: set = set()
        for part in parts:
            over_parts |= _group_assignment_set(query, part, group)
        if over_full != frozenset(over_parts):
            assignments_cover = False
            break

    intersections_ok = True
    indices = list(range(len(parts)))
    subfamilies: list[tuple[int, ...]] = []
    for size in range(2, min(max_subfamily_size, len(parts)) + 1):
        subfamilies.extend(itertools.combinations(indices, size))
    if len(parts) > max_subfamily_size:
        subfamilies.append(tuple(indices))
    for query in (first, second):
        if not intersections_ok:
            break
        for subfamily in subfamilies:
            assignment_intersection: Optional[frozenset] = None
            database_intersection: Optional[Database] = None
            for index in subfamily:
                part = parts[index]
                assignments = _group_assignment_set(query, part, group)
                assignment_intersection = (
                    assignments
                    if assignment_intersection is None
                    else assignment_intersection & assignments
                )
                database_intersection = (
                    part
                    if database_intersection is None
                    else database_intersection.intersection(part)
                )
            assert assignment_intersection is not None and database_intersection is not None
            direct = _group_assignment_set(query, database_intersection, group)
            if assignment_intersection != direct:
                intersections_ok = False
                break

    return DecompositionCheck(
        sizes_ok=sizes_ok,
        assignments_cover=assignments_cover,
        intersections_ok=intersections_ok,
        part_count=len(parts),
        term_size=bound,
    )


# ----------------------------------------------------------------------
# Decomposition principles (Propositions 5.1 and 5.2)
# ----------------------------------------------------------------------
def aggregate_of_assignments(
    function: AggregationFunction, query: Query, assignments: Iterable[LabeledAssignment]
):
    """α(ȳ) ↓ A for a set of labeled assignments A."""
    aggregation_variables = query.aggregation_variables()
    bag = [assignment.values_of(aggregation_variables) for assignment in assignments]
    return function.apply(bag)


def recombine_idempotent(
    function: AggregationFunction,
    query: Query,
    parts: Sequence[Database],
    group: tuple,
):
    """The right-hand side of the idempotent decomposition principle
    (Proposition 5.1): the monoid sum of the per-part aggregates."""
    if not function.is_idempotent_monoidal:
        raise ReproError(f"{function.name} is not an idempotent monoid aggregation function")
    monoid = function.monoid
    assert monoid is not None
    values = []
    for part in parts:
        assignments = group_assignments(query, part).get(group, [])
        values.append(aggregate_of_assignments(function, query, assignments))
    return monoid.combine(values)


def recombine_group(
    function: AggregationFunction,
    query: Query,
    parts: Sequence[Database],
    group: tuple,
):
    """The right-hand side of the group decomposition principle
    (Proposition 5.2): inclusion–exclusion over intersections of the per-part
    assignment sets, evaluated in the underlying group."""
    if not function.is_group_monoidal:
        raise ReproError(f"{function.name} is not a group aggregation function")
    monoid = function.monoid
    assert monoid is not None
    assignment_sets = [
        _group_assignment_set(query, part, group) for part in parts
    ]
    total = monoid.neutral()
    for size in range(1, len(assignment_sets) + 1):
        layer = monoid.neutral()
        for subset in itertools.combinations(assignment_sets, size):
            intersection = set(subset[0])
            for assignments in subset[1:]:
                intersection &= assignments
            layer = monoid.operation(
                layer, aggregate_of_assignments(function, query, intersection)
            )
        if size % 2 == 1:
            total = monoid.operation(total, layer)
        else:
            total = monoid.subtract(total, layer)
    return total


def direct_aggregate(
    function: AggregationFunction, query: Query, database: Database, group: tuple
):
    """α(ȳ) ↓ Γ_d̄(q, D): the left-hand side of both decomposition principles."""
    assignments = group_assignments(query, database).get(group, [])
    return aggregate_of_assignments(function, query, assignments)


def decomposition_principle_holds(
    query: Query,
    other: Query,
    database: Database,
    group: tuple,
    function: Optional[AggregationFunction] = None,
) -> bool:
    """Empirically check the appropriate decomposition principle on the
    decomposition of ``database`` (the key step in the proof of Theorem 6.5)."""
    if function is None:
        if query.aggregate is None:
            raise ReproError("decomposition principles apply to aggregate queries")
        function = get_function(query.aggregate.function)
    parts = decomposition(query, other, database, group)
    if not parts:
        return direct_aggregate(function, query, database, group) == function.apply([])
    direct = direct_aggregate(function, query, database, group)
    if function.is_idempotent_monoidal:
        return direct == recombine_idempotent(function, query, parts, group)
    if function.is_group_monoidal:
        return direct == recombine_group(function, query, parts, group)
    raise ReproError(f"{function.name} is not decomposable")
