"""Homomorphisms and isomorphisms between conjunctive queries.

Section 7 of the paper defines a homomorphism from a conjunctive aggregate
query ``q'(s̄', α(t̄')) ← P' ∧ N' ∧ C'`` to ``q(s̄, α(t̄)) ← P ∧ N ∧ C`` as a
substitution θ of the variables of q' by terms of q such that

1. ``θ(s̄') = s̄`` and ``θ(t̄') = t̄``,
2. ``θ(a')`` is in ``P`` for every positive atom ``a'`` of ``P'``,
3. ``θ(a')`` is in ``N`` for every negated atom ``a'`` of ``N'``,
4. ``C |=_I θ(s' ρ t')`` for every comparison of ``C'``.

A homomorphism is an isomorphism when it is bijective and its inverse is also
a homomorphism.  For quasilinear queries equivalence coincides with
isomorphism (Theorems 7.1 and 7.2), which makes the equivalence problem
polynomial; the general backtracking search implemented here is still worst-
case exponential but is shared by both the quasilinear fast path (where the
candidate sets have size one) and diagnostic tooling.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Mapping, Optional

from ..datalog.atoms import Comparison, RelationalAtom
from ..datalog.queries import Query
from ..datalog.terms import Constant, Term, Variable
from ..domains import Domain
from ..errors import MalformedQueryError
from ..orderings.constraints import ComparisonSystem


def _single_condition(query: Query):
    if not query.is_conjunctive:
        raise MalformedQueryError("homomorphisms are defined between conjunctive queries")
    return query.disjuncts[0]


def _apply(term: Term, substitution: Mapping[Variable, Term]) -> Term:
    if isinstance(term, Constant):
        return term
    return substitution.get(term, term)


def homomorphisms(
    source: Query, target: Query, domain: Domain = Domain.RATIONALS
) -> Iterator[dict[Variable, Term]]:
    """Enumerate the homomorphisms from ``source`` to ``target``.

    Following the paper's convention, a homomorphism goes *from* q' *to* q and
    maps the variables of q' to terms of q.
    """
    source_condition = _single_condition(source)
    target_condition = _single_condition(target)
    if len(source.head_terms) != len(target.head_terms):
        return
    if (source.aggregate is None) != (target.aggregate is None):
        return
    if source.aggregate is not None and target.aggregate is not None:
        if source.aggregate.function != target.aggregate.function:
            return
        if len(source.aggregate.arguments) != len(target.aggregate.arguments):
            return

    substitution: dict[Variable, Term] = {}
    # Head constraints (condition 1) seed the substitution.
    head_pairs = list(zip(source.head_terms, target.head_terms))
    if source.aggregate is not None and target.aggregate is not None:
        head_pairs.extend(zip(source.aggregate.arguments, target.aggregate.arguments))
    for source_term, target_term in head_pairs:
        if isinstance(source_term, Constant):
            if source_term != target_term:
                return
        else:
            bound = substitution.get(source_term)
            if bound is None:
                substitution[source_term] = target_term
            elif bound != target_term:
                return

    target_system = ComparisonSystem(target_condition.comparisons, domain)
    target_positive = list(target_condition.positive_atoms)
    target_negated = list(target_condition.negated_atoms)
    source_positive = list(source_condition.positive_atoms)
    source_negated = list(source_condition.negated_atoms)

    yield from _search(
        source_positive,
        source_negated,
        source_condition.comparisons,
        target_positive,
        target_negated,
        target_system,
        substitution,
        sorted(source_condition.variables(), key=lambda v: v.name),
        sorted(
            {term for atom in target_positive for term in atom.arguments}
            | {term for atom in target_negated for term in atom.arguments}
            | set(target.head_terms)
            | set(target.aggregation_variables())
            | {term for c in target_condition.comparisons for term in (c.left, c.right)},
            key=str,
        ),
    )


def _search(
    source_positive,
    source_negated,
    source_comparisons,
    target_positive,
    target_negated,
    target_system: ComparisonSystem,
    substitution: dict[Variable, Term],
    source_variables,
    target_terms,
) -> Iterator[dict[Variable, Term]]:
    """Backtracking over atom-to-atom matchings, then over any still-unbound
    variables (which can only be constrained by comparisons)."""

    def extend_with_atom(atom: RelationalAtom, image: RelationalAtom, current: dict) -> Optional[dict]:
        if atom.predicate != image.predicate or atom.arity != image.arity:
            return None
        extended = dict(current)
        for argument, value in zip(atom.arguments, image.arguments):
            if isinstance(argument, Constant):
                if argument != value:
                    return None
            else:
                bound = extended.get(argument)
                if bound is None:
                    extended[argument] = value
                elif bound != value:
                    return None
        return extended

    def match_atoms(index: int, atoms, images, current: dict) -> Iterator[dict]:
        if index == len(atoms):
            yield current
            return
        for image in images:
            extended = extend_with_atom(atoms[index], image, current)
            if extended is not None:
                yield from match_atoms(index + 1, atoms, images, extended)

    for after_positive in match_atoms(0, source_positive, target_positive, substitution):
        for after_negated in match_atoms(0, source_negated, target_negated, after_positive):
            unbound = [v for v in source_variables if v not in after_negated]
            for completion in _complete_unbound(unbound, target_terms, after_negated):
                if _comparisons_entailed(source_comparisons, completion, target_system):
                    yield completion


def _complete_unbound(
    unbound: list[Variable], target_terms, substitution: dict
) -> Iterator[dict]:
    if not unbound:
        yield substitution
        return
    candidates = list(target_terms) or [Constant(0)]
    for choice in itertools.product(candidates, repeat=len(unbound)):
        extended = dict(substitution)
        extended.update(dict(zip(unbound, choice)))
        yield extended


def _comparisons_entailed(
    comparisons, substitution: Mapping[Variable, Term], target_system: ComparisonSystem
) -> bool:
    for comparison in comparisons:
        mapped = Comparison(
            _apply(comparison.left, substitution),
            comparison.op,
            _apply(comparison.right, substitution),
        )
        if mapped.left == mapped.right:
            if not mapped.op.holds(0, 0):
                return False
            continue
        if isinstance(mapped.left, Constant) and isinstance(mapped.right, Constant):
            if not mapped.evaluate_ground():
                return False
            continue
        if not target_system.entails(mapped):
            return False
    return True


def find_homomorphism(
    source: Query, target: Query, domain: Domain = Domain.RATIONALS
) -> Optional[dict[Variable, Term]]:
    """The first homomorphism from ``source`` to ``target``, if any."""
    for substitution in homomorphisms(source, target, domain):
        return substitution
    return None


def has_homomorphism(source: Query, target: Query, domain: Domain = Domain.RATIONALS) -> bool:
    return find_homomorphism(source, target, domain) is not None


# ----------------------------------------------------------------------
# Isomorphisms
# ----------------------------------------------------------------------
def is_variable_bijection(substitution: Mapping[Variable, Term], source: Query, target: Query) -> bool:
    """Whether the substitution maps the variables of ``source`` bijectively
    onto the variables of ``target`` (constants map to themselves)."""
    source_variables = source.disjuncts[0].variables() | set(source.aggregation_variables())
    target_variables = target.disjuncts[0].variables() | set(target.aggregation_variables())
    image = []
    for variable in source_variables:
        value = substitution.get(variable)
        if not isinstance(value, Variable):
            return False
        image.append(value)
    return len(set(image)) == len(source_variables) and set(image) == target_variables


def _invert(substitution: Mapping[Variable, Term]) -> dict[Variable, Term]:
    inverted: dict[Variable, Term] = {}
    for variable, value in substitution.items():
        if isinstance(value, Variable):
            inverted[value] = variable
    return inverted


def isomorphisms(
    first: Query, second: Query, domain: Domain = Domain.RATIONALS
) -> Iterator[dict[Variable, Term]]:
    """Enumerate the isomorphisms from ``first`` to ``second``: bijective
    homomorphisms whose inverse is also a homomorphism."""
    for substitution in homomorphisms(first, second, domain):
        if not is_variable_bijection(substitution, first, second):
            continue
        inverse = _invert(substitution)
        if _is_homomorphism_substitution(inverse, second, first, domain):
            yield substitution


def _is_homomorphism_substitution(
    substitution: Mapping[Variable, Term], source: Query, target: Query, domain: Domain
) -> bool:
    """Whether a concrete substitution is a homomorphism from source to target."""
    source_condition = _single_condition(source)
    target_condition = _single_condition(target)
    if len(source.head_terms) != len(target.head_terms):
        return False
    head_pairs = list(zip(source.head_terms, target.head_terms))
    if source.aggregate is not None and target.aggregate is not None:
        head_pairs.extend(zip(source.aggregate.arguments, target.aggregate.arguments))
    for source_term, target_term in head_pairs:
        if _apply(source_term, substitution) != target_term:
            return False
    target_positive = set(target_condition.positive_atoms)
    target_negated = set(target_condition.negated_atoms)
    for atom in source_condition.positive_atoms:
        if atom.substitute(substitution) not in target_positive:
            return False
    for atom in source_condition.negated_atoms:
        if atom.substitute(substitution) not in target_negated:
            return False
    target_system = ComparisonSystem(target_condition.comparisons, domain)
    return _comparisons_entailed(source_condition.comparisons, substitution, target_system)


def find_isomorphism(
    first: Query, second: Query, domain: Domain = Domain.RATIONALS
) -> Optional[dict[Variable, Term]]:
    for substitution in isomorphisms(first, second, domain):
        return substitution
    return None


def are_isomorphic(first: Query, second: Query, domain: Domain = Domain.RATIONALS) -> bool:
    """Whether the two conjunctive queries are isomorphic."""
    return find_isomorphism(first, second, domain) is not None
