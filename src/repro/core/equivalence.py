"""The top-level equivalence checker and the decidability map (Table 2).

:func:`are_equivalent` dispatches a pair of queries to the strongest decision
procedure the paper provides for them:

1. **Non-aggregate queries** — local equivalence under set semantics
   (Levy–Sagiv style reduction to small databases).
2. **Quasilinear aggregate queries** with a singleton-determining function (or
   ``cntd`` under the side conditions of Theorem 7.4) — isomorphism of the
   reduced queries, in polynomial time (Section 7).
3. **Decomposable functions** (``count``, ``parity``, ``sum``, ``max``,
   ``top2``, ``min``, ``bot2``, …) and ``prod`` over the rationals — local
   equivalence via the bounded-equivalence procedure (Theorems 6.5 and 6.6).
4. **Everything else** (``avg`` and ``cntd`` outside the quasilinear fragment,
   ``prod`` over the integers) — the paper leaves the problem open; the checker
   runs a counterexample search and a bounded check, and reports ``UNKNOWN``
   when neither settles the question.

Pairs using *different* aggregation functions are also outside the paper's
decidable classes (differing names do not imply differing semantics — a ``sum``
of values pinned to 1 is a ``count``), so they get the same treatment as the
open fragment: ``NOT_EQUIVALENT`` with a concrete witness when the search finds
one, ``UNKNOWN`` otherwise.  Before dispatching, a sound semantic
normalization rewrites exactly that common case: when both queries reduce to
*count forms* with one shared nonzero multiplier ``c`` — a ``count()`` query
trivially (``c = 1``), a ``sum`` query whose aggregation variable every
disjunct pins to ``c``, directly (``y = c``) or through an equality chain
(``y = z, z = c``) — both sides are rewritten to their count forms (each
original returns ``c ·`` its count form on every database, so the verdict and
any witness transfer both ways).  Such pairs land in the decidable
same-function classes instead of the open fragment.  Pins to 0 and pairs with
differing multipliers are excluded: no single verdict-preserving reduction
exists there (see :func:`aggregation_pin` / :func:`pair_count_reduction`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..aggregates.functions import AggregationFunction, PAPER_FUNCTIONS, get_function
from ..datalog.atoms import ComparisonOp
from ..datalog.database import Database
from ..datalog.queries import AggregateTerm, Query, term_size_of_pair
from ..datalog.terms import Constant
from ..domains import Domain
from ..errors import SearchSpaceBudgetError, UndecidableError, UnsupportedAggregateError
from ..obs import span as _span
from .bounded import (
    Counterexample,
    EquivalenceReport,
    SharedBaseContext,
    bounded_equivalence,
    local_equivalence,
)
from .counterexample import find_counterexample
from .quasilinear import QuasilinearVerdict, is_quasilinear_decidable, quasilinear_equivalent


class Verdict(enum.Enum):
    """Outcome of an equivalence check."""

    EQUIVALENT = "equivalent"
    NOT_EQUIVALENT = "not equivalent"
    UNKNOWN = "unknown"


@dataclass
class EquivalenceResult:
    """The outcome of :func:`are_equivalent`, with provenance."""

    verdict: Verdict
    method: str
    domain: Domain
    details: str = ""
    counterexample: Optional[Counterexample] = None
    report: Optional[EquivalenceReport] = None
    quasilinear: Optional[QuasilinearVerdict] = None

    @property
    def is_equivalent(self) -> bool:
        return self.verdict is Verdict.EQUIVALENT

    def __bool__(self) -> bool:
        return self.is_equivalent

    def __str__(self) -> str:
        return f"{self.verdict.value} (method: {self.method}) {self.details}".strip()


def _equality_closure(disjunct, term) -> set:
    """The equality class of ``term`` under the disjunct's ``=`` comparisons:
    every term reachable through a chain like ``y = z, z = 1`` (constants are
    traversed too, so ``y = 1, 1 = w, w = c`` connects ``y`` with ``c``)."""
    adjacency: dict[object, set] = {}
    for comparison in disjunct.comparisons:
        if comparison.op is ComparisonOp.EQ:
            adjacency.setdefault(comparison.left, set()).add(comparison.right)
            adjacency.setdefault(comparison.right, set()).add(comparison.left)
    seen = {term}
    frontier = [term]
    while frontier:
        current = frontier.pop()
        for neighbor in adjacency.get(current, ()):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return seen


def aggregation_pin(query: Query) -> Optional[Constant]:
    """The constant every disjunct pins the sum's aggregation variable to,
    propagated through equality chains (``y = 1`` but also ``y = z, z = 1``
    and longer chains).

    Returns ``None`` unless the query is a unary ``sum`` and every disjunct's
    equality closure of the aggregation variable contains exactly one
    constant, the same in all disjuncts, and that constant is nonzero.  Two
    distinct constants in one closure make the disjunct unsatisfiable; the
    rewriting stays out of that corner (a dead disjunct is better surfaced by
    the decision procedures than silently normalized).  A pin to 0 is also
    excluded: a sum pinned to 0 returns 0 for every group, so its equivalence
    with another query degenerates to agreement of the group-key sets —
    count-equivalence is strictly stronger and a NOT_EQUIVALENT verdict on
    the count forms would not transfer back.
    """
    aggregate = query.aggregate
    if aggregate is None or aggregate.function != "sum" or len(aggregate.arguments) != 1:
        return None
    variable = aggregate.arguments[0]
    pin: Optional[Constant] = None
    for disjunct in query.disjuncts:
        constants = {
            term for term in _equality_closure(disjunct, variable) if isinstance(term, Constant)
        }
        if len(constants) != 1:
            return None
        (constant,) = constants
        if constant.value == 0:
            return None
        if pin is None:
            pin = constant
        elif pin != constant:
            # Disjuncts pinning to different constants: sum ≡ c·count needs
            # per-disjunct agreement on c, otherwise no single multiplier
            # relates the two aggregates.
            return None
    return pin


def sum_count_reduction(query: Query) -> Optional[tuple[Query, Constant, Optional[str]]]:
    """The count form of a query, when it has one: ``(count_query, c, note)``
    such that the query returns ``c · count_query`` on every database.

    A ``count()`` query is its own count form with multiplier 1 (and no
    note); a ``sum`` query whose aggregation variable is pinned to a nonzero
    constant ``c`` in every disjunct (see :func:`aggregation_pin`) reduces to
    the same body with ``count()`` in the head and multiplier ``c``.  Other
    queries have no count form.
    """
    aggregate = query.aggregate
    if aggregate is None:
        return None
    if aggregate.function == "count":
        return query, Constant(1), None
    pin = aggregation_pin(query)
    if pin is None:
        return None
    variable = query.aggregate.arguments[0]
    rewritten = query.with_aggregate(AggregateTerm("count", ()))
    if pin.value == 1:
        note = f"sum({variable}) with {variable} = 1 rewritten to count()"
    else:
        note = (
            f"sum({variable}) with {variable} = {pin} rewritten to {pin}·count()"
        )
    return rewritten, pin, note


def normalize_for_dispatch(query: Query) -> tuple[Query, Optional[str]]:
    """Semantic normalization applied before dispatch (sound rewriting).

    ``sum`` over an aggregation variable that every disjunct pins to the
    constant 1 — directly (``y = 1``) or through an equality chain
    (``y = z, z = 1``) — is rewritten to ``count()``: each satisfying
    assignment contributes exactly 1 to the sum, so the two queries return
    identical results on every database.  Returns the (possibly rewritten)
    query and a human-readable note when the rule fired.

    Pins to constants other than 1 are *not* rewritten here: the standalone
    rewrite is only result-preserving for ``c = 1``.  The general
    ``sum ≡ c·count`` relation is applied pair-wise by
    :func:`are_equivalent` (both sides must share the multiplier ``c``).
    """
    reduction = sum_count_reduction(query)
    if reduction is None:
        return query, None
    rewritten, multiplier, note = reduction
    if note is None or multiplier.value != 1:
        return query, None
    return rewritten, note


def normalization_method_suffix(multiplier: Constant) -> str:
    """The method annotation for a verdict transferred from the count forms."""
    if multiplier.value == 1:
        return " (after sum→count normalization)"
    return f" (after sum→{multiplier}·count normalization)"


def pair_count_reduction(
    first: Query, second: Query
) -> Optional[tuple[Query, Query, Constant, str]]:
    """The shared count form of a pair, when comparing count forms settles
    the original pair.

    Both queries must have a count form (:func:`sum_count_reduction`) with
    the *same* multiplier ``c``, and at least one side must actually be
    rewritten (a count/count pair has nothing to normalize).  Then
    ``q_i ≡ c · count_i`` with ``c ≠ 0``, so ``q_1 ≡ q_2`` iff
    ``count_1 ≡ count_2`` — the verdict (and any witness database) transfers
    in both directions.  Mixed multipliers (e.g. a sum pinned to 2 against a
    plain count) are left alone: ``2·count_1 ≡ count_2`` is not equivalent to
    ``count_1 ≡ count_2``, so no verdict would transfer.
    """
    first_reduction = sum_count_reduction(first)
    second_reduction = sum_count_reduction(second)
    if first_reduction is None or second_reduction is None:
        return None
    first_count, first_multiplier, first_note = first_reduction
    second_count, second_multiplier, second_note = second_reduction
    if first_multiplier != second_multiplier:
        return None
    if first_note is None and second_note is None:
        return None
    notes = "; ".join(note for note in (first_note, second_note) if note)
    return first_count, second_count, first_multiplier, notes


def _decidable_by_local_equivalence(function: AggregationFunction, domain: Domain) -> bool:
    """Whether Theorem 6.5 (or 6.6 for prod over Q) applies."""
    if function.is_decomposable:
        return True
    if function.decomposable_over_nonzero_only and domain.is_dense:
        # prod over the rationals: Theorem 6.6.
        return True
    return False


def are_equivalent(
    first: Query,
    second: Query,
    domain: Domain = Domain.RATIONALS,
    prefer_quasilinear: bool = True,
    max_subsets: int = 2_000_000,
    counterexample_trials: int = 400,
    unknown_bound: Optional[int] = None,
    *,
    normalize: bool = True,
    seed: Optional[int] = None,
    context: Optional[SharedBaseContext] = None,
    workers: Optional[int] = None,
) -> EquivalenceResult:
    """Decide (when the paper's results allow it) whether ``first ≡ second``.

    ``unknown_bound`` optionally requests a bounded-equivalence check with the
    given N before reporting UNKNOWN for the undecided classes.  ``normalize``
    applies the sound pre-dispatch rewritings (:func:`normalize_for_dispatch`);
    ``seed`` makes every randomized witness search reproducible; ``context``
    shares a catalog-wide BASE across matrix cells; ``workers`` shards any
    bounded-equivalence search the dispatch performs.

    .. deprecated:: for repeated checks over a growing catalog prefer
       :class:`repro.session.Workspace` — each one-shot call here re-warms
       the Γ / signature caches and (with ``workers``) re-forks a pool that
       a session keeps alive, and a workspace additionally serves repeated
       cells from its verdict cache.
    """
    with _span(
        "dispatch.classify", first=first.name, second=second.name
    ) as dispatch_span:
        result = _dispatch_equivalence(
            first,
            second,
            domain=domain,
            prefer_quasilinear=prefer_quasilinear,
            max_subsets=max_subsets,
            counterexample_trials=counterexample_trials,
            unknown_bound=unknown_bound,
            normalize=normalize,
            seed=seed,
            context=context,
            workers=workers,
        )
        dispatch_span.note(verdict=result.verdict.value, method=result.method)
    return result


def _dispatch_equivalence(
    first: Query,
    second: Query,
    domain: Domain = Domain.RATIONALS,
    prefer_quasilinear: bool = True,
    max_subsets: int = 2_000_000,
    counterexample_trials: int = 400,
    unknown_bound: Optional[int] = None,
    *,
    normalize: bool = True,
    seed: Optional[int] = None,
    context: Optional[SharedBaseContext] = None,
    workers: Optional[int] = None,
) -> EquivalenceResult:
    """The dispatch body of :func:`are_equivalent` (which wraps it in the
    ``dispatch.classify`` trace span)."""
    if first.is_aggregate != second.is_aggregate:
        raise UnsupportedAggregateError(
            "cannot compare an aggregate query with a non-aggregate query"
        )
    if normalize:
        # Rewrite only when both sides reduce to count forms with one shared
        # multiplier: that is the case the rewriting *helps* (it moves the
        # pair into the decidable count/count class, and the verdict
        # transfers both ways).  Normalizing one side of a same-function
        # sum/sum pair would do the opposite — push a decidable pair into
        # the open fragment.
        reduction = pair_count_reduction(first, second)
        if reduction is not None:
            normalized_first, normalized_second, multiplier, notes = reduction
            try:
                with _span("dispatch.normalize", multiplier=str(multiplier)):
                    result = are_equivalent(
                        normalized_first,
                        normalized_second,
                        domain=domain,
                        prefer_quasilinear=prefer_quasilinear,
                        max_subsets=max_subsets,
                        counterexample_trials=counterexample_trials,
                        unknown_bound=unknown_bound,
                        normalize=False,
                        seed=seed,
                        context=context,
                        workers=workers,
                    )
            except SearchSpaceBudgetError:
                # The count forms reached a bounded search whose subset space
                # exceeds max_subsets.  The normalization is opportunistic —
                # fall back to dispatching the originals (for a sum/count
                # pair that is the counterexample-search/UNKNOWN path, which
                # is where such pairs landed before the rewriting existed).
                result = None
            if result is not None:
                # q_i ≡ c·count_i with c ≠ 0, so the verdict (and any witness
                # database) transfers verbatim to the originals.  The recorded
                # results are re-evaluated through the original queries — for
                # c ≠ 1 the count forms return different *values* on the same
                # witness.
                result.method += normalization_method_suffix(multiplier)
                result.details = (
                    f"{result.details}; {notes}" if result.details else notes
                )
                if (
                    result.counterexample is not None
                    and result.counterexample.database is not None
                ):
                    from ..engine.evaluator import evaluate

                    witness_database = result.counterexample.database
                    result.counterexample = Counterexample(
                        database=witness_database,
                        left_result=evaluate(first, witness_database),
                        right_result=evaluate(second, witness_database),
                        ordering=result.counterexample.ordering,
                        symbolic_atoms=result.counterexample.symbolic_atoms,
                    )
                return result
    search_seed = 0 if seed is None else seed

    if not first.is_aggregate:
        report = local_equivalence(
            first,
            second,
            domain=domain,
            max_subsets=max_subsets,
            context=context,
            workers=workers,
            seed=search_seed,
        )
        verdict = Verdict.EQUIVALENT if report.equivalent else Verdict.NOT_EQUIVALENT
        return EquivalenceResult(
            verdict,
            method="local-equivalence (set semantics)",
            domain=domain,
            report=report,
            counterexample=report.counterexample,
            details=f"bound τ = {report.bound}",
        )

    assert first.aggregate is not None and second.aggregate is not None
    if first.aggregate.function != second.aggregate.function:
        # Differing function names do NOT imply non-equivalence: e.g.
        # q(s, sum(a)) :- r(s, a), a = 1  and  q(s, count()) :- r(s, a), a = 1
        # agree on every database.  The paper only settles same-function
        # pairs, so search for a concrete witness and otherwise report
        # UNKNOWN instead of claiming NOT_EQUIVALENT without one.
        witness = find_counterexample(
            first, second, domain=domain, trials=counterexample_trials, seed=seed
        )
        if witness is not None:
            from ..engine.evaluator import evaluate

            return EquivalenceResult(
                Verdict.NOT_EQUIVALENT,
                method="counterexample search (different aggregation functions)",
                domain=domain,
                counterexample=Counterexample(
                    database=witness,
                    left_result=evaluate(first, witness),
                    right_result=evaluate(second, witness),
                ),
                details="a distinguishing database was found",
            )
        return EquivalenceResult(
            Verdict.UNKNOWN,
            method="different aggregation functions",
            domain=domain,
            details=(
                "the queries use different aggregation functions; the paper only "
                "settles pairs sharing a function, and no counterexample was found"
            ),
        )
    function = get_function(first.aggregate.function)

    if prefer_quasilinear and is_quasilinear_decidable(first, second, function, domain):
        verdict = quasilinear_equivalent(first, second, domain)
        counterexample = None
        if not verdict.equivalent:
            # The isomorphism argument is non-constructive; attach a concrete
            # witness when a quick search finds one.
            witness = find_counterexample(
                first, second, domain=domain, trials=counterexample_trials, seed=seed
            )
            if witness is not None:
                from ..engine.evaluator import evaluate

                counterexample = Counterexample(
                    database=witness,
                    left_result=evaluate(first, witness),
                    right_result=evaluate(second, witness),
                )
        return EquivalenceResult(
            Verdict.EQUIVALENT if verdict.equivalent else Verdict.NOT_EQUIVALENT,
            method="quasilinear isomorphism",
            domain=domain,
            details=verdict.reason,
            quasilinear=verdict,
            counterexample=counterexample,
        )

    if _decidable_by_local_equivalence(function, domain):
        report = local_equivalence(
            first,
            second,
            domain=domain,
            max_subsets=max_subsets,
            context=context,
            workers=workers,
            seed=search_seed,
        )
        verdict = Verdict.EQUIVALENT if report.equivalent else Verdict.NOT_EQUIVALENT
        return EquivalenceResult(
            verdict,
            method="local-equivalence (Theorem 6.5/6.6)",
            domain=domain,
            report=report,
            counterexample=report.counterexample,
            details=f"bound τ = {report.bound}",
        )

    # Undecided fragment: avg / cntd beyond the quasilinear case, prod over Z.
    witness = find_counterexample(
        first, second, domain=domain, trials=counterexample_trials, seed=seed
    )
    if witness is not None:
        from ..engine.evaluator import evaluate

        return EquivalenceResult(
            Verdict.NOT_EQUIVALENT,
            method="counterexample search",
            domain=domain,
            counterexample=Counterexample(
                database=witness,
                left_result=evaluate(first, witness),
                right_result=evaluate(second, witness),
            ),
            details="a distinguishing database was found",
        )
    details = (
        f"equivalence of {function.name}-queries outside the quasilinear fragment "
        "is not settled by the paper"
    )
    report = None
    if unknown_bound is not None:
        report = bounded_equivalence(
            first,
            second,
            unknown_bound,
            domain=domain,
            max_subsets=max_subsets,
            workers=workers,
            seed=search_seed,
        )
        if not report.equivalent:
            return EquivalenceResult(
                Verdict.NOT_EQUIVALENT,
                method=f"bounded equivalence (N={unknown_bound})",
                domain=domain,
                report=report,
                counterexample=report.counterexample,
            )
        details += f"; the queries are {unknown_bound}-equivalent"
    return EquivalenceResult(
        Verdict.UNKNOWN, method="undecided fragment", domain=domain, details=details, report=report
    )


def decide_or_raise(first: Query, second: Query, domain: Domain = Domain.RATIONALS) -> bool:
    """A strict variant of :func:`are_equivalent` that raises
    :class:`UndecidableError` instead of returning UNKNOWN."""
    result = are_equivalent(first, second, domain=domain)
    if result.verdict is Verdict.UNKNOWN:
        raise UndecidableError(result.details)
    return result.is_equivalent


# ----------------------------------------------------------------------
# Table 2: decidability of the query classes
# ----------------------------------------------------------------------
@dataclass
class DecidabilityRow:
    """One row of Table 2."""

    function: str
    bounded_equivalence: bool
    equivalence: str
    quasilinear: str

    def cells(self) -> tuple[str, str, str]:
        return ("yes" if self.bounded_equivalence else "no", self.equivalence, self.quasilinear)


#: The paper's Table 2, transcribed for comparison.  The ``equivalence`` and
#: ``quasilinear`` cells are strings because the paper leaves some cells blank
#: and marks cntd's quasilinear cell as "special cases".
PAPER_TABLE2: dict[str, tuple[bool, str, str]] = {
    "count": (True, "yes", "yes"),
    "max": (True, "yes", "yes"),
    "sum": (True, "yes", "yes"),
    "prod": (True, "yes", "yes"),
    "top2": (True, "yes", "yes"),
    "avg": (True, "open", "yes"),
    "cntd": (True, "open", "special cases"),
    "parity": (True, "yes", "yes"),
}


def build_table2(domain: Domain = Domain.RATIONALS) -> list[DecidabilityRow]:
    """Regenerate Table 2 from the traits of the implemented functions."""
    rows = []
    for function in PAPER_FUNCTIONS:
        bounded = function.is_order_decidable_over(domain)
        if _decidable_by_local_equivalence(function, domain):
            equivalence = "yes"
        else:
            equivalence = "open"
        if function.is_singleton_determining:
            quasilinear = "yes"
        elif function.name == "cntd":
            quasilinear = "special cases"
        else:
            quasilinear = "open"
        rows.append(DecidabilityRow(function.name, bounded, equivalence, quasilinear))
    return rows


def table2_matches_paper(rows) -> bool:
    """Whether the regenerated Table 2 agrees with the paper cell by cell."""
    for row in rows:
        expected = PAPER_TABLE2.get(row.function)
        if expected is None:
            continue
        bounded, equivalence, quasilinear = expected
        if row.bounded_equivalence != bounded:
            return False
        if row.equivalence != equivalence or row.quasilinear != quasilinear:
            return False
    return True


def format_table2(rows) -> str:
    """Render Table 2 in the same layout as the paper."""
    header = (
        f"{'':10s} {'Bounded Equiv.':>15s} {'Equivalence':>12s} {'Quasilinear=Iso':>16s}"
    )
    lines = [header]
    for row in rows:
        cells = row.cells()
        lines.append(f"{row.function:10s} {cells[0]:>15s} {cells[1]:>12s} {cells[2]:>16s}")
    return "\n".join(lines)
