"""The top-level equivalence checker and the decidability map (Table 2).

:func:`are_equivalent` dispatches a pair of queries to the strongest decision
procedure the paper provides for them:

1. **Non-aggregate queries** — local equivalence under set semantics
   (Levy–Sagiv style reduction to small databases).
2. **Quasilinear aggregate queries** with a singleton-determining function (or
   ``cntd`` under the side conditions of Theorem 7.4) — isomorphism of the
   reduced queries, in polynomial time (Section 7).
3. **Decomposable functions** (``count``, ``parity``, ``sum``, ``max``,
   ``top2``, ``min``, ``bot2``, …) and ``prod`` over the rationals — local
   equivalence via the bounded-equivalence procedure (Theorems 6.5 and 6.6).
4. **Everything else** (``avg`` and ``cntd`` outside the quasilinear fragment,
   ``prod`` over the integers) — the paper leaves the problem open; the checker
   runs a counterexample search and a bounded check, and reports ``UNKNOWN``
   when neither settles the question.

Pairs using *different* aggregation functions are also outside the paper's
decidable classes (differing names do not imply differing semantics — a ``sum``
of values pinned to 1 is a ``count``), so they get the same treatment as the
open fragment: ``NOT_EQUIVALENT`` with a concrete witness when the search finds
one, ``UNKNOWN`` otherwise.  Before dispatching, a sound semantic
normalization rewrites exactly that common case — ``sum`` over an aggregation
variable pinned to the constant 1 becomes ``count`` (the two produce identical
results on *every* database) — so such pairs land in the decidable
same-function classes instead of the open fragment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..aggregates.functions import AggregationFunction, PAPER_FUNCTIONS, get_function
from ..datalog.atoms import ComparisonOp
from ..datalog.database import Database
from ..datalog.queries import AggregateTerm, Query, term_size_of_pair
from ..datalog.terms import Constant
from ..domains import Domain
from ..errors import UndecidableError, UnsupportedAggregateError
from .bounded import (
    Counterexample,
    EquivalenceReport,
    SharedBaseContext,
    bounded_equivalence,
    local_equivalence,
)
from .counterexample import find_counterexample
from .quasilinear import QuasilinearVerdict, is_quasilinear_decidable, quasilinear_equivalent


class Verdict(enum.Enum):
    """Outcome of an equivalence check."""

    EQUIVALENT = "equivalent"
    NOT_EQUIVALENT = "not equivalent"
    UNKNOWN = "unknown"


@dataclass
class EquivalenceResult:
    """The outcome of :func:`are_equivalent`, with provenance."""

    verdict: Verdict
    method: str
    domain: Domain
    details: str = ""
    counterexample: Optional[Counterexample] = None
    report: Optional[EquivalenceReport] = None
    quasilinear: Optional[QuasilinearVerdict] = None

    @property
    def is_equivalent(self) -> bool:
        return self.verdict is Verdict.EQUIVALENT

    def __bool__(self) -> bool:
        return self.is_equivalent

    def __str__(self) -> str:
        return f"{self.verdict.value} (method: {self.method}) {self.details}".strip()


def normalize_for_dispatch(query: Query) -> tuple[Query, Optional[str]]:
    """Semantic normalization applied before dispatch (sound rewriting).

    ``sum`` over an aggregation variable that every disjunct pins to the
    constant 1 (via an explicit ``y = 1`` comparison) is rewritten to
    ``count()``: each satisfying assignment contributes exactly 1 to the sum,
    so the two queries return identical results on every database.  Returns
    the (possibly rewritten) query and a human-readable note when the rule
    fired.
    """
    aggregate = query.aggregate
    if aggregate is None or aggregate.function != "sum" or len(aggregate.arguments) != 1:
        return query, None
    variable = aggregate.arguments[0]
    one = Constant(1)
    for disjunct in query.disjuncts:
        pinned = any(
            comparison.op is ComparisonOp.EQ
            and {comparison.left, comparison.right} == {variable, one}
            for comparison in disjunct.comparisons
        )
        if not pinned:
            return query, None
    rewritten = query.with_aggregate(AggregateTerm("count", ()))
    return rewritten, f"sum({variable}) with {variable} = 1 rewritten to count()"


def _decidable_by_local_equivalence(function: AggregationFunction, domain: Domain) -> bool:
    """Whether Theorem 6.5 (or 6.6 for prod over Q) applies."""
    if function.is_decomposable:
        return True
    if function.decomposable_over_nonzero_only and domain.is_dense:
        # prod over the rationals: Theorem 6.6.
        return True
    return False


def are_equivalent(
    first: Query,
    second: Query,
    domain: Domain = Domain.RATIONALS,
    prefer_quasilinear: bool = True,
    max_subsets: int = 2_000_000,
    counterexample_trials: int = 400,
    unknown_bound: Optional[int] = None,
    *,
    normalize: bool = True,
    seed: Optional[int] = None,
    context: Optional[SharedBaseContext] = None,
    workers: Optional[int] = None,
) -> EquivalenceResult:
    """Decide (when the paper's results allow it) whether ``first ≡ second``.

    ``unknown_bound`` optionally requests a bounded-equivalence check with the
    given N before reporting UNKNOWN for the undecided classes.  ``normalize``
    applies the sound pre-dispatch rewritings (:func:`normalize_for_dispatch`);
    ``seed`` makes every randomized witness search reproducible; ``context``
    shares a catalog-wide BASE across matrix cells; ``workers`` shards any
    bounded-equivalence search the dispatch performs.
    """
    if first.is_aggregate != second.is_aggregate:
        raise UnsupportedAggregateError(
            "cannot compare an aggregate query with a non-aggregate query"
        )
    if normalize:
        normalized_first, first_note = normalize_for_dispatch(first)
        normalized_second, second_note = normalize_for_dispatch(second)
        # Rewrite only when the normalized pair shares one aggregation
        # function: that is the case the rewriting *helps* (it moves a
        # different-function pair into the decidable same-function classes).
        # Normalizing one side of a same-function sum/sum pair would do the
        # opposite — push a decidable pair into the open fragment.
        functions_align = (
            normalized_first.aggregate_function == normalized_second.aggregate_function
        )
        if (first_note or second_note) and functions_align:
            result = are_equivalent(
                normalized_first,
                normalized_second,
                domain=domain,
                prefer_quasilinear=prefer_quasilinear,
                max_subsets=max_subsets,
                counterexample_trials=counterexample_trials,
                unknown_bound=unknown_bound,
                normalize=False,
                seed=seed,
                context=context,
                workers=workers,
            )
            # The rewriting is result-preserving on every database, so the
            # verdict (and any witness) transfers verbatim to the originals.
            result.method += " (after sum→count normalization)"
            notes = "; ".join(note for note in (first_note, second_note) if note)
            result.details = f"{result.details}; {notes}" if result.details else notes
            return result
    search_seed = 0 if seed is None else seed

    if not first.is_aggregate:
        report = local_equivalence(
            first,
            second,
            domain=domain,
            max_subsets=max_subsets,
            context=context,
            workers=workers,
            seed=search_seed,
        )
        verdict = Verdict.EQUIVALENT if report.equivalent else Verdict.NOT_EQUIVALENT
        return EquivalenceResult(
            verdict,
            method="local-equivalence (set semantics)",
            domain=domain,
            report=report,
            counterexample=report.counterexample,
            details=f"bound τ = {report.bound}",
        )

    assert first.aggregate is not None and second.aggregate is not None
    if first.aggregate.function != second.aggregate.function:
        # Differing function names do NOT imply non-equivalence: e.g.
        # q(s, sum(a)) :- r(s, a), a = 1  and  q(s, count()) :- r(s, a), a = 1
        # agree on every database.  The paper only settles same-function
        # pairs, so search for a concrete witness and otherwise report
        # UNKNOWN instead of claiming NOT_EQUIVALENT without one.
        witness = find_counterexample(
            first, second, domain=domain, trials=counterexample_trials, seed=seed
        )
        if witness is not None:
            from ..engine.evaluator import evaluate

            return EquivalenceResult(
                Verdict.NOT_EQUIVALENT,
                method="counterexample search (different aggregation functions)",
                domain=domain,
                counterexample=Counterexample(
                    database=witness,
                    left_result=evaluate(first, witness),
                    right_result=evaluate(second, witness),
                ),
                details="a distinguishing database was found",
            )
        return EquivalenceResult(
            Verdict.UNKNOWN,
            method="different aggregation functions",
            domain=domain,
            details=(
                "the queries use different aggregation functions; the paper only "
                "settles pairs sharing a function, and no counterexample was found"
            ),
        )
    function = get_function(first.aggregate.function)

    if prefer_quasilinear and is_quasilinear_decidable(first, second, function, domain):
        verdict = quasilinear_equivalent(first, second, domain)
        counterexample = None
        if not verdict.equivalent:
            # The isomorphism argument is non-constructive; attach a concrete
            # witness when a quick search finds one.
            witness = find_counterexample(
                first, second, domain=domain, trials=counterexample_trials, seed=seed
            )
            if witness is not None:
                from ..engine.evaluator import evaluate

                counterexample = Counterexample(
                    database=witness,
                    left_result=evaluate(first, witness),
                    right_result=evaluate(second, witness),
                )
        return EquivalenceResult(
            Verdict.EQUIVALENT if verdict.equivalent else Verdict.NOT_EQUIVALENT,
            method="quasilinear isomorphism",
            domain=domain,
            details=verdict.reason,
            quasilinear=verdict,
            counterexample=counterexample,
        )

    if _decidable_by_local_equivalence(function, domain):
        report = local_equivalence(
            first,
            second,
            domain=domain,
            max_subsets=max_subsets,
            context=context,
            workers=workers,
            seed=search_seed,
        )
        verdict = Verdict.EQUIVALENT if report.equivalent else Verdict.NOT_EQUIVALENT
        return EquivalenceResult(
            verdict,
            method="local-equivalence (Theorem 6.5/6.6)",
            domain=domain,
            report=report,
            counterexample=report.counterexample,
            details=f"bound τ = {report.bound}",
        )

    # Undecided fragment: avg / cntd beyond the quasilinear case, prod over Z.
    witness = find_counterexample(
        first, second, domain=domain, trials=counterexample_trials, seed=seed
    )
    if witness is not None:
        from ..engine.evaluator import evaluate

        return EquivalenceResult(
            Verdict.NOT_EQUIVALENT,
            method="counterexample search",
            domain=domain,
            counterexample=Counterexample(
                database=witness,
                left_result=evaluate(first, witness),
                right_result=evaluate(second, witness),
            ),
            details="a distinguishing database was found",
        )
    details = (
        f"equivalence of {function.name}-queries outside the quasilinear fragment "
        "is not settled by the paper"
    )
    report = None
    if unknown_bound is not None:
        report = bounded_equivalence(
            first,
            second,
            unknown_bound,
            domain=domain,
            max_subsets=max_subsets,
            workers=workers,
            seed=search_seed,
        )
        if not report.equivalent:
            return EquivalenceResult(
                Verdict.NOT_EQUIVALENT,
                method=f"bounded equivalence (N={unknown_bound})",
                domain=domain,
                report=report,
                counterexample=report.counterexample,
            )
        details += f"; the queries are {unknown_bound}-equivalent"
    return EquivalenceResult(
        Verdict.UNKNOWN, method="undecided fragment", domain=domain, details=details, report=report
    )


def decide_or_raise(first: Query, second: Query, domain: Domain = Domain.RATIONALS) -> bool:
    """A strict variant of :func:`are_equivalent` that raises
    :class:`UndecidableError` instead of returning UNKNOWN."""
    result = are_equivalent(first, second, domain=domain)
    if result.verdict is Verdict.UNKNOWN:
        raise UndecidableError(result.details)
    return result.is_equivalent


# ----------------------------------------------------------------------
# Table 2: decidability of the query classes
# ----------------------------------------------------------------------
@dataclass
class DecidabilityRow:
    """One row of Table 2."""

    function: str
    bounded_equivalence: bool
    equivalence: str
    quasilinear: str

    def cells(self) -> tuple[str, str, str]:
        return ("yes" if self.bounded_equivalence else "no", self.equivalence, self.quasilinear)


#: The paper's Table 2, transcribed for comparison.  The ``equivalence`` and
#: ``quasilinear`` cells are strings because the paper leaves some cells blank
#: and marks cntd's quasilinear cell as "special cases".
PAPER_TABLE2: dict[str, tuple[bool, str, str]] = {
    "count": (True, "yes", "yes"),
    "max": (True, "yes", "yes"),
    "sum": (True, "yes", "yes"),
    "prod": (True, "yes", "yes"),
    "top2": (True, "yes", "yes"),
    "avg": (True, "open", "yes"),
    "cntd": (True, "open", "special cases"),
    "parity": (True, "yes", "yes"),
}


def build_table2(domain: Domain = Domain.RATIONALS) -> list[DecidabilityRow]:
    """Regenerate Table 2 from the traits of the implemented functions."""
    rows = []
    for function in PAPER_FUNCTIONS:
        bounded = function.is_order_decidable_over(domain)
        if _decidable_by_local_equivalence(function, domain):
            equivalence = "yes"
        else:
            equivalence = "open"
        if function.is_singleton_determining:
            quasilinear = "yes"
        elif function.name == "cntd":
            quasilinear = "special cases"
        else:
            quasilinear = "open"
        rows.append(DecidabilityRow(function.name, bounded, equivalence, quasilinear))
    return rows


def table2_matches_paper(rows) -> bool:
    """Whether the regenerated Table 2 agrees with the paper cell by cell."""
    for row in rows:
        expected = PAPER_TABLE2.get(row.function)
        if expected is None:
            continue
        bounded, equivalence, quasilinear = expected
        if row.bounded_equivalence != bounded:
            return False
        if row.equivalence != equivalence or row.quasilinear != quasilinear:
            return False
    return True


def format_table2(rows) -> str:
    """Render Table 2 in the same layout as the paper."""
    header = (
        f"{'':10s} {'Bounded Equiv.':>15s} {'Equivalence':>12s} {'Quasilinear=Iso':>16s}"
    )
    lines = [header]
    for row in rows:
        cells = row.cells()
        lines.append(f"{row.function:10s} {cells[0]:>15s} {cells[1]:>12s} {cells[2]:>16s}")
    return "\n".join(lines)
