"""Decision procedures: the paper's primary contribution.

* bounded and local equivalence (Section 4, Theorem 4.8),
* database decompositions and the reduction of equivalence to local
  equivalence (Sections 5 and 6),
* quasilinear equivalence via isomorphism (Section 7),
* the bag-set / set semantics corollaries (Section 8),
* the top-level dispatcher :func:`are_equivalent` and the Table 2 generator.
"""

from .bagset import as_count_query, bag_set_equivalent, set_equivalent
from .bounded import (
    BAG_SET_SEMANTICS,
    SET_SEMANTICS,
    Counterexample,
    EquivalenceReport,
    bounded_equivalence,
    build_base,
    local_equivalence,
)
from .counterexample import (
    enumerate_databases,
    exhaustive_counterexample,
    find_counterexample,
    random_database,
    value_pool,
)
from .decomposition import (
    DecompositionCheck,
    decomposition,
    decomposition_principle_holds,
    direct_aggregate,
    extend_database,
    recombine_group,
    recombine_idempotent,
    verify_decomposition,
)
from .equivalence import (
    PAPER_TABLE2,
    DecidabilityRow,
    EquivalenceResult,
    Verdict,
    are_equivalent,
    build_table2,
    decide_or_raise,
    format_table2,
    table2_matches_paper,
)
from .isomorphism import (
    are_isomorphic,
    find_homomorphism,
    find_isomorphism,
    has_homomorphism,
    homomorphisms,
    isomorphisms,
)
from .quasilinear import (
    QuasilinearVerdict,
    is_quasilinear_decidable,
    linear_equivalent,
    quasilinear_equivalent,
)
from .reduction import (
    condition_satisfiable,
    entailed_substitution,
    is_reduced,
    query_satisfiable,
    reduce_condition,
    reduce_query,
    satisfiable_disjuncts,
)

__all__ = [
    "BAG_SET_SEMANTICS",
    "Counterexample",
    "DecidabilityRow",
    "DecompositionCheck",
    "EquivalenceReport",
    "EquivalenceResult",
    "PAPER_TABLE2",
    "QuasilinearVerdict",
    "SET_SEMANTICS",
    "Verdict",
    "are_equivalent",
    "are_isomorphic",
    "as_count_query",
    "bag_set_equivalent",
    "bounded_equivalence",
    "build_base",
    "build_table2",
    "condition_satisfiable",
    "decide_or_raise",
    "decomposition",
    "decomposition_principle_holds",
    "direct_aggregate",
    "entailed_substitution",
    "enumerate_databases",
    "exhaustive_counterexample",
    "extend_database",
    "find_counterexample",
    "find_homomorphism",
    "find_isomorphism",
    "format_table2",
    "has_homomorphism",
    "homomorphisms",
    "is_quasilinear_decidable",
    "is_reduced",
    "isomorphisms",
    "linear_equivalent",
    "local_equivalence",
    "quasilinear_equivalent",
    "query_satisfiable",
    "random_database",
    "recombine_group",
    "recombine_idempotent",
    "reduce_condition",
    "reduce_query",
    "satisfiable_disjuncts",
    "set_equivalent",
    "table2_matches_paper",
    "value_pool",
    "verify_decomposition",
]
