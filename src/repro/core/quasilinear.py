"""Equivalence of conjunctive quasilinear queries (Section 7).

A conjunctive query is *quasilinear* when no predicate that occurs in a
positive literal occurs more than once (in particular, no predicate occurs both
positively and negated).  For quasilinear α-queries with a singleton-
determining aggregation function, equivalence coincides with isomorphism of the
reduced queries (Theorems 7.1 and 7.2); for ``cntd`` the same holds under the
additional conditions of Theorem 7.4 (comparisons restricted to ``≤``/``≥``,
and either a dense domain or no constants).  Since the positive parts of
quasilinear queries are linear, the isomorphism test is polynomial
(Corollary 7.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..aggregates.functions import AggregationFunction, get_function
from ..datalog.atoms import ComparisonOp
from ..datalog.queries import Query
from ..datalog.terms import Term, Variable
from ..domains import Domain
from ..errors import UndecidableError
from .isomorphism import are_isomorphic, find_isomorphism
from .reduction import query_satisfiable, reduce_query


@dataclass
class QuasilinearVerdict:
    """The outcome of the quasilinear decision procedure."""

    equivalent: bool
    reason: str
    isomorphism: Optional[dict[Variable, Term]] = None
    reduced_first: Optional[Query] = None
    reduced_second: Optional[Query] = None

    def __bool__(self) -> bool:
        return self.equivalent


def is_quasilinear_decidable(
    query: Query, other: Query, function: Optional[AggregationFunction], domain: Domain
) -> bool:
    """Whether the pair of queries falls into the fragment covered by
    Theorems 7.2 and 7.4."""
    if not (query.is_quasilinear and other.is_quasilinear):
        return False
    if function is None:
        # Non-aggregate queries behave like max-queries for this purpose only
        # when they are positive; the general non-aggregate case is handled by
        # the Levy–Sagiv style procedure instead.
        return False
    if function.is_singleton_determining:
        return True
    if function.name == "cntd":
        return _cntd_conditions_hold(query, domain) and _cntd_conditions_hold(other, domain)
    return False


def _cntd_conditions_hold(query: Query, domain: Domain) -> bool:
    """The side conditions of Theorem 7.4 for count-distinct queries."""
    allowed = {ComparisonOp.LE, ComparisonOp.GE, ComparisonOp.EQ}
    for disjunct in query.disjuncts:
        for comparison in disjunct.comparisons:
            if comparison.op not in allowed:
                return False
    if domain.is_dense:
        return True
    return not query.constants()


def quasilinear_equivalent(
    first: Query, second: Query, domain: Domain = Domain.RATIONALS
) -> QuasilinearVerdict:
    """Decide equivalence of two quasilinear aggregate queries.

    The procedure follows Section 7: reduce both queries, dispose of
    unsatisfiable queries, and compare the reduced queries up to isomorphism.
    """
    if not first.is_aggregate or not second.is_aggregate:
        raise UndecidableError("the quasilinear procedure expects aggregate queries")
    assert first.aggregate is not None and second.aggregate is not None
    if first.aggregate.function != second.aggregate.function:
        return QuasilinearVerdict(False, "different aggregation functions")
    function = get_function(first.aggregate.function)
    if not is_quasilinear_decidable(first, second, function, domain):
        raise UndecidableError(
            "the queries are outside the quasilinear fragment covered by Theorems 7.2/7.4"
        )

    first_satisfiable = query_satisfiable(first, domain)
    second_satisfiable = query_satisfiable(second, domain)
    if not first_satisfiable and not second_satisfiable:
        return QuasilinearVerdict(True, "both queries are unsatisfiable")
    if first_satisfiable != second_satisfiable:
        return QuasilinearVerdict(False, "exactly one of the queries is unsatisfiable")

    reduced_first = reduce_query(first, domain)
    reduced_second = reduce_query(second, domain)
    isomorphism = find_isomorphism(reduced_first, reduced_second, domain)
    if isomorphism is not None:
        return QuasilinearVerdict(
            True,
            "the reduced queries are isomorphic",
            isomorphism=isomorphism,
            reduced_first=reduced_first,
            reduced_second=reduced_second,
        )
    return QuasilinearVerdict(
        False,
        "the reduced queries are not isomorphic (equivalence = isomorphism for this class)",
        reduced_first=reduced_first,
        reduced_second=reduced_second,
    )


def linear_equivalent(first: Query, second: Query, domain: Domain = Domain.RATIONALS) -> bool:
    """Equivalence for *linear* (positive, non-repeating) queries — the
    special case from which Theorem 7.1 lifts to quasilinear queries."""
    if not (first.is_linear and second.is_linear):
        raise UndecidableError("linear_equivalent expects linear queries")
    verdict = quasilinear_equivalent(first, second, domain)
    return verdict.equivalent


def positive_projections_isomorphic(
    first: Query, second: Query, domain: Domain = Domain.RATIONALS
) -> bool:
    """Whether the positive parts q+ and q'+ (positive atoms plus comparisons,
    negation dropped) are isomorphic — the case split used in the proof of
    Theorem 7.1."""
    return are_isomorphic(_positive_part(first), _positive_part(second), domain)


def _positive_part(query: Query) -> Query:
    condition = query.disjuncts[0]
    literals = tuple(condition.positive_atoms) + tuple(condition.comparisons)
    return Query(
        query.name,
        query.head_terms,
        (type(condition)(literals),),
        query.aggregate,
    )
