"""Query reduction and satisfiability of conjunctive queries.

Section 7 of the paper works with *reduced* queries: conjunctive queries whose
comparisons do not entail an equality between two variables or between a
variable and a domain constant.  Every conjunctive query (with negation) can be
rewritten in polynomial time into an equivalent reduced query by substituting
entailed equalities; the head of the reduced query may then contain constants.

This module implements

* :func:`reduce_query` — the reduction of a conjunctive query over Z or Q,
* :func:`condition_satisfiable` / :func:`query_satisfiable` — exact
  satisfiability of conditions and disjunctive queries with negation and
  comparisons, via enumeration of the complete orderings of the condition's
  terms (a condition is satisfiable iff some complete ordering consistent with
  its comparisons creates no clash between a negated atom and a positive atom).
"""

from __future__ import annotations

from typing import Optional

from ..datalog.atoms import Comparison, ComparisonOp, RelationalAtom
from ..datalog.conditions import Condition
from ..datalog.queries import Query
from ..datalog.terms import Constant, Term, Variable
from ..domains import Domain
from ..errors import MalformedQueryError
from ..orderings.complete_orderings import CompleteOrdering, enumerate_complete_orderings
from ..orderings.constraints import ComparisonSystem


# ----------------------------------------------------------------------
# Reduction
# ----------------------------------------------------------------------
def entailed_substitution(condition: Condition, domain: Domain) -> dict[Variable, Term]:
    """The substitution that eliminates every equality entailed by the
    condition's comparisons over the domain.

    Variables pinned to a constant are mapped to that constant; groups of
    variables forced to be equal are mapped to a single representative.
    """
    system = ComparisonSystem(condition.comparisons, domain)
    if not system.is_satisfiable():
        return {}
    substitution: dict[Variable, Term] = {}
    for variable, value in system.pinned_constants().items():
        substitution[variable] = Constant(value)
    # Union-find over variables forced equal (that are not already pinned).
    parent: dict[Variable, Variable] = {}

    def find(variable: Variable) -> Variable:
        while parent.get(variable, variable) != variable:
            parent[variable] = parent.get(parent[variable], parent[variable])
            variable = parent[variable]
        return variable

    variables = sorted(system.variables(), key=lambda v: v.name)
    for index, first in enumerate(variables):
        if first in substitution:
            continue
        for second in variables[index + 1 :]:
            if second in substitution:
                continue
            if system.entails(Comparison(first, ComparisonOp.EQ, second)):
                root_first, root_second = find(first), find(second)
                if root_first != root_second:
                    parent[max(root_first, root_second, key=lambda v: v.name)] = min(
                        root_first, root_second, key=lambda v: v.name
                    )
    for variable in variables:
        if variable in substitution:
            continue
        root = find(variable)
        if root != variable:
            substitution[variable] = root
    return substitution


def reduce_condition(condition: Condition, domain: Domain) -> tuple[Condition, dict[Variable, Term]]:
    """Apply the entailed substitution and drop the trivial comparisons that
    result.  Returns the reduced condition and the substitution used."""
    substitution = entailed_substitution(condition, domain)
    if not substitution:
        return condition.without_trivial_comparisons(), {}
    reduced = condition.substitute(substitution).without_trivial_comparisons()
    return reduced, substitution


def reduce_query(query: Query, domain: Domain = Domain.RATIONALS) -> Query:
    """An equivalent reduced query (conjunctive queries only).

    The substitution derived from the single disjunct is applied to the head as
    well, so the head of the result may contain constants.  Aggregation
    variables cannot syntactically be replaced by constants, so a substitution
    that would pin an aggregation variable to a constant is simply not applied
    to that variable (the query then stays equivalent but keeps the pinning
    comparisons for that variable).
    """
    if not query.is_conjunctive:
        raise MalformedQueryError("reduction is defined for conjunctive queries")
    condition = query.disjuncts[0]
    substitution = entailed_substitution(condition, domain)
    # The head syntax constrains which substitutions may be applied:
    # aggregation variables must remain variables and must stay disjoint from
    # the grouping variables.  Offending pairs are dropped (the entailed
    # equality then simply remains in the body, which preserves equivalence).
    aggregation_variables = set(query.aggregation_variables())
    grouping_variables = query.grouping_variables()
    for variable in list(substitution):
        target = substitution[variable]
        if variable in aggregation_variables:
            if isinstance(target, Constant) or target in grouping_variables:
                del substitution[variable]
        elif variable in grouping_variables and target in aggregation_variables:
            del substitution[variable]
    if not substitution:
        return query.with_disjuncts((condition.without_trivial_comparisons(),))
    reduced_condition = condition.substitute(substitution).without_trivial_comparisons()
    head_terms = tuple(
        substitution.get(term, term) if isinstance(term, Variable) else term
        for term in query.head_terms
    )
    aggregate = query.aggregate
    if aggregate is not None:
        renamed_arguments = tuple(
            substitution.get(argument, argument) for argument in aggregate.arguments
        )
        aggregate = type(aggregate)(aggregate.function, renamed_arguments)
    return Query(query.name, head_terms, (reduced_condition,), aggregate)


def reduction_for_keying(query: Query, domain: Domain = Domain.RATIONALS) -> Query:
    """The reduction the canonical verdict-store key traverses
    (:mod:`repro.store.canon`).

    Conjunctive queries go through :func:`reduce_query` verbatim, so two
    queries differing only in entailed equalities (``y = 1`` vs
    ``y = z, z = 1``) share a canonical form.  Disjunctive queries have no
    single head substitution (each disjunct entails its own equalities, but
    the head is shared), so they only drop per-disjunct trivial comparisons —
    a weaker but still equivalence-preserving normal form.  Every transform
    applied here preserves query semantics, which is what makes hashing the
    result sound as a cache key: equal keys imply equivalent queries, never
    merely similar ones.
    """
    if query.is_conjunctive:
        return reduce_query(query, domain)
    return query.with_disjuncts(
        tuple(disjunct.without_trivial_comparisons() for disjunct in query.disjuncts)
    )


def is_reduced(query: Query, domain: Domain = Domain.RATIONALS) -> bool:
    """Whether a conjunctive query is already reduced over the domain."""
    if not query.is_conjunctive:
        raise MalformedQueryError("reduction is defined for conjunctive queries")
    condition = query.disjuncts[0]
    system = ComparisonSystem(condition.comparisons, domain)
    if not system.is_satisfiable():
        return True
    if system.pinned_constants():
        return False
    variables = sorted(system.variables(), key=lambda v: v.name)
    for index, first in enumerate(variables):
        for second in variables[index + 1 :]:
            if system.entails(Comparison(first, ComparisonOp.EQ, second)):
                return False
    return True


# ----------------------------------------------------------------------
# Satisfiability
# ----------------------------------------------------------------------
def condition_satisfiable(condition: Condition, domain: Domain = Domain.RATIONALS) -> bool:
    """Exact satisfiability of a safe condition with negation and comparisons.

    A condition ``P ∧ N ∧ C`` is satisfiable iff there is a complete ordering
    of its terms that satisfies every comparison of ``C`` and under which no
    negated atom coincides (up to the ordering's equalities) with a positive
    atom: instantiating such an ordering injectively on blocks yields a
    witnessing database, and conversely a witnessing assignment induces such an
    ordering.
    """
    terms = condition.terms()
    if not terms:
        return not condition.negated_atoms or all(
            atom.positive() not in condition.positive_atoms for atom in condition.negated_atoms
        )
    for ordering in enumerate_complete_orderings(terms, domain):
        if not all(ordering.satisfies(comparison) for comparison in condition.comparisons):
            continue
        if not _has_negation_clash(condition, ordering):
            return True
    return False


def _has_negation_clash(condition: Condition, ordering: CompleteOrdering) -> bool:
    positive_rows = {
        (atom.predicate, tuple(_representative(ordering, argument) for argument in atom.arguments))
        for atom in condition.positive_atoms
    }
    for atom in condition.negated_atoms:
        row = (
            atom.predicate,
            tuple(_representative(ordering, argument) for argument in atom.arguments),
        )
        if row in positive_rows:
            return True
    return False


def _representative(ordering: CompleteOrdering, term: Term) -> Term:
    return ordering.representative(ordering.block_index(term))


def query_satisfiable(query: Query, domain: Domain = Domain.RATIONALS) -> bool:
    """Whether some disjunct of the query is satisfiable over the domain."""
    return any(condition_satisfiable(disjunct, domain) for disjunct in query.disjuncts)


def satisfiable_disjuncts(query: Query, domain: Domain = Domain.RATIONALS) -> Query:
    """The query restricted to its satisfiable disjuncts (an equivalent query
    when at least one disjunct is satisfiable)."""
    kept = tuple(
        disjunct for disjunct in query.disjuncts if condition_satisfiable(disjunct, domain)
    )
    if not kept:
        return query
    return query.with_disjuncts(kept)
