"""A fluent, programmatic query builder.

The parser (:mod:`repro.datalog.parser`) is the most compact way to write
queries in tests and examples, but programmatically generated workloads are
easier to express with a builder::

    query = (
        QueryBuilder("q", head=["x"], aggregate=("sum", ["y"]))
        .atom("p", "x", "y")
        .negated("r", "x")
        .compare("y", ">", 0)
        .disjunct()
        .atom("p", "x", "y")
        .compare("x", "<", 10)
        .build()
    )

Each call appends a literal to the *current* disjunct; :meth:`QueryBuilder.disjunct`
starts a new one.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from ..domains import NumericLike
from ..errors import MalformedQueryError
from .atoms import Comparison, ComparisonOp, RelationalAtom
from .conditions import Condition
from .queries import AggregateTerm, Query
from .terms import Term, Variable, make_term, make_terms

TermLike = Union[Term, str, NumericLike]


class QueryBuilder:
    """Incrementally build a disjunctive (aggregate) query."""

    def __init__(
        self,
        name: str,
        head: Sequence[TermLike] = (),
        aggregate: Optional[tuple[str, Sequence[TermLike]]] = None,
    ):
        self._name = name
        self._head = make_terms(head)
        self._aggregate = None
        if aggregate is not None:
            function, arguments = aggregate
            argument_terms = make_terms(arguments)
            for term in argument_terms:
                if not isinstance(term, Variable):
                    raise MalformedQueryError("aggregation arguments must be variables")
            self._aggregate = AggregateTerm(function, argument_terms)  # type: ignore[arg-type]
        self._disjuncts: list[list] = [[]]

    # ------------------------------------------------------------------
    # Literal construction
    # ------------------------------------------------------------------
    def atom(self, predicate: str, *arguments: TermLike) -> "QueryBuilder":
        """Append a positive relational atom to the current disjunct."""
        self._disjuncts[-1].append(RelationalAtom(predicate, make_terms(arguments)))
        return self

    def negated(self, predicate: str, *arguments: TermLike) -> "QueryBuilder":
        """Append a negated relational atom to the current disjunct."""
        self._disjuncts[-1].append(RelationalAtom(predicate, make_terms(arguments), negated=True))
        return self

    def compare(self, left: TermLike, op: str, right: TermLike) -> "QueryBuilder":
        """Append a comparison to the current disjunct."""
        self._disjuncts[-1].append(
            Comparison(make_term(left), ComparisonOp.from_symbol(op), make_term(right))
        )
        return self

    def equal(self, left: TermLike, right: TermLike) -> "QueryBuilder":
        return self.compare(left, "=", right)

    def literals(self, literals: Iterable) -> "QueryBuilder":
        """Append already-constructed literals to the current disjunct."""
        self._disjuncts[-1].extend(literals)
        return self

    def disjunct(self) -> "QueryBuilder":
        """Close the current disjunct and start a new one."""
        if not self._disjuncts[-1]:
            raise MalformedQueryError("cannot start a new disjunct: the current one is empty")
        self._disjuncts.append([])
        return self

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def build(self) -> Query:
        disjuncts = [Condition(tuple(literals)) for literals in self._disjuncts if literals]
        if not disjuncts:
            raise MalformedQueryError("cannot build a query with an empty body")
        return Query(self._name, self._head, tuple(disjuncts), self._aggregate)


def aggregate_query(
    name: str,
    head: Sequence[TermLike],
    function: str,
    aggregation_variables: Sequence[TermLike],
    literals: Sequence,
) -> Query:
    """One-shot construction of a conjunctive aggregate query."""
    builder = QueryBuilder(name, head, (function, aggregation_variables))
    builder.literals(literals)
    return builder.build()
