"""A parser for the Datalog-style query syntax used throughout the library.

The concrete syntax mirrors the paper's notation as closely as plain text
allows::

    q(x, sum(y)) :- p(x, y), not r(x, y), x < 5 ; p(x, y), y >= 0

* The head is ``name(term, ..., term)`` with at most one *aggregate term*
  (an application of a known aggregation-function name, e.g. ``sum(y)``,
  ``count()``, ``top2(y)``).  The bare names ``count`` and ``parity`` are also
  accepted for the nullary functions.
* Disjuncts in the body are separated by ``;`` (or ``|``).
* Literals in a disjunct are separated by ``,`` (or ``&``).
* Negated atoms are written ``not p(...)``, ``!p(...)`` or ``~p(...)``.
* Comparisons use ``<``, ``<=``, ``>``, ``>=``, ``!=``/``<>`` and ``=``.
* Variables are identifiers; numeric literals (including fractions such as
  ``3/4`` and decimals) are constants.

Facts for databases can be parsed with :func:`parse_database`::

    p(1, 2). p(2, 3). r(1, 2).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import QuerySyntaxError
from .atoms import Comparison, ComparisonOp, GroundAtom, RelationalAtom
from .conditions import Condition
from .database import Database
from .queries import AggregateTerm, Query
from .terms import Constant, Term, Variable, _parse_numeric

#: Names recognized as aggregation functions in a query head.
AGGREGATE_NAMES = frozenset(
    {
        "count",
        "cntd",
        "count_distinct",
        "countd",
        "parity",
        "sum",
        "prod",
        "product",
        "avg",
        "average",
        "max",
        "min",
        "top2",
        "bot2",
        "top3",
        "bot3",
        "top4",
        "bot4",
    }
)

_TOKEN_REGEX = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<rule>:-|<-)
  | (?P<op><=|>=|=<|=>|!=|<>|==|<|>|=)
  | (?P<number>[+-]?\d+(?:\.\d+)?(?:/\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z_0-9']*)
  | (?P<punct>[(),;|&.!~])
    """,
    re.VERBOSE,
)

_NEGATION_WORDS = {"not", "neg"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_REGEX.match(text, position)
        if match is None:
            raise QuerySyntaxError("unexpected character", text, position)
        kind = match.lastgroup or ""
        token_text = match.group()
        if kind != "ws":
            tokens.append(_Token(kind, token_text, position))
        position = match.end()
    return tokens


class _TokenStream:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise QuerySyntaxError("unexpected end of input", self.text, len(self.text))
        self.index += 1
        return token

    def expect(self, text: str) -> _Token:
        token = self.next()
        if token.text != text:
            raise QuerySyntaxError(f"expected {text!r}, found {token.text!r}", self.text, token.position)
        return token

    def accept(self, text: str) -> bool:
        token = self.peek()
        if token is not None and token.text == text:
            self.index += 1
            return True
        return False

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)


def parse_query(text: str, name: Optional[str] = None) -> Query:
    """Parse a complete query definition.

    ``name`` optionally overrides the head predicate name found in the text.
    """
    stream = _TokenStream(text)
    head_name, head_terms, aggregate = _parse_head(stream)
    stream.next() if stream.peek() and stream.peek().kind == "rule" else stream.expect(":-")
    disjuncts = _parse_body(stream)
    if not stream.at_end():
        token = stream.peek()
        raise QuerySyntaxError("trailing input after query body", stream.text, token.position)
    return Query(name or head_name, head_terms, disjuncts, aggregate)


def _parse_head(stream: _TokenStream) -> tuple[str, tuple[Term, ...], Optional[AggregateTerm]]:
    name_token = stream.next()
    if name_token.kind != "name":
        raise QuerySyntaxError("query head must start with a predicate name", stream.text, name_token.position)
    stream.expect("(")
    head_terms: list[Term] = []
    aggregate: Optional[AggregateTerm] = None
    if not stream.accept(")"):
        while True:
            token = stream.peek()
            if token is None:
                raise QuerySyntaxError("unterminated query head", stream.text, len(stream.text))
            if token.kind == "name" and token.text.lower() in AGGREGATE_NAMES:
                candidate = _try_parse_aggregate(stream)
                if candidate is not None:
                    if aggregate is not None:
                        raise QuerySyntaxError(
                            "a query may contain only one aggregate term", stream.text, token.position
                        )
                    aggregate = candidate
                else:
                    head_terms.append(_parse_term(stream))
            else:
                head_terms.append(_parse_term(stream))
            if stream.accept(")"):
                break
            stream.expect(",")
    return name_token.text, tuple(head_terms), aggregate


def _try_parse_aggregate(stream: _TokenStream) -> Optional[AggregateTerm]:
    """Parse an aggregate term at the current position, if one is present."""
    start = stream.index
    name_token = stream.next()
    function = name_token.text.lower()
    next_token = stream.peek()
    if next_token is not None and next_token.text == "(":
        stream.next()
        arguments: list[Variable] = []
        if not stream.accept(")"):
            while True:
                term = _parse_term(stream)
                if not isinstance(term, Variable):
                    raise QuerySyntaxError(
                        "aggregation arguments must be variables", stream.text, name_token.position
                    )
                arguments.append(term)
                if stream.accept(")"):
                    break
                stream.expect(",")
        return AggregateTerm(function, tuple(arguments))
    if function in ("count", "parity"):
        return AggregateTerm(function, ())
    # Not an application and not a nullary aggregate: treat as an ordinary term.
    stream.index = start
    return None


def _parse_body(stream: _TokenStream) -> tuple[Condition, ...]:
    disjuncts = [_parse_condition(stream)]
    while True:
        token = stream.peek()
        if token is not None and token.text in (";", "|"):
            stream.next()
            disjuncts.append(_parse_condition(stream))
        else:
            break
    return tuple(disjuncts)


def _parse_condition(stream: _TokenStream) -> Condition:
    literals = [_parse_literal(stream)]
    while True:
        token = stream.peek()
        if token is not None and token.text in (",", "&"):
            stream.next()
            literals.append(_parse_literal(stream))
        else:
            break
    return Condition(tuple(literals))


def _parse_literal(stream: _TokenStream):
    token = stream.peek()
    if token is None:
        raise QuerySyntaxError("expected a literal", stream.text, len(stream.text))
    negated = False
    if token.text in ("!", "~"):
        stream.next()
        negated = True
    elif token.kind == "name" and token.text.lower() in _NEGATION_WORDS:
        stream.next()
        negated = True
    token = stream.peek()
    if token is None:
        raise QuerySyntaxError("dangling negation", stream.text, len(stream.text))
    if token.kind == "name":
        following = stream.tokens[stream.index + 1] if stream.index + 1 < len(stream.tokens) else None
        if following is not None and following.text == "(":
            return _parse_relational_atom(stream, negated)
    if negated:
        raise QuerySyntaxError("negation may only be applied to relational atoms", stream.text, token.position)
    return _parse_comparison(stream)


def _parse_relational_atom(stream: _TokenStream, negated: bool) -> RelationalAtom:
    name_token = stream.next()
    stream.expect("(")
    arguments: list[Term] = []
    if not stream.accept(")"):
        while True:
            arguments.append(_parse_term(stream))
            if stream.accept(")"):
                break
            stream.expect(",")
    return RelationalAtom(name_token.text, tuple(arguments), negated)


def _parse_comparison(stream: _TokenStream) -> Comparison:
    left = _parse_term(stream)
    op_token = stream.next()
    if op_token.kind != "op":
        raise QuerySyntaxError("expected a comparison operator", stream.text, op_token.position)
    right = _parse_term(stream)
    return Comparison(left, ComparisonOp.from_symbol(op_token.text), right)


def _parse_term(stream: _TokenStream) -> Term:
    token = stream.next()
    if token.kind == "number":
        return Constant(_parse_numeric(token.text))
    if token.kind == "name":
        return Variable(token.text)
    raise QuerySyntaxError(f"expected a term, found {token.text!r}", stream.text, token.position)


def parse_database(text: str) -> Database:
    """Parse a whitespace/period separated list of ground facts."""
    stream = _TokenStream(text)
    facts: list[GroundAtom] = []
    while not stream.at_end():
        if stream.accept("."):
            continue
        atom = _parse_relational_atom(stream, negated=False)
        values = []
        for argument in atom.arguments:
            if not isinstance(argument, Constant):
                raise QuerySyntaxError(
                    f"database facts must be ground, found variable {argument}", stream.text, 0
                )
            values.append(argument.value)
        facts.append(GroundAtom(atom.predicate, tuple(values)))
    return Database(facts)
