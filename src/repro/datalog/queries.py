"""Disjunctive aggregate and non-aggregate queries.

A query has the form ``q(x̄) ← A1 ∨ ... ∨ An`` and an aggregate query the form
``q(x̄, α(ȳ)) ← A1 ∨ ... ∨ An`` (Sections 3.1 and 3.3 of the paper), where

* each ``Ai`` is a safe condition containing all head variables,
* ``x̄`` are the grouping (distinguished) variables,
* ``ȳ`` are the aggregation variables, disjoint from ``x̄``,
* ``α`` is an aggregation function named in the aggregate term.

The classes here are purely syntactic; evaluation lives in
:mod:`repro.engine` and the decision procedures in :mod:`repro.core`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from ..errors import MalformedQueryError, UnsafeQueryError
from .atoms import Comparison, ComparisonOp, RelationalAtom
from .conditions import Condition
from .terms import Constant, Term, Variable, substitute_terms


@dataclass(frozen=True)
class AggregateTerm:
    """An aggregate term ``α(ȳ)`` appearing in a query head.

    ``function`` is the name of the aggregation function (resolved through
    :func:`repro.aggregates.get_function`); ``arguments`` are the aggregation
    variables, possibly empty (``count``, ``parity``).
    """

    function: str
    arguments: tuple[Variable, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "function", self.function.lower())
        object.__setattr__(self, "arguments", tuple(self.arguments))
        for argument in self.arguments:
            if not isinstance(argument, Variable):
                raise MalformedQueryError(
                    f"aggregation arguments must be variables, got {argument!r}"
                )

    @property
    def arity(self) -> int:
        return len(self.arguments)

    def rename(self, mapping: Mapping[Variable, Variable]) -> "AggregateTerm":
        return AggregateTerm(
            self.function,
            tuple(mapping.get(argument, argument) for argument in self.arguments),
        )

    def __str__(self) -> str:
        if not self.arguments:
            return self.function
        args = ", ".join(str(argument) for argument in self.arguments)
        return f"{self.function}({args})"

    def __repr__(self) -> str:
        return f"AggregateTerm({str(self)!r})"


@dataclass(frozen=True)
class Query:
    """A disjunctive query, possibly carrying a single aggregate term.

    ``head_terms`` are the terms of the head *excluding* the aggregate term.
    They are normally variables (the grouping variables) but may contain
    constants for reduced queries (Section 7 notes that reduction can move
    constants into the head).
    """

    name: str
    head_terms: tuple[Term, ...]
    disjuncts: tuple[Condition, ...]
    aggregate: Optional[AggregateTerm] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "head_terms", tuple(self.head_terms))
        object.__setattr__(self, "disjuncts", tuple(self.disjuncts))
        self._validate()

    def __hash__(self) -> int:
        # Queries key every hot cache of the symbolic engine (Γ memoization,
        # group-comparison kernels); the generated dataclass hash re-walks
        # the whole AST per lookup, so it is computed once and cached.
        cached = self.__dict__.get("_cached_hash")
        if cached is None:
            cached = hash((self.name, self.head_terms, self.disjuncts, self.aggregate))
            object.__setattr__(self, "_cached_hash", cached)
        return cached

    def __getstate__(self):
        # The cached structural hash must not cross process boundaries:
        # string hashing is salted per interpreter, so a pickled hash would
        # be wrong in a spawn-started worker.  Recompute lazily on first use.
        state = dict(self.__dict__)
        state.pop("_cached_hash", None)
        return state

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self.name:
            raise MalformedQueryError("query name must be non-empty")
        if not self.disjuncts:
            raise MalformedQueryError("a query must have at least one disjunct")
        head_variables = self.grouping_variables()
        aggregation_variables = set(self.aggregation_variables())
        if head_variables & aggregation_variables:
            overlap = ", ".join(sorted(v.name for v in head_variables & aggregation_variables))
            raise MalformedQueryError(
                f"grouping and aggregation variables must be disjoint (overlap: {overlap})"
            )
        required = head_variables | aggregation_variables
        for index, disjunct in enumerate(self.disjuncts):
            if not disjunct.is_safe():
                raise UnsafeQueryError(f"disjunct {index} of query {self.name!r} is unsafe")
            missing = required - disjunct.variables()
            if missing:
                names = ", ".join(sorted(v.name for v in missing))
                raise MalformedQueryError(
                    f"disjunct {index} of query {self.name!r} is missing head variables: {names}"
                )

    # ------------------------------------------------------------------
    # Head structure
    # ------------------------------------------------------------------
    @property
    def is_aggregate(self) -> bool:
        return self.aggregate is not None

    @property
    def aggregate_function(self) -> Optional[str]:
        return self.aggregate.function if self.aggregate else None

    def grouping_variables(self) -> set[Variable]:
        """The variables among the head terms (the grouping variables x̄)."""
        return {term for term in self.head_terms if isinstance(term, Variable)}

    def aggregation_variables(self) -> tuple[Variable, ...]:
        """The aggregation variables ȳ (empty tuple for non-aggregate queries
        and for nullary aggregation functions)."""
        return self.aggregate.arguments if self.aggregate else ()

    def head_variables(self) -> set[Variable]:
        return self.grouping_variables() | set(self.aggregation_variables())

    # ------------------------------------------------------------------
    # Classification (Sections 3 and 7)
    # ------------------------------------------------------------------
    @property
    def is_conjunctive(self) -> bool:
        """Whether the query has a single disjunct."""
        return len(self.disjuncts) == 1

    @property
    def is_positive(self) -> bool:
        """Whether no disjunct contains a negated relational atom."""
        return all(disjunct.is_positive for disjunct in self.disjuncts)

    @property
    def is_linear(self) -> bool:
        """Whether the query is conjunctive, positive, and no predicate occurs
        more than once (Section 7)."""
        if not self.is_conjunctive or not self.is_positive:
            return False
        atoms = self.disjuncts[0].positive_atoms
        predicates = [atom.predicate for atom in atoms]
        return len(predicates) == len(set(predicates))

    @property
    def is_quasilinear(self) -> bool:
        """Whether the query is conjunctive and no predicate that occurs in a
        positive literal occurs more than once (in particular, no predicate
        occurs both positively and negated) — Section 7."""
        if not self.is_conjunctive:
            return False
        disjunct = self.disjuncts[0]
        positive_predicates = [atom.predicate for atom in disjunct.positive_atoms]
        if len(positive_predicates) != len(set(positive_predicates)):
            return False
        return not (set(positive_predicates) & disjunct.negated_predicates())

    # ------------------------------------------------------------------
    # Variables, constants, predicates, sizes
    # ------------------------------------------------------------------
    def variables(self) -> set[Variable]:
        result: set[Variable] = set(self.grouping_variables())
        result |= set(self.aggregation_variables())
        for disjunct in self.disjuncts:
            result |= disjunct.variables()
        return result

    def constants(self) -> set[Constant]:
        result: set[Constant] = {
            term for term in self.head_terms if isinstance(term, Constant)
        }
        for disjunct in self.disjuncts:
            result |= disjunct.constants()
        return result

    def predicates(self) -> set[str]:
        result: set[str] = set()
        for disjunct in self.disjuncts:
            result |= disjunct.predicates()
        return result

    def predicate_arities(self) -> dict[str, int]:
        """Map each predicate occurring in the query to its arity.

        Raises :class:`MalformedQueryError` when a predicate is used with two
        different arities.
        """
        arities: dict[str, int] = {}
        for disjunct in self.disjuncts:
            for atom in disjunct.relational_atoms:
                known = arities.get(atom.predicate)
                if known is None:
                    arities[atom.predicate] = atom.arity
                elif known != atom.arity:
                    raise MalformedQueryError(
                        f"predicate {atom.predicate!r} used with arities {known} and {atom.arity}"
                    )
        return arities

    @property
    def variable_size(self) -> int:
        """The maximum number of variables of any disjunct (Section 4)."""
        return max(disjunct.variable_size for disjunct in self.disjuncts)

    @property
    def term_size(self) -> int:
        """τ(q): the number of constants in the query plus its variable size."""
        return len(self.constants()) + self.variable_size

    # ------------------------------------------------------------------
    # Manipulation
    # ------------------------------------------------------------------
    def rename_variables(self, mapping: Mapping[Variable, Variable]) -> "Query":
        """Apply a variable renaming to the whole query (head and body)."""
        head = substitute_terms(self.head_terms, mapping)
        aggregate = self.aggregate.rename(dict(mapping)) if self.aggregate else None
        disjuncts = tuple(disjunct.substitute(mapping) for disjunct in self.disjuncts)
        return Query(self.name, head, disjuncts, aggregate)

    def standardize_apart(self, taken: Iterable[Variable], prefix: str = "v") -> "Query":
        """Rename variables so that none of them occurs in ``taken``."""
        taken_names = {variable.name for variable in taken}
        mapping: dict[Variable, Variable] = {}
        counter = itertools.count()
        for variable in sorted(self.variables()):
            if variable.name in taken_names:
                while True:
                    candidate = Variable(f"{prefix}{next(counter)}")
                    if candidate.name not in taken_names and candidate not in self.variables():
                        break
                mapping[variable] = candidate
                taken_names.add(candidate.name)
        if not mapping:
            return self
        return self.rename_variables(mapping)

    def with_disjuncts(self, disjuncts: Sequence[Condition]) -> "Query":
        return Query(self.name, self.head_terms, tuple(disjuncts), self.aggregate)

    def with_aggregate(self, aggregate: Optional[AggregateTerm]) -> "Query":
        return Query(self.name, self.head_terms, self.disjuncts, aggregate)

    def without_aggregate(self) -> "Query":
        """The non-aggregate projection q̂ of the query (Section 7): the same
        body with the aggregate term removed from the head."""
        return Query(self.name, self.head_terms, self.disjuncts, None)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def head_string(self) -> str:
        parts = [str(term) for term in self.head_terms]
        if self.aggregate is not None:
            parts.append(str(self.aggregate))
        return f"{self.name}({', '.join(parts)})"

    def __str__(self) -> str:
        body = " ; ".join(str(disjunct) for disjunct in self.disjuncts)
        return f"{self.head_string()} :- {body}"

    def __repr__(self) -> str:
        return f"Query({str(self)!r})"


def term_size_of_pair(first: Query, second: Query) -> int:
    """τ(q, q'): the number of constants occurring in at least one of the
    queries plus the maximum of their variable sizes (Section 4)."""
    constants = first.constants() | second.constants()
    return len(constants) + max(first.variable_size, second.variable_size)


def catalog_predicate_arities(queries: Iterable[Query]) -> dict[str, int]:
    """The predicates (with arities) occurring in any of the queries, checking
    that shared predicates are used with consistent arities."""
    arities: dict[str, int] = {}
    for query in queries:
        for predicate, arity in query.predicate_arities().items():
            known = arities.get(predicate)
            if known is None:
                arities[predicate] = arity
            elif known != arity:
                raise MalformedQueryError(
                    f"predicate {predicate!r} used with arities {known} and {arity}"
                )
    return arities


def combined_predicate_arities(first: Query, second: Query) -> dict[str, int]:
    """The predicates (with arities) occurring in either query, checking that
    shared predicates are used with consistent arities."""
    return catalog_predicate_arities((first, second))


def equality(left: Term, right: Term) -> Comparison:
    """Convenience constructor for an equality comparison."""
    return Comparison(left, ComparisonOp.EQ, right)


def conjunctive_query(
    name: str,
    head_terms: Sequence[Term],
    literals: Sequence,
    aggregate: Optional[AggregateTerm] = None,
) -> Query:
    """Build a conjunctive (single-disjunct) query from a literal list."""
    return Query(name, tuple(head_terms), (Condition(tuple(literals)),), aggregate)
