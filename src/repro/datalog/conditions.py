"""Conditions: conjunctions of literals.

A *condition* is a conjunction of literals (positive relational atoms, negated
relational atoms and comparisons).  A condition is *safe* when every variable
appearing in it either appears in a positive relational atom or is equated with
such a variable (Section 3.1); all conditions handled by the library are
required to be safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..errors import UnsafeQueryError
from .atoms import Comparison, ComparisonOp, Literal, RelationalAtom
from .terms import Constant, Term, Variable


@dataclass(frozen=True)
class Condition:
    """A conjunction of literals, kept in the order they were given.

    The class exposes the three syntactic components the paper manipulates
    separately: the positive relational atoms ``P``, the negated relational
    atoms ``N`` and the comparisons ``C`` (Section 6 uses the decomposition
    ``A = P ∧ N ∧ C``).
    """

    literals: tuple[Literal, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "literals", tuple(self.literals))

    def __hash__(self) -> int:
        # Conditions key the per-(condition, size-signature) plan cache on
        # every symbolic evaluation; cache the structural hash.
        cached = self.__dict__.get("_cached_hash")
        if cached is None:
            cached = hash(self.literals)
            object.__setattr__(self, "_cached_hash", cached)
        return cached

    def __getstate__(self):
        # The cached structural hash must not cross process boundaries:
        # string hashing is salted per interpreter, so a pickled hash would
        # be wrong in a spawn-started worker.  Recompute lazily on first use.
        state = dict(self.__dict__)
        state.pop("_cached_hash", None)
        return state

    # ------------------------------------------------------------------
    # Syntactic components
    # ------------------------------------------------------------------
    @property
    def positive_atoms(self) -> tuple[RelationalAtom, ...]:
        # Planning touches this on every evaluation; cache like the hash.
        cached = self.__dict__.get("_cached_positive_atoms")
        if cached is None:
            cached = tuple(
                literal
                for literal in self.literals
                if isinstance(literal, RelationalAtom) and literal.is_positive
            )
            object.__setattr__(self, "_cached_positive_atoms", cached)
        return cached

    @property
    def negated_atoms(self) -> tuple[RelationalAtom, ...]:
        cached = self.__dict__.get("_cached_negated_atoms")
        if cached is None:
            cached = tuple(
                literal
                for literal in self.literals
                if isinstance(literal, RelationalAtom) and literal.negated
            )
            object.__setattr__(self, "_cached_negated_atoms", cached)
        return cached

    @property
    def relational_atoms(self) -> tuple[RelationalAtom, ...]:
        return tuple(literal for literal in self.literals if isinstance(literal, RelationalAtom))

    @property
    def comparisons(self) -> tuple[Comparison, ...]:
        return tuple(literal for literal in self.literals if isinstance(literal, Comparison))

    @property
    def is_positive(self) -> bool:
        """Whether the condition contains no negated relational atoms."""
        return not self.negated_atoms

    # ------------------------------------------------------------------
    # Variables, constants, predicates
    # ------------------------------------------------------------------
    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for literal in self.literals:
            result |= literal.variables()
        return result

    def constants(self) -> set[Constant]:
        result: set[Constant] = set()
        for literal in self.literals:
            result |= literal.constants()
        return result

    def terms(self) -> set[Term]:
        result: set[Term] = set()
        result |= self.variables()
        result |= self.constants()
        return result

    def predicates(self) -> set[str]:
        return {atom.predicate for atom in self.relational_atoms}

    def positive_predicates(self) -> set[str]:
        return {atom.predicate for atom in self.positive_atoms}

    def negated_predicates(self) -> set[str]:
        return {atom.predicate for atom in self.negated_atoms}

    @property
    def variable_size(self) -> int:
        """The number of variables in the condition (Section 4)."""
        return len(self.variables())

    # ------------------------------------------------------------------
    # Safety
    # ------------------------------------------------------------------
    def safe_variables(self) -> set[Variable]:
        """Variables that appear in a positive atom or are (transitively)
        equated with such a variable via equality comparisons."""
        safe: set[Variable] = set()
        for atom in self.positive_atoms:
            safe |= atom.variables()
        # Propagate through equalities until a fixed point.
        equalities = [
            comparison for comparison in self.comparisons if comparison.op is ComparisonOp.EQ
        ]
        changed = True
        while changed:
            changed = False
            for comparison in equalities:
                left, right = comparison.left, comparison.right
                left_safe = isinstance(left, Constant) or left in safe
                right_safe = isinstance(right, Constant) or right in safe
                if left_safe and isinstance(right, Variable) and right not in safe:
                    safe.add(right)
                    changed = True
                if right_safe and isinstance(left, Variable) and left not in safe:
                    safe.add(left)
                    changed = True
        return safe

    def is_safe(self) -> bool:
        """Whether every variable of the condition is safe."""
        return self.variables() <= self.safe_variables()

    def check_safe(self) -> None:
        unsafe = self.variables() - self.safe_variables()
        if unsafe:
            names = ", ".join(sorted(variable.name for variable in unsafe))
            raise UnsafeQueryError(f"unsafe variables in condition: {names}")

    # ------------------------------------------------------------------
    # Manipulation
    # ------------------------------------------------------------------
    def substitute(self, mapping: Mapping[Variable, Term]) -> "Condition":
        return Condition(tuple(literal.substitute(mapping) for literal in self.literals))

    def with_literals(self, extra: Iterable[Literal]) -> "Condition":
        return Condition(self.literals + tuple(extra))

    def without_trivial_comparisons(self) -> "Condition":
        """Drop ground comparisons that are trivially true and reflexive
        equalities / non-strict self-comparisons (``t = t``, ``t <= t``)."""
        kept: list[Literal] = []
        for literal in self.literals:
            if isinstance(literal, Comparison):
                if literal.left == literal.right and literal.op in (
                    ComparisonOp.EQ,
                    ComparisonOp.LE,
                    ComparisonOp.GE,
                ):
                    continue
                if (
                    isinstance(literal.left, Constant)
                    and isinstance(literal.right, Constant)
                    and literal.evaluate_ground()
                ):
                    continue
            kept.append(literal)
        return Condition(tuple(kept))

    def __iter__(self):
        return iter(self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def __str__(self) -> str:
        if not self.literals:
            return "true"
        return " , ".join(str(literal) for literal in self.literals)

    def __repr__(self) -> str:
        return f"Condition({str(self)!r})"


def make_condition(literals: Sequence[Literal]) -> Condition:
    """Build a condition and verify that it is safe."""
    condition = Condition(tuple(literals))
    condition.check_safe()
    return condition
