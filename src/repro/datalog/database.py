"""Databases: finite sets of ground relational atoms.

A database is a set of ground facts (Section 3.2).  The *carrier* of a
database is the set of constants occurring in it; the paper's bounded and local
equivalence notions are phrased in terms of the carrier size.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from ..domains import Domain, NumericValue, normalize_value
from ..errors import DomainError
from .atoms import GroundAtom


class Database:
    """An immutable set of ground facts with set-algebra operations.

    Facts can be supplied either as :class:`GroundAtom` objects or as
    ``(predicate, values)`` pairs; values are normalized to exact numbers.
    """

    __slots__ = ("_facts", "_by_predicate", "_carrier", "_indexes", "_sorted_carrier", "_distincts")

    def __init__(self, facts: Iterable = ()):  # noqa: ANN001 - heterogeneous input
        normalized: set[GroundAtom] = set()
        for fact in facts:
            normalized.add(_coerce_fact(fact))
        self._facts: frozenset[GroundAtom] = frozenset(normalized)
        by_predicate: dict[str, set[tuple]] = {}
        carrier: set[NumericValue] = set()
        for fact in self._facts:
            by_predicate.setdefault(fact.predicate, set()).add(fact.values)
            carrier.update(fact.values)
        self._by_predicate: dict[str, frozenset[tuple]] = {
            predicate: frozenset(rows) for predicate, rows in by_predicate.items()
        }
        self._carrier: frozenset[NumericValue] = frozenset(carrier)
        self._indexes: dict[tuple[str, tuple[int, ...]], dict[tuple, tuple[tuple, ...]]] = {}
        self._sorted_carrier: tuple[NumericValue, ...] | None = None
        self._distincts: dict[tuple[str, int], int] = {}

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def facts(self) -> frozenset[GroundAtom]:
        return self._facts

    def carrier(self) -> frozenset[NumericValue]:
        """The set of constants occurring in the database, carr(D)."""
        return self._carrier

    @property
    def carrier_size(self) -> int:
        return len(self._carrier)

    def predicates(self) -> frozenset[str]:
        return frozenset(self._by_predicate)

    def relation(self, predicate: str) -> frozenset[tuple]:
        """All tuples of the given predicate (empty when absent)."""
        return self._by_predicate.get(predicate, frozenset())

    def contains(self, predicate: str, values: Sequence[NumericValue]) -> bool:
        return tuple(values) in self._by_predicate.get(predicate, frozenset())

    def sorted_carrier(self) -> tuple[NumericValue, ...]:
        """carr(D) sorted ascending — the interning order of the columnar
        store: a constant's *rank* in this tuple is its interned id, so id
        comparisons and value comparisons agree.  Computed lazily once (the
        database is immutable)."""
        cached = self._sorted_carrier
        if cached is None:
            cached = tuple(sorted(self._carrier))
            self._sorted_carrier = cached
        return cached

    def distinct_count(self, predicate: str, column: int) -> int:
        """The number of distinct values in one column of a relation.

        The planner's join-selectivity estimate (``rows / distinct``) reads
        this; it is memoized per ``(predicate, column)`` — immutability makes
        the count permanent.
        """
        key = (predicate, column)
        cached = self._distincts.get(key)
        if cached is None:
            rows = self._by_predicate.get(predicate, frozenset())
            cached = len({row[column] for row in rows if column < len(row)})
            self._distincts[key] = cached
        return cached

    def index(
        self, predicate: str, columns: tuple[int, ...]
    ) -> Mapping[tuple, tuple[tuple, ...]]:
        """A hash index of the predicate's relation on the given columns.

        The index maps each projection ``tuple(row[c] for c in columns)`` to
        the tuple of full rows sharing it.  Indexes are built lazily on first
        use and cached for the lifetime of the database; the database being
        immutable, a cached index can never go stale.  Probing a key absent
        from the mapping means no row matches.
        """
        key = (predicate, columns)
        cached = self._indexes.get(key)
        if cached is None:
            cached = build_column_index(self._by_predicate.get(predicate, frozenset()), columns)
            self._indexes[key] = cached
        return cached

    def __contains__(self, fact) -> bool:  # noqa: ANN001
        return _coerce_fact(fact) in self._facts

    def __iter__(self) -> Iterator[GroundAtom]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __bool__(self) -> bool:
        return bool(self._facts)

    def __eq__(self, other) -> bool:  # noqa: ANN001
        if not isinstance(other, Database):
            return NotImplemented
        return self._facts == other._facts

    def __hash__(self) -> int:
        return hash(self._facts)

    # ------------------------------------------------------------------
    # Set algebra (used by the decomposition machinery of Section 6)
    # ------------------------------------------------------------------
    def union(self, other: "Database") -> "Database":
        return Database(self._facts | other._facts)

    def intersection(self, other: "Database") -> "Database":
        return Database(self._facts & other._facts)

    def difference(self, other: "Database") -> "Database":
        return Database(self._facts - other._facts)

    def issubset(self, other: "Database") -> bool:
        return self._facts <= other._facts

    def add_facts(self, facts: Iterable) -> "Database":  # noqa: ANN001
        return Database(set(self._facts) | {_coerce_fact(fact) for fact in facts})

    def restrict_to_predicates(self, predicates: Iterable[str]) -> "Database":
        wanted = set(predicates)
        return Database(fact for fact in self._facts if fact.predicate in wanted)

    # ------------------------------------------------------------------
    # Validation and display
    # ------------------------------------------------------------------
    def check_domain(self, domain: Domain) -> None:
        """Verify that every constant of the database belongs to ``domain``."""
        for value in self._carrier:
            if not domain.contains(value):
                raise DomainError(f"database constant {value!r} is not in {domain.value}")

    def to_sorted_facts(self) -> list[GroundAtom]:
        return sorted(self._facts, key=lambda fact: (fact.predicate, fact.values))

    def __str__(self) -> str:
        if not self._facts:
            return "{}"
        inner = ", ".join(str(fact) for fact in self.to_sorted_facts())
        return "{" + inner + "}"

    def __repr__(self) -> str:
        return f"Database({len(self._facts)} facts, carrier size {self.carrier_size})"

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_relations(cls, relations: Mapping[str, Iterable[Sequence[NumericValue]]]) -> "Database":
        """Build a database from a mapping ``predicate -> iterable of rows``."""
        facts = []
        for predicate, rows in relations.items():
            for row in rows:
                facts.append(GroundAtom(predicate, tuple(normalize_value(v) for v in row)))
        return cls(facts)

    def to_relations(self) -> dict[str, set[tuple]]:
        return {predicate: set(rows) for predicate, rows in self._by_predicate.items()}


def build_column_index(
    rows: Iterable[tuple], columns: tuple[int, ...]
) -> dict[tuple, tuple[tuple, ...]]:
    """Group ``rows`` by their projection onto ``columns``.

    Shared by the concrete and symbolic database index caches so the two
    engines can never diverge in how indexes are built.
    """
    buckets: dict[tuple, list[tuple]] = {}
    for row in rows:
        buckets.setdefault(tuple(row[c] for c in columns), []).append(row)
    return {projection: tuple(bucket) for projection, bucket in buckets.items()}


def _coerce_fact(fact) -> GroundAtom:  # noqa: ANN001
    if isinstance(fact, GroundAtom):
        return GroundAtom(fact.predicate, tuple(normalize_value(v) for v in fact.values))
    predicate, values = fact
    return GroundAtom(str(predicate), tuple(normalize_value(v) for v in values))


EMPTY_DATABASE = Database()
