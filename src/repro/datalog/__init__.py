"""Query language substrate: terms, atoms, conditions, queries, databases.

This subpackage implements the syntax of Section 3 of the paper: disjunctive
queries with negated subgoals, constants and comparisons, optionally carrying a
single aggregate term in the head.
"""

from .atoms import Comparison, ComparisonOp, GroundAtom, Literal, RelationalAtom
from .builder import QueryBuilder, aggregate_query
from .conditions import Condition, make_condition
from .database import EMPTY_DATABASE, Database
from .parser import parse_database, parse_query
from .queries import (
    AggregateTerm,
    Query,
    catalog_predicate_arities,
    combined_predicate_arities,
    conjunctive_query,
    term_size_of_pair,
)
from .terms import Constant, Term, Variable, make_term, make_terms

__all__ = [
    "AggregateTerm",
    "Comparison",
    "ComparisonOp",
    "Condition",
    "Constant",
    "Database",
    "EMPTY_DATABASE",
    "GroundAtom",
    "Literal",
    "Query",
    "QueryBuilder",
    "RelationalAtom",
    "Term",
    "Variable",
    "aggregate_query",
    "catalog_predicate_arities",
    "combined_predicate_arities",
    "conjunctive_query",
    "make_condition",
    "make_term",
    "make_terms",
    "parse_database",
    "parse_query",
    "term_size_of_pair",
]
