"""Atoms and literals.

The paper distinguishes three kinds of literals (Section 3.1):

* a *positive relational atom* ``p(s1, ..., sk)``,
* a *negated relational atom* ``¬p(s1, ..., sk)``,
* an *ordering atom* (comparison) ``s1 ρ s2`` with ρ one of ``<, ≤, >, ≥, ≠``.

We additionally support equality comparisons ``s1 = s2`` because the safety
definition allows variables to be "equated with" variables from positive atoms;
equalities are eliminated during query reduction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Union

from ..errors import QuerySyntaxError
from .terms import Constant, Term, Variable, substitute_terms, variables_of, constants_of


class ComparisonOp(enum.Enum):
    """Ordering predicates on terms."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    NE = "!="
    EQ = "="

    @property
    def symbol(self) -> str:
        return self.value

    def flip(self) -> "ComparisonOp":
        """The operator obtained by swapping the two operands."""
        return _FLIPPED[self]

    def negate(self) -> "ComparisonOp":
        """The operator expressing the negation of this comparison."""
        return _NEGATED[self]

    def holds(self, left, right) -> bool:
        """Evaluate the comparison on two concrete numeric values."""
        if self is ComparisonOp.LT:
            return left < right
        if self is ComparisonOp.LE:
            return left <= right
        if self is ComparisonOp.GT:
            return left > right
        if self is ComparisonOp.GE:
            return left >= right
        if self is ComparisonOp.NE:
            return left != right
        return left == right

    @classmethod
    def from_symbol(cls, symbol: str) -> "ComparisonOp":
        try:
            return _BY_SYMBOL[symbol]
        except KeyError as exc:
            raise QuerySyntaxError(f"unknown comparison operator {symbol!r}") from exc


_FLIPPED = {
    ComparisonOp.LT: ComparisonOp.GT,
    ComparisonOp.LE: ComparisonOp.GE,
    ComparisonOp.GT: ComparisonOp.LT,
    ComparisonOp.GE: ComparisonOp.LE,
    ComparisonOp.NE: ComparisonOp.NE,
    ComparisonOp.EQ: ComparisonOp.EQ,
}

_NEGATED = {
    ComparisonOp.LT: ComparisonOp.GE,
    ComparisonOp.LE: ComparisonOp.GT,
    ComparisonOp.GT: ComparisonOp.LE,
    ComparisonOp.GE: ComparisonOp.LT,
    ComparisonOp.NE: ComparisonOp.EQ,
    ComparisonOp.EQ: ComparisonOp.NE,
}

_BY_SYMBOL = {
    "<": ComparisonOp.LT,
    "<=": ComparisonOp.LE,
    "=<": ComparisonOp.LE,
    ">": ComparisonOp.GT,
    ">=": ComparisonOp.GE,
    "=>": ComparisonOp.GE,
    "!=": ComparisonOp.NE,
    "<>": ComparisonOp.NE,
    "=": ComparisonOp.EQ,
    "==": ComparisonOp.EQ,
}


@dataclass(frozen=True)
class RelationalAtom:
    """A (possibly negated) relational atom ``p(s1, ..., sk)``."""

    predicate: str
    arguments: tuple[Term, ...]
    negated: bool = False

    def __post_init__(self) -> None:
        if not self.predicate:
            raise QuerySyntaxError("predicate names must be non-empty")
        object.__setattr__(self, "arguments", tuple(self.arguments))

    def __hash__(self) -> int:
        # Atoms populate the frozensets and dict keys of every symbolic
        # database; cache the structural hash instead of re-deriving it.
        cached = self.__dict__.get("_cached_hash")
        if cached is None:
            cached = hash((self.predicate, self.arguments, self.negated))
            object.__setattr__(self, "_cached_hash", cached)
        return cached

    def __getstate__(self):
        # The cached structural hash must not cross process boundaries:
        # string hashing is salted per interpreter, so a pickled hash would
        # be wrong in a spawn-started worker.  Recompute lazily on first use.
        state = dict(self.__dict__)
        state.pop("_cached_hash", None)
        return state

    @property
    def arity(self) -> int:
        return len(self.arguments)

    @property
    def is_positive(self) -> bool:
        return not self.negated

    @property
    def is_ground(self) -> bool:
        return all(isinstance(arg, Constant) for arg in self.arguments)

    def variables(self) -> set[Variable]:
        return variables_of(self.arguments)

    def constants(self) -> set[Constant]:
        return constants_of(self.arguments)

    def positive(self) -> "RelationalAtom":
        """The positive version of this atom (drop the negation, if any)."""
        if self.is_positive:
            return self
        return RelationalAtom(self.predicate, self.arguments, negated=False)

    def negate(self) -> "RelationalAtom":
        return RelationalAtom(self.predicate, self.arguments, negated=not self.negated)

    def substitute(self, mapping: Mapping[Variable, Term]) -> "RelationalAtom":
        return RelationalAtom(self.predicate, substitute_terms(self.arguments, mapping), self.negated)

    def __str__(self) -> str:
        args = ", ".join(str(arg) for arg in self.arguments)
        body = f"{self.predicate}({args})"
        return f"not {body}" if self.negated else body

    def __repr__(self) -> str:
        return f"RelationalAtom({str(self)!r})"


@dataclass(frozen=True)
class Comparison:
    """An ordering atom ``left ρ right``."""

    left: Term
    op: ComparisonOp
    right: Term

    def variables(self) -> set[Variable]:
        return variables_of((self.left, self.right))

    def constants(self) -> set[Constant]:
        return constants_of((self.left, self.right))

    @property
    def is_equality(self) -> bool:
        return self.op is ComparisonOp.EQ

    def flip(self) -> "Comparison":
        """The same constraint written with the operands swapped."""
        return Comparison(self.right, self.op.flip(), self.left)

    def negate(self) -> "Comparison":
        """The comparison expressing the negation of this one."""
        return Comparison(self.left, self.op.negate(), self.right)

    def substitute(self, mapping: Mapping[Variable, Term]) -> "Comparison":
        left, right = substitute_terms((self.left, self.right), mapping)
        return Comparison(left, self.op, right)

    def evaluate_ground(self) -> bool:
        """Evaluate the comparison when both operands are constants."""
        if not (isinstance(self.left, Constant) and isinstance(self.right, Constant)):
            raise QuerySyntaxError(f"comparison {self} is not ground")
        return self.op.holds(self.left.as_fraction, self.right.as_fraction)

    def __str__(self) -> str:
        return f"{self.left} {self.op.symbol} {self.right}"

    def __repr__(self) -> str:
        return f"Comparison({str(self)!r})"


#: A literal is a relational atom (positive or negated) or a comparison.
Literal = Union[RelationalAtom, Comparison]


def is_relational(literal: Literal) -> bool:
    """Whether the literal is a relational atom (as opposed to a comparison)."""
    return isinstance(literal, RelationalAtom)


def is_comparison(literal: Literal) -> bool:
    """Whether the literal is an ordering atom."""
    return isinstance(literal, Comparison)


@dataclass(frozen=True)
class GroundAtom:
    """A ground relational fact ``p(c1, ..., ck)`` as stored in a database."""

    predicate: str
    values: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))

    @property
    def arity(self) -> int:
        return len(self.values)

    def __str__(self) -> str:
        args = ", ".join(str(value) for value in self.values)
        return f"{self.predicate}({args})"

    def __repr__(self) -> str:
        return f"GroundAtom({str(self)!r})"
