"""Terms: variables and constants.

A *term* is either a variable or a constant (Section 3.1 of the paper).  Terms
are immutable, hashable value objects; two variables are the same term exactly
when they carry the same name, and two constants are the same term exactly when
they carry the same numeric value.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping, Union

from ..domains import NumericLike, NumericValue, normalize_value
from ..errors import QuerySyntaxError


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable, identified by its name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise QuerySyntaxError("variable names must be non-empty")

    @property
    def is_variable(self) -> bool:
        return True

    @property
    def is_constant(self) -> bool:
        return False

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True, order=True)
class Constant:
    """A numeric constant (integer or exact rational)."""

    value: NumericValue

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", normalize_value(self.value))

    @property
    def is_variable(self) -> bool:
        return False

    @property
    def is_constant(self) -> bool:
        return True

    @property
    def as_fraction(self) -> Fraction:
        return Fraction(self.value)

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


#: A term is a variable or a constant.
Term = Union[Variable, Constant]


def make_term(value: Union[Term, str, NumericLike]) -> Term:
    """Coerce ``value`` into a term.

    Strings become variables, numbers become constants, and existing terms are
    returned unchanged.  This is the convenience entry point used by the
    programmatic query builder.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str):
        stripped = value.strip()
        if not stripped:
            raise QuerySyntaxError("empty string is not a valid term")
        if _looks_numeric(stripped):
            return Constant(_parse_numeric(stripped))
        return Variable(stripped)
    return Constant(normalize_value(value))


def make_terms(values: Iterable[Union[Term, str, NumericLike]]) -> tuple[Term, ...]:
    """Coerce every element of ``values`` into a term."""
    return tuple(make_term(value) for value in values)


def _looks_numeric(text: str) -> bool:
    candidate = text[1:] if text[0] in "+-" else text
    if not candidate:
        return False
    return candidate[0].isdigit() or candidate[0] == "."


def _parse_numeric(text: str) -> NumericValue:
    try:
        if "/" in text:
            return normalize_value(Fraction(text))
        if "." in text or "e" in text or "E" in text:
            return normalize_value(Fraction(text))
        return int(text)
    except (ValueError, ZeroDivisionError) as exc:
        raise QuerySyntaxError(f"cannot parse numeric constant {text!r}") from exc


def substitute_term(term: Term, mapping: Mapping[Variable, Term]) -> Term:
    """Apply a variable substitution to a single term."""
    if isinstance(term, Variable):
        return mapping.get(term, term)
    return term


def substitute_terms(terms: Iterable[Term], mapping: Mapping[Variable, Term]) -> tuple[Term, ...]:
    """Apply a variable substitution to a tuple of terms."""
    return tuple(substitute_term(term, mapping) for term in terms)


def variables_of(terms: Iterable[Term]) -> set[Variable]:
    """The set of variables occurring in ``terms``."""
    return {term for term in terms if isinstance(term, Variable)}


def constants_of(terms: Iterable[Term]) -> set[Constant]:
    """The set of constants occurring in ``terms``."""
    return {term for term in terms if isinstance(term, Constant)}
