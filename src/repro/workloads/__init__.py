"""Workload generators, the data-warehouse scenario, and batched evaluation
APIs used by examples, property-based tests, and the benchmark harness."""

from .batch import (
    SweepCell,
    SweepGroup,
    SweepPlan,
    decide_pairs,
    equivalence_matrix,
    evaluate_many,
    format_equivalence_matrix,
    plan_catalog_sweep,
)
from .generators import (
    QueryGenerator,
    QueryProfile,
    linear_chain_query,
    random_warehouse_database,
    renamed_copy,
)
from .scenarios import (
    WAREHOUSE_SCHEMA,
    WarehouseScenario,
    WarehouseViewScenario,
    build_view_scenario,
    build_warehouse,
    warehouse_views,
)

__all__ = [
    "QueryGenerator",
    "QueryProfile",
    "SweepCell",
    "SweepGroup",
    "SweepPlan",
    "WAREHOUSE_SCHEMA",
    "WarehouseScenario",
    "WarehouseViewScenario",
    "build_view_scenario",
    "build_warehouse",
    "decide_pairs",
    "equivalence_matrix",
    "evaluate_many",
    "format_equivalence_matrix",
    "linear_chain_query",
    "plan_catalog_sweep",
    "random_warehouse_database",
    "renamed_copy",
    "warehouse_views",
]
