"""Workload generators and the data-warehouse scenario used by examples,
property-based tests, and the benchmark harness."""

from .generators import QueryGenerator, QueryProfile, linear_chain_query, renamed_copy
from .scenarios import WAREHOUSE_SCHEMA, WarehouseScenario, build_warehouse

__all__ = [
    "QueryGenerator",
    "QueryProfile",
    "WAREHOUSE_SCHEMA",
    "WarehouseScenario",
    "build_warehouse",
    "linear_chain_query",
    "renamed_copy",
]
