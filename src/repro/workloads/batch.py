"""Batched evaluation and pairwise equivalence over query catalogs.

Workload scenarios (see :mod:`repro.workloads.scenarios`) carry *catalogs* —
named families of queries posed against one database.  This module provides
the batched entry points the examples and benchmarks drive:

* :func:`evaluate_many` — evaluate every query of a catalog over a database
  (the memoized, planned engine makes repeated and overlapping evaluations
  cheap), and
* :func:`equivalence_matrix` — run the paper's strongest applicable decision
  procedure on every unordered pair of catalog queries, the bulk analogue of
  :func:`repro.core.equivalence.are_equivalent`.

Two execution strategies back the matrix:

* **Single-sweep groups** (``sweep=True``, the default).  The planner
  (:func:`plan_catalog_sweep`) partitions the cells by dispatch class: every
  pair that the dispatcher would send to the bounded local-equivalence
  procedure joins a *sweep group* of same-shape, same-function (after
  normalization unification) queries.  Each group is decided by
  :func:`repro.core.bounded.sweep_equivalence` — **one** subset/ordering
  enumeration for the whole group, with all queries evaluated per (S, L) via
  the shared Γ caches and the pairs compared in-loop — turning the Γ work
  from O(pairs) into O(queries).  Cells outside every group (mixed shapes,
  different functions, quasilinear pairs, undecided fragments, groups whose
  BASE would blow the subset budget) fall back to the per-pair task path,
  whose verdicts and methods the sweep reproduces cell for cell.
* **Pair tasks** (``sweep=False``, the PR 2 path).  Every cell is an
  independent, picklable task dispatched through
  :func:`repro.core.equivalence.are_equivalent`.

Both strategies route through the parallel subsystem (:mod:`repro.parallel`):
``workers=N`` shards the sweep's subset stream and the pair tasks across a
process pool; ``workers=None`` honours the ``REPRO_WORKERS`` environment
variable; the serial path runs the very same work items through the serial
executor, so the two can never diverge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..core.bounded import (
    SET_SEMANTICS,
    SharedBaseContext,
    _catalog_base_size,
    _catalog_is_comparison_free,
    sweep_equivalence,
)
from ..core.equivalence import (
    EquivalenceResult,
    Verdict,
    _decidable_by_local_equivalence,
    normalization_method_suffix,
    pair_count_reduction,
)
from ..core.quasilinear import is_quasilinear_decidable
from ..aggregates.functions import get_function
from ..datalog.database import Database
from ..datalog.queries import Query, term_size_of_pair
from ..datalog.terms import Constant
from ..domains import Domain
from ..errors import ReproError
from ..engine.evaluator import evaluate
from ..engine.modes import engine_scope
from ..obs import span as _span
from ..parallel.executor import Executor, resolve_executor
from ..parallel.tasks import absorb_worker_metrics, pair_check_tasks, run_pair_task


def evaluate_many(
    queries: Mapping[str, Query], database: Database, *, engine: Optional[str] = None
) -> dict[str, object]:
    """Evaluate every query of the catalog over the database.

    Returns ``{name: result}`` where each result follows
    :func:`repro.engine.evaluate` (a dict for aggregate queries, a set of
    tuples otherwise).  ``engine`` pins the evaluation engine for this batch
    (``"naive"`` | ``"planned"`` | ``"compiled"``); ``None`` uses the active
    mode.
    """
    with engine_scope(engine):
        return {name: evaluate(query, database) for name, query in queries.items()}


# ----------------------------------------------------------------------
# Sweep planning
# ----------------------------------------------------------------------
@dataclass
class SweepCell:
    """Per-pair presentation metadata: the method/details strings the pair
    path would emit, replicated so sweep cells are indistinguishable."""

    method: str
    notes: Optional[str] = None
    normalized: bool = False


@dataclass
class SweepGroup:
    """One single-sweep sub-catalog: the effective query forms, the cells the
    sweep decides, and the BASE recipe (bound + extra constants)."""

    key: tuple
    queries: dict[str, Query]
    pairs: list[tuple[str, str]]
    cells: dict[tuple[str, str], SweepCell]
    semantics: str
    bound: int
    extra_constants: tuple[Constant, ...] = ()


@dataclass
class SweepPlan:
    """The output of :func:`plan_catalog_sweep`: sweep groups plus the cells
    left on the per-pair task path."""

    groups: list[SweepGroup] = field(default_factory=list)
    pair_path: list[tuple[str, str]] = field(default_factory=list)


#: Method strings of the pair path, replicated by the sweep cells.
_METHOD_PLAIN = "local-equivalence (set semantics)"
_METHOD_LOCAL = "local-equivalence (Theorem 6.5/6.6)"


def plan_catalog_sweep(
    queries: Mapping[str, Query],
    domain: Domain = Domain.RATIONALS,
    max_subsets: int = 2_000_000,
    *,
    normalize: bool = True,
    context: Optional[SharedBaseContext] = None,
    pairs: Optional[Sequence[tuple[str, str]]] = None,
) -> SweepPlan:
    """Partition the matrix cells of a catalog into single-sweep groups and
    per-pair fallbacks.

    A cell joins a sweep group exactly when the dispatcher
    (:func:`repro.core.equivalence.are_equivalent`) would decide it by the
    bounded local-equivalence procedure: both queries non-aggregate, or both
    aggregate with one shared function — possibly after the sum ≡ c·count
    normalization unifies them — outside the quasilinear fragment.  Groups
    collect the *effective* query forms (count forms for normalized pairs,
    originals otherwise); a query may appear in several groups under
    different forms (a pinned sum meets counts in count form and unpinned
    sums in sum form), but every cell is owned by exactly one group or by
    the pair path.

    Groups are additionally keyed by the queries' exact predicate signature:
    a group BASE is the union of its members' vocabularies, so sweeping
    mixed-vocabulary queries together would enumerate
    ``2^(|BASE_a| + |BASE_b|)`` subsets where the pair path enumerates at
    most ``2^|BASE_a∪B|`` per cell — exponentially worse for the group's
    *equivalent* cells, which cannot settle early.  Cross-signature cells
    stay on the pair path, which decides them identically.

    Groups keep the catalog-wide shared BASE (``context``) when the group is
    comparison-free (otherwise the Γ sharing the widening pays for does not
    apply) and the widened search space fits ``max_subsets``; a group whose
    own BASE still blows the budget is dissolved back to pair tasks (where
    the same budget guard raises, exactly as the pair path would).  Groups
    with fewer than two cells stay on the pair path — a sweep shares nothing
    there.

    ``pairs`` restricts the plan to the given cells (each normalized to
    ``name_a < name_b``); ``None`` plans every unordered pair.  Restricting
    up front matters beyond saved classification work: group bounds and
    shared constants are maxima over the group's member pairs, so planning
    unwanted cells would also enlarge the BASE the wanted sweeps enumerate.
    """
    names = sorted(queries)
    plan = SweepPlan()
    grouped: dict[tuple, SweepGroup] = {}
    order: list[tuple] = []

    if pairs is None:
        cells = [
            (name_a, name_b)
            for position, name_a in enumerate(names)
            for name_b in names[position + 1 :]
        ]
    else:
        cells = sorted({tuple(sorted(pair)) for pair in pairs})
        for name_a, name_b in cells:
            if name_a not in queries or name_b not in queries:
                raise ReproError(
                    f"sweep plan pair ({name_a!r}, {name_b!r}) names an unknown query"
                )

    for name_a, name_b in cells:
        first, second = queries[name_a], queries[name_b]
        pair = (name_a, name_b)
        route = _route_pair(first, second, domain, normalize)
        if route is None:
            plan.pair_path.append(pair)
            continue
        key, effective_first, effective_second, cell = route
        first_signature = frozenset(effective_first.predicates())
        if first_signature != frozenset(effective_second.predicates()):
            plan.pair_path.append(pair)
            continue
        key = key + (first_signature,)
        pair_bound = term_size_of_pair(effective_first, effective_second)
        if not _catalog_is_comparison_free((effective_first, effective_second)):
            # Comparison-carrying pairs get no shared-Γ payoff and skip
            # the context widening on the pair path, so a group-max
            # bound would both break the ``bound τ`` parity with the
            # pair path and enumerate a needlessly larger BASE.  Group
            # them only with pairs of the exact same BASE recipe.
            key = key + (
                frozenset(effective_first.constants() | effective_second.constants()),
                pair_bound,
            )
        group = grouped.get(key)
        if group is None:
            group = SweepGroup(
                key=key,
                queries={},
                pairs=[],
                cells={},
                semantics=SET_SEMANTICS,
                bound=0,
            )
            grouped[key] = group
            order.append(key)
        group.queries[name_a] = effective_first
        group.queries[name_b] = effective_second
        group.pairs.append(pair)
        group.cells[pair] = cell
        group.bound = max(group.bound, term_size_of_pair(effective_first, effective_second))

    for key in order:
        _finalize_group(grouped[key], context, max_subsets, plan)
    return plan


def _finalize_group(
    group: SweepGroup,
    context: Optional[SharedBaseContext],
    max_subsets: int,
    plan: SweepPlan,
) -> None:
    """Budget-check a candidate group and place it (or its cells) into the
    plan: the catalog-wide shared BASE when it applies and fits, then the
    group-local BASE, then dissolution to pair tasks (whose own budget guard
    treats every cell exactly as it always has)."""
    if len(group.pairs) < 2:
        plan.pair_path.extend(group.pairs)
        return
    members = list(group.queries.values())
    if (
        context is not None
        and context.bound >= group.bound
        and _catalog_is_comparison_free(members)
    ):
        widened = _catalog_base_size(members, context.bound, context.constants)
        if 2**widened <= max_subsets:
            group.bound = context.bound
            group.extra_constants = context.constants
            plan.groups.append(group)
            return
    if 2 ** _catalog_base_size(members, group.bound, ()) <= max_subsets:
        plan.groups.append(group)
        return
    plan.pair_path.extend(group.pairs)


def _route_pair(
    first: Query, second: Query, domain: Domain, normalize: bool
) -> Optional[tuple[tuple, Query, Query, SweepCell]]:
    """The sweep routing of one cell: ``(group key, effective forms, cell
    metadata)``, or ``None`` for the pair path.  Mirrors the dispatch order
    of :func:`repro.core.equivalence.are_equivalent` exactly."""
    if first.is_aggregate != second.is_aggregate:
        return None
    if not first.is_aggregate:
        return ("plain",), first, second, SweepCell(method=_METHOD_PLAIN)
    effective_first, effective_second = first, second
    cell = SweepCell(method=_METHOD_LOCAL)
    if normalize:
        reduction = pair_count_reduction(first, second)
        if reduction is not None:
            effective_first, effective_second, multiplier, notes = reduction
            cell = SweepCell(
                method=_METHOD_LOCAL + normalization_method_suffix(multiplier),
                notes=notes,
                normalized=True,
            )
    if effective_first.aggregate.function != effective_second.aggregate.function:
        return None
    function = get_function(effective_first.aggregate.function)
    if is_quasilinear_decidable(effective_first, effective_second, function, domain):
        return None
    if not _decidable_by_local_equivalence(function, domain):
        return None
    return (
        ("agg", effective_first.aggregate.function),
        effective_first,
        effective_second,
        cell,
    )


def sweep_group_label(group: SweepGroup) -> str:
    """A human-readable identity for a sweep group, used by trace spans and
    by ``Workspace.explain`` provenance: the dispatch kind, the member
    queries sharing the enumeration, and the group bound."""
    kind = group.key[0]
    tag = kind if kind != "agg" else f"agg:{group.key[1]}"
    return f"{tag}({'+'.join(sorted(group.queries))})τ={group.bound}"


def _sweep_cell_result(
    group: SweepGroup,
    pair: tuple[str, str],
    report,
    domain: Domain,
    originals: Mapping[str, Query],
) -> EquivalenceResult:
    """Convert a sweep report into the EquivalenceResult the pair path would
    produce for this cell (same method, details, and — for normalized cells —
    witness results re-evaluated through the original queries)."""
    cell = group.cells[pair]
    verdict = Verdict.EQUIVALENT if report.equivalent else Verdict.NOT_EQUIVALENT
    details = f"bound τ = {report.bound}"
    if cell.notes:
        details = f"{details}; {cell.notes}"
    counterexample = report.counterexample
    if (
        cell.normalized
        and counterexample is not None
        and counterexample.database is not None
    ):
        from ..core.bounded import Counterexample

        witness_database = counterexample.database
        counterexample = Counterexample(
            database=witness_database,
            left_result=evaluate(originals[pair[0]], witness_database),
            right_result=evaluate(originals[pair[1]], witness_database),
            ordering=counterexample.ordering,
            symbolic_atoms=counterexample.symbolic_atoms,
        )
        report.counterexample = counterexample
    return EquivalenceResult(
        verdict,
        method=cell.method,
        domain=domain,
        report=report,
        counterexample=counterexample,
        details=details,
    )


# ----------------------------------------------------------------------
# The equivalence matrix
# ----------------------------------------------------------------------
def decide_pairs(
    queries: Mapping[str, Query],
    pairs: Optional[Sequence[tuple[str, str]]] = None,
    domain: Domain = Domain.RATIONALS,
    counterexample_trials: int = 400,
    max_subsets: int = 2_000_000,
    unknown_bound: Optional[int] = None,
    *,
    workers: Optional[int] = None,
    executor: Optional[Executor] = None,
    seed: Optional[int] = None,
    normalize: bool = True,
    shared_base: bool = True,
    sweep: bool = True,
    pair_runner=run_pair_task,
    context: Optional[SharedBaseContext] = None,
    engine: Optional[str] = None,
    provenance: Optional[dict] = None,
) -> dict[tuple[str, str], EquivalenceResult]:
    """Decide a set of catalog cells: the shared engine behind
    :func:`equivalence_matrix` (all unordered pairs), the incremental
    session (:meth:`repro.session.Workspace.equivalences`, the delta cells
    of a growing catalog), and the rewriting verifier
    (:meth:`repro.rewriting.engine.RewritingEngine.verify`, one row of
    (target, candidate) cells).

    ``pairs`` restricts the work to the given cells (``None`` means every
    unordered pair); ``pair_runner`` lets callers wrap the per-cell task
    execution (it must stay a picklable module-level function — the
    rewriting engine uses this to degrade budget-blown cells to UNKNOWN
    instead of aborting the batch).  Sweep-eligible cells are decided in
    single-sweep groups; everything else runs through ``pair_runner``.

    ``context`` supplies a session-held :class:`SharedBaseContext` instead of
    rebuilding one from the catalog — a workspace deciding only its delta
    cells still widens them to the *full* catalog's BASE, so the sweep-group
    recipes (and the Γ cache entries keyed under them) match the ones its
    earlier calls already warmed.  ``None`` keeps the one-shot behavior:
    derive the context from ``queries`` when ``shared_base`` is set.

    ``engine`` pins the evaluation engine for the whole batch (``None`` keeps
    the active mode); the task builders capture it, so worker processes decide
    under the same engine as the caller.

    ``provenance``, when given a dict, receives one entry per decided cell
    describing *how* it was decided — ``"sweep:<group label>"`` for cells a
    shared single-sweep enumeration carried, ``"pair"`` for standalone pair
    tasks.  The session layer feeds this into ``Workspace.explain``.
    """
    with engine_scope(engine):
        if context is None and shared_base:
            context = SharedBaseContext.from_catalog(queries.values())
        results: dict[tuple[str, str], EquivalenceResult] = {}
        pair_subset = pairs
        if sweep:
            with _span("sweep.plan", cells=-1 if pairs is None else len(pairs)) as plan_span:
                plan = plan_catalog_sweep(
                    queries,
                    domain=domain,
                    max_subsets=max_subsets,
                    normalize=normalize,
                    context=context,
                    pairs=pairs,
                )
                plan_span.note(groups=len(plan.groups), pair_path=len(plan.pair_path))
            for group in plan.groups:
                label = sweep_group_label(group)
                with _span("sweep.group", group=label, pairs=len(group.pairs)):
                    reports = sweep_equivalence(
                        group.queries,
                        group.pairs,
                        group.bound,
                        domain=domain,
                        semantics=group.semantics,
                        max_subsets=max_subsets,
                        workers=workers,
                        executor=executor,
                        seed=seed,
                        extra_constants=group.extra_constants,
                    )
                for pair, report in reports.items():
                    results[pair] = _sweep_cell_result(group, pair, report, domain, queries)
                    if provenance is not None:
                        provenance[pair] = f"sweep:{label}"
            pair_subset = plan.pair_path
        tasks = pair_check_tasks(
            queries,
            domain=domain,
            counterexample_trials=counterexample_trials,
            max_subsets=max_subsets,
            unknown_bound=unknown_bound,
            normalize=normalize,
            seed=seed,
            context=context,
            pairs=pair_subset,
        )
        outcomes = resolve_executor(workers, executor).run(pair_runner, tasks)
        absorb_worker_metrics(outcomes)
        for outcome in sorted(outcomes, key=lambda outcome: outcome.task_index):
            results[(outcome.name_a, outcome.name_b)] = outcome.result
            if provenance is not None:
                provenance[(outcome.name_a, outcome.name_b)] = "pair"
        return results


def equivalence_matrix(
    queries: Mapping[str, Query],
    domain: Domain = Domain.RATIONALS,
    counterexample_trials: int = 400,
    max_subsets: int = 2_000_000,
    unknown_bound: Optional[int] = None,
    *,
    workers: Optional[int] = None,
    executor: Optional[Executor] = None,
    seed: Optional[int] = None,
    normalize: bool = True,
    shared_base: bool = True,
    sweep: bool = True,
    engine: Optional[str] = None,
) -> dict[tuple[str, str], EquivalenceResult]:
    """Pairwise equivalence over a query catalog.

    Returns ``{(name_a, name_b): result}`` for every unordered pair with
    ``name_a < name_b``.  Pairs mixing an aggregate with a non-aggregate query
    are recorded as ``NOT_EQUIVALENT`` with method ``"incomparable shapes"``
    (their results live in different spaces, so no database can make them
    agree) rather than raising, so one odd catalog entry does not abort the
    whole sweep.

    ``sweep=True`` (default) decides same-dispatch-class sub-catalogs with
    one subset/ordering enumeration each (:func:`plan_catalog_sweep`) and
    only the leftover cells as per-pair tasks; ``sweep=False`` forces the
    PR 2 all-pairs task path.  ``workers=N`` shards both the sweep streams
    and the cell tasks across N processes (``None`` consults
    ``REPRO_WORKERS``); ``seed`` derives a deterministic per-pair seed for
    the randomized witness searches, so results are reproducible regardless
    of worker scheduling; ``shared_base`` activates the catalog-wide BASE
    that aligns the sweeps with the pair tasks and lets pairs reaching the
    bounded procedure reuse memoized Γ(q, S_L).

    .. deprecated:: prefer :class:`repro.session.Workspace` for anything
       beyond a one-shot matrix — this function is now a thin shim over an
       ephemeral workspace, so every call rebuilds the shared BASE, re-warms
       the caches, and (with ``workers``) re-forks a pool that a session
       would keep alive.  ``ws = Workspace(workers=N)`` + ``ws.add(...)`` +
       ``ws.equivalences()`` returns the identical matrix and decides only
       delta cells on later calls.
    """
    from ..session import Workspace

    with Workspace(
        workers=workers,
        executor=executor,
        domain=domain,
        counterexample_trials=counterexample_trials,
        max_subsets=max_subsets,
        unknown_bound=unknown_bound,
        seed=seed,
        normalize=normalize,
        shared_base=shared_base,
        sweep=sweep,
        engine=engine,
        # One-shot matrices stay self-contained: no verdict-store tier, so
        # this entry point's results never depend on process-wide state
        # (REPRO_STORE_PATH included).  Sessions wanting the store use
        # Workspace directly.
        store=False,
    ) as workspace:
        for name, query in queries.items():
            workspace.add(query, name=name)
        return workspace.equivalences()


def format_equivalence_matrix(
    results: Mapping[tuple[str, str], EquivalenceResult]
) -> str:
    """Render an equivalence matrix as an aligned text table."""
    if not results:
        return "(empty catalog)"
    width = max(len(name) for pair in results for name in pair)
    lines = []
    for (name_a, name_b), result in sorted(results.items()):
        lines.append(
            f"{name_a:{width}s} vs {name_b:{width}s}: "
            f"{result.verdict.value:14s} [{result.method}]"
        )
    return "\n".join(lines)
