"""Batched evaluation and pairwise equivalence over query catalogs.

Workload scenarios (see :mod:`repro.workloads.scenarios`) carry *catalogs* —
named families of queries posed against one database.  This module provides
the batched entry points the examples and benchmarks drive:

* :func:`evaluate_many` — evaluate every query of a catalog over a database
  (the memoized, planned engine makes repeated and overlapping evaluations
  cheap), and
* :func:`equivalence_matrix` — run the paper's strongest applicable decision
  procedure on every unordered pair of catalog queries, the bulk analogue of
  :func:`repro.core.equivalence.are_equivalent`.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..core.equivalence import EquivalenceResult, Verdict, are_equivalent
from ..datalog.database import Database
from ..datalog.queries import Query
from ..domains import Domain
from ..engine.evaluator import evaluate


def evaluate_many(
    queries: Mapping[str, Query], database: Database
) -> dict[str, object]:
    """Evaluate every query of the catalog over the database.

    Returns ``{name: result}`` where each result follows
    :func:`repro.engine.evaluate` (a dict for aggregate queries, a set of
    tuples otherwise).
    """
    return {name: evaluate(query, database) for name, query in queries.items()}


def equivalence_matrix(
    queries: Mapping[str, Query],
    domain: Domain = Domain.RATIONALS,
    counterexample_trials: int = 400,
    max_subsets: int = 2_000_000,
    unknown_bound: Optional[int] = None,
) -> dict[tuple[str, str], EquivalenceResult]:
    """Pairwise equivalence over a query catalog.

    Returns ``{(name_a, name_b): result}`` for every unordered pair with
    ``name_a < name_b``.  Pairs mixing an aggregate with a non-aggregate query
    are recorded as ``NOT_EQUIVALENT`` with method ``"incomparable shapes"``
    (their results live in different spaces, so no database can make them
    agree) rather than raising, so one odd catalog entry does not abort the
    whole sweep.
    """
    names = sorted(queries)
    results: dict[tuple[str, str], EquivalenceResult] = {}
    for position, name_a in enumerate(names):
        for name_b in names[position + 1 :]:
            first, second = queries[name_a], queries[name_b]
            if first.is_aggregate != second.is_aggregate:
                results[(name_a, name_b)] = EquivalenceResult(
                    Verdict.NOT_EQUIVALENT,
                    method="incomparable shapes",
                    domain=domain,
                    details="one query is aggregate and the other is not",
                )
                continue
            results[(name_a, name_b)] = are_equivalent(
                first,
                second,
                domain=domain,
                counterexample_trials=counterexample_trials,
                max_subsets=max_subsets,
                unknown_bound=unknown_bound,
            )
    return results


def format_equivalence_matrix(
    results: Mapping[tuple[str, str], EquivalenceResult]
) -> str:
    """Render an equivalence matrix as an aligned text table."""
    if not results:
        return "(empty catalog)"
    width = max(len(name) for pair in results for name in pair)
    lines = []
    for (name_a, name_b), result in sorted(results.items()):
        lines.append(
            f"{name_a:{width}s} vs {name_b:{width}s}: "
            f"{result.verdict.value:14s} [{result.method}]"
        )
    return "\n".join(lines)
