"""Batched evaluation and pairwise equivalence over query catalogs.

Workload scenarios (see :mod:`repro.workloads.scenarios`) carry *catalogs* —
named families of queries posed against one database.  This module provides
the batched entry points the examples and benchmarks drive:

* :func:`evaluate_many` — evaluate every query of a catalog over a database
  (the memoized, planned engine makes repeated and overlapping evaluations
  cheap), and
* :func:`equivalence_matrix` — run the paper's strongest applicable decision
  procedure on every unordered pair of catalog queries, the bulk analogue of
  :func:`repro.core.equivalence.are_equivalent`.

The matrix routes through the parallel decision subsystem
(:mod:`repro.parallel`): every cell is an independent, picklable task, a
catalog-wide :class:`~repro.core.bounded.SharedBaseContext` lets the symbolic
engine reuse Γ(q, S_L) across every pair sharing a query, and
``workers=N`` dispatches the cells across a process pool.  ``workers=None``
honours the ``REPRO_WORKERS`` environment variable; the serial path runs the
very same tasks through the serial executor, so the two can never diverge.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..core.bounded import SharedBaseContext
from ..core.equivalence import EquivalenceResult
from ..datalog.database import Database
from ..datalog.queries import Query
from ..domains import Domain
from ..engine.evaluator import evaluate
from ..parallel.executor import Executor, resolve_executor
from ..parallel.tasks import pair_check_tasks, run_pair_task


def evaluate_many(
    queries: Mapping[str, Query], database: Database
) -> dict[str, object]:
    """Evaluate every query of the catalog over the database.

    Returns ``{name: result}`` where each result follows
    :func:`repro.engine.evaluate` (a dict for aggregate queries, a set of
    tuples otherwise).
    """
    return {name: evaluate(query, database) for name, query in queries.items()}


def equivalence_matrix(
    queries: Mapping[str, Query],
    domain: Domain = Domain.RATIONALS,
    counterexample_trials: int = 400,
    max_subsets: int = 2_000_000,
    unknown_bound: Optional[int] = None,
    *,
    workers: Optional[int] = None,
    executor: Optional[Executor] = None,
    seed: Optional[int] = None,
    normalize: bool = True,
    shared_base: bool = True,
) -> dict[tuple[str, str], EquivalenceResult]:
    """Pairwise equivalence over a query catalog.

    Returns ``{(name_a, name_b): result}`` for every unordered pair with
    ``name_a < name_b``.  Pairs mixing an aggregate with a non-aggregate query
    are recorded as ``NOT_EQUIVALENT`` with method ``"incomparable shapes"``
    (their results live in different spaces, so no database can make them
    agree) rather than raising, so one odd catalog entry does not abort the
    whole sweep.

    ``workers=N`` shards the cells across N processes (``None`` consults
    ``REPRO_WORKERS``); ``seed`` derives a deterministic per-pair seed for the
    randomized witness searches, so results are reproducible regardless of
    worker scheduling; ``shared_base`` activates the catalog-wide BASE that
    lets pairs reaching the bounded procedure reuse memoized Γ(q, S_L).
    """
    context = SharedBaseContext.from_catalog(queries.values()) if shared_base else None
    tasks = pair_check_tasks(
        queries,
        domain=domain,
        counterexample_trials=counterexample_trials,
        max_subsets=max_subsets,
        unknown_bound=unknown_bound,
        normalize=normalize,
        seed=seed,
        context=context,
    )
    outcomes = resolve_executor(workers, executor).run(run_pair_task, tasks)
    return {
        (outcome.name_a, outcome.name_b): outcome.result
        for outcome in sorted(outcomes, key=lambda outcome: outcome.task_index)
    }


def format_equivalence_matrix(
    results: Mapping[tuple[str, str], EquivalenceResult]
) -> str:
    """Render an equivalence matrix as an aligned text table."""
    if not results:
        return "(empty catalog)"
    width = max(len(name) for pair in results for name in pair)
    lines = []
    for (name_a, name_b), result in sorted(results.items()):
        lines.append(
            f"{name_a:{width}s} vs {name_b:{width}s}: "
            f"{result.verdict.value:14s} [{result.method}]"
        )
    return "\n".join(lines)
