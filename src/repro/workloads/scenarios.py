"""A deterministic data-warehouse scenario.

The paper's introduction motivates the equivalence problem with data
warehouses and decision-support systems: aggregate queries reduce large fact
tables to small summaries, and rewriting optimizations hinge on recognizing
equivalent formulations.  This module provides a small but realistic sales
warehouse (a fact table plus dimension tables and an exclusion list) together
with a family of analyst queries over it.  The examples and the engine
benchmark are built on this scenario.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..datalog.database import Database
from ..datalog.parser import parse_query
from ..datalog.queries import Query
from ..rewriting.views import View, ViewCatalog


@dataclass
class WarehouseScenario:
    """A sales warehouse instance and the analyst queries posed against it."""

    database: Database
    queries: dict[str, Query]

    @property
    def fact_count(self) -> int:
        return len(self.database)

    def evaluate_all(self) -> dict[str, object]:
        """Evaluate the whole catalog over the warehouse database."""
        from .batch import evaluate_many

        return evaluate_many(self.queries, self.database)


#: Relation schema of the scenario (predicate -> arity).
WAREHOUSE_SCHEMA: dict[str, int] = {
    # sales(store, product, amount)
    "sales": 3,
    # returns(store, product)
    "returns": 2,
    # discontinued(product)
    "discontinued": 1,
    # premium_store(store)
    "premium_store": 1,
}


def build_warehouse(
    stores: int = 5, products: int = 8, sales_per_store: int = 12, seed: int = 7
) -> WarehouseScenario:
    """Build a deterministic warehouse instance of the requested size."""
    rng = random.Random(seed)
    facts = []
    for store in range(1, stores + 1):
        if store % 2 == 1:
            facts.append(("premium_store", (store,)))
        for _ in range(sales_per_store):
            product = rng.randint(1, products)
            amount = rng.randint(1, 50)
            facts.append(("sales", (store, product, amount)))
            if rng.random() < 0.15:
                facts.append(("returns", (store, product)))
    for product in range(1, products + 1):
        if rng.random() < 0.2:
            facts.append(("discontinued", (product,)))
    database = Database(facts)

    queries = {
        # Total revenue per store, ignoring returned or discontinued items.
        "revenue_per_store": parse_query(
            "revenue(s, sum(a)) :- sales(s, p, a), not returns(s, p), not discontinued(p)"
        ),
        # The same query written with the negations in the opposite order —
        # equivalent, and the optimizer should recognize it.
        "revenue_per_store_alt": parse_query(
            "revenue(s, sum(a)) :- sales(s, p, a), not discontinued(p), not returns(s, p)"
        ),
        # A subtly different query: it only excludes discontinued products.
        "revenue_keep_returns": parse_query(
            "revenue(s, sum(a)) :- sales(s, p, a), not discontinued(p)"
        ),
        # Largest single sale per store for large transactions.
        "largest_sale": parse_query(
            "largest(s, max(a)) :- sales(s, p, a), a > 10"
        ),
        # Number of large transactions per store, premium stores only.
        "large_sales_count": parse_query(
            "large_sales(s, count()) :- sales(s, p, a), premium_store(s), a > 10"
        ),
        # Count of distinct products sold per store.
        "distinct_products": parse_query(
            "assortment(s, cntd(p)) :- sales(s, p, a)"
        ),
        # Join-heavy: revenue lost to returned sales, per premium store.  Joins
        # the fact table against two dimension tables on bound columns, so it
        # exercises the index-probe path of the engine.
        "premium_returned_revenue": parse_query(
            "lost(s, sum(a)) :- sales(s, p, a), returns(s, p), premium_store(s)"
        ),
        # Join-heavy with negation: products a premium store sold but never
        # had returned.
        "premium_kept_products": parse_query(
            "kept(s, cntd(p)) :- sales(s, p, a), premium_store(s), not returns(s, p)"
        ),
    }
    return WarehouseScenario(database=database, queries=queries)


# ----------------------------------------------------------------------
# The pre-aggregated warehouse (view-rewriting scenario)
# ----------------------------------------------------------------------
@dataclass
class WarehouseViewScenario:
    """A warehouse instance together with its materialized view catalog and
    the analyst queries the rewriting engine should serve from the views."""

    database: Database
    views: ViewCatalog
    queries: dict[str, Query]

    @property
    def fact_count(self) -> int:
        return len(self.database)

    def materialized(self) -> Database:
        """The database extended with every view's stored relation."""
        return self.views.materialize(self.database)


def warehouse_views() -> ViewCatalog:
    """The scenario's materialized views: per-(store, product) pre-aggregates
    of the fact table, a returns-filtered copy, and — deliberately — one
    *duplicating* projection (``sold``) that the rewriting engine must refuse
    to thread aggregates through."""
    return ViewCatalog(
        [
            View("sales_by_sp", parse_query("v(s, p, sum(a)) :- sales(s, p, a)")),
            View("count_by_sp", parse_query("v(s, p, count()) :- sales(s, p, a)")),
            View("max_by_sp", parse_query("v(s, p, max(a)) :- sales(s, p, a)")),
            View("kept_sales", parse_query("v(s, p, a) :- sales(s, p, a), not returns(s, p)")),
            View("sold", parse_query("v(s, p) :- sales(s, p, a)")),
        ]
    )


def build_view_scenario(
    stores: int = 5, products: int = 8, sales_per_store: int = 12, seed: int = 7
) -> WarehouseViewScenario:
    """The pre-aggregated warehouse: the deterministic instance of
    :func:`build_warehouse` plus the view catalog and the aggregate reports
    that should be answered from the pre-aggregates instead of the fact
    table."""
    warehouse = build_warehouse(stores, products, sales_per_store, seed)
    queries = {
        # Each pairs with a view through one of the engine's threading rules.
        "total_revenue": parse_query("revenue(s, sum(a)) :- sales(s, p, a)"),
        "premium_revenue": parse_query(
            "revenue(s, sum(a)) :- sales(s, p, a), premium_store(s)"
        ),
        "sales_count": parse_query("volume(s, count()) :- sales(s, p, a)"),
        "assortment": parse_query("assortment(s, cntd(p)) :- sales(s, p, a)"),
        "top_sale": parse_query("top_sale(s, max(a)) :- sales(s, p, a)"),
        "kept_revenue": parse_query(
            "kept(s, sum(a)) :- sales(s, p, a), not returns(s, p)"
        ),
    }
    return WarehouseViewScenario(
        database=warehouse.database, views=warehouse_views(), queries=queries
    )
